"""Worker nodes: a quantum device plus classical capacity and labels.

A QRIO cluster node (Section 3.1) couples a quantum backend (real or
simulated; here always simulated) with the classical resources of the machine
hosting it.  Nodes expose the vendor's ``backend.py`` contract, carry the
aggregate labels the scheduler filters on, track how much CPU/memory is
currently allocated to running jobs, and execute the circuits of jobs bound
to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.cluster.labels import NodeLabels
from repro.simulators.result import SimulationResult
from repro.utils.exceptions import ClusterError
from repro.utils.rng import SeedLike
from repro.utils.validation import require_name, require_non_negative_int


class NodeStatus(str, Enum):
    """Lifecycle status of a cluster node."""

    READY = "Ready"
    NOT_READY = "NotReady"
    CORDONED = "Cordoned"


@dataclass
class NodeCapacity:
    """Classical capacity of a node (Kubernetes-style requests accounting)."""

    cpu_millicores: int = 4000
    memory_mb: int = 8192

    def __post_init__(self) -> None:
        require_non_negative_int(self.cpu_millicores, "cpu_millicores")
        require_non_negative_int(self.memory_mb, "memory_mb")

    def fits(self, cpu_millicores: int, memory_mb: int) -> bool:
        """``True`` when a request of the given size fits in this capacity."""
        return cpu_millicores <= self.cpu_millicores and memory_mb <= self.memory_mb


class Node:
    """A QRIO worker node: quantum backend + classical capacity + labels."""

    def __init__(
        self,
        backend: Backend,
        name: Optional[str] = None,
        capacity: Optional[NodeCapacity] = None,
        labels: Optional[NodeLabels] = None,
    ) -> None:
        self.backend = backend
        self.name = require_name(name or f"node-{backend.name}", "name")
        self.capacity = capacity or NodeCapacity()
        self.labels = labels or NodeLabels.from_backend(
            backend,
            cpu_millicores=self.capacity.cpu_millicores,
            memory_mb=self.capacity.memory_mb,
        )
        self.status = NodeStatus.READY
        self._allocated_cpu = 0
        self._allocated_memory = 0
        self._bound_jobs: List[str] = []

    # ------------------------------------------------------------------ #
    # Status management (vendor-side controls; future-work item 1)
    # ------------------------------------------------------------------ #
    def cordon(self) -> None:
        """Mark the node unschedulable without evicting running jobs."""
        self.status = NodeStatus.CORDONED

    def uncordon(self) -> None:
        """Return a cordoned node to the schedulable pool."""
        if self.status == NodeStatus.CORDONED:
            self.status = NodeStatus.READY

    def mark_not_ready(self) -> None:
        """Record that the node's kubelet/backend stopped responding."""
        self.status = NodeStatus.NOT_READY

    def mark_ready(self) -> None:
        """Record that the node recovered (self-healing restart)."""
        self.status = NodeStatus.READY

    def is_schedulable(self) -> bool:
        """``True`` when new jobs may be bound to this node."""
        return self.status == NodeStatus.READY

    # ------------------------------------------------------------------ #
    # Resource accounting
    # ------------------------------------------------------------------ #
    @property
    def available_cpu(self) -> int:
        """Unallocated CPU in millicores."""
        return self.capacity.cpu_millicores - self._allocated_cpu

    @property
    def available_memory(self) -> int:
        """Unallocated memory in MB."""
        return self.capacity.memory_mb - self._allocated_memory

    @property
    def bound_jobs(self) -> List[str]:
        """Names of jobs currently bound to this node."""
        return list(self._bound_jobs)

    def can_host(self, cpu_millicores: int, memory_mb: int) -> bool:
        """``True`` when the remaining capacity covers the request."""
        return cpu_millicores <= self.available_cpu and memory_mb <= self.available_memory

    def allocate(self, job_name: str, cpu_millicores: int, memory_mb: int) -> None:
        """Reserve resources for a bound job."""
        if not self.is_schedulable():
            raise ClusterError(f"Node '{self.name}' is not schedulable ({self.status.value})")
        if not self.can_host(cpu_millicores, memory_mb):
            raise ClusterError(
                f"Node '{self.name}' cannot host job '{job_name}': requested "
                f"{cpu_millicores}m CPU / {memory_mb}MB, available "
                f"{self.available_cpu}m / {self.available_memory}MB"
            )
        self._allocated_cpu += cpu_millicores
        self._allocated_memory += memory_mb
        self._bound_jobs.append(job_name)

    def release(self, job_name: str, cpu_millicores: int, memory_mb: int) -> None:
        """Return a finished job's resources to the pool."""
        if job_name not in self._bound_jobs:
            raise ClusterError(f"Job '{job_name}' is not bound to node '{self.name}'")
        self._bound_jobs.remove(job_name)
        self._allocated_cpu = max(0, self._allocated_cpu - cpu_millicores)
        self._allocated_memory = max(0, self._allocated_memory - memory_mb)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        seed: SeedLike = None,
        precompiled=None,
    ) -> SimulationResult:
        """Run an already-transpiled circuit on this node's backend.

        ``precompiled`` forwards a cached
        :class:`~repro.simulators.noisy.PrecompiledExecution` to the backend
        (the execution-plan replay path).
        """
        if not circuit.has_measurements():
            raise ClusterError(
                f"Job circuit '{circuit.name}' has no measurements; nothing would be returned"
            )
        return self.backend.run(circuit, shots=shots, seed=seed, precompiled=precompiled)

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """`kubectl describe node`-style summary used by the dashboard."""
        return {
            "name": self.name,
            "status": self.status.value,
            "backend": self.backend.name,
            "labels": self.labels.as_dict(),
            "capacity": {
                "cpu_millicores": self.capacity.cpu_millicores,
                "memory_mb": self.capacity.memory_mb,
            },
            "allocated": {
                "cpu_millicores": self._allocated_cpu,
                "memory_mb": self._allocated_memory,
            },
            "bound_jobs": list(self._bound_jobs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node(name={self.name!r}, backend={self.backend.name!r}, status={self.status.value})"
