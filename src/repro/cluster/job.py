"""Quantum job specifications and lifecycle tracking.

The QRIO master server turns a user's submission into "a Yaml file
representing the Job requirements and image name for the docker container of
the job" (Section 3.3).  :class:`JobSpec` is the structured form of that YAML
(resource requests, desired device characteristics, the container image and
the circuit payload); :class:`Job` adds the runtime state the cluster tracks
(phase, bound node, logs, execution result).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.simulators.result import SimulationResult
from repro.utils.exceptions import ClusterError
from repro.utils.validation import require_name, require_non_negative_int, require_positive_int

_JOB_SEQUENCE = itertools.count(1)


class JobPhase(str, Enum):
    """Kubernetes-style job phases."""

    PENDING = "Pending"
    SCHEDULED = "Scheduled"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"
    UNSCHEDULABLE = "Unschedulable"


@dataclass
class ResourceRequest:
    """Classical and quantum resources a job asks for.

    Mirrors the first form page of the visualizer: number of qubits, CPU
    requirement and memory requirement (Section 3.2, Fig. 4a).
    """

    qubits: int = 1
    cpu_millicores: int = 500
    memory_mb: int = 512

    def __post_init__(self) -> None:
        require_positive_int(self.qubits, "qubits")
        require_non_negative_int(self.cpu_millicores, "cpu_millicores")
        require_non_negative_int(self.memory_mb, "memory_mb")


@dataclass
class DeviceConstraints:
    """Optional bounds on device characteristics (Fig. 4b of the paper).

    ``None`` means the user does not constrain that characteristic.  Bounds
    are interpreted as: error rates are maxima, coherence times are minima.
    """

    max_avg_two_qubit_error: Optional[float] = None
    max_avg_readout_error: Optional[float] = None
    min_avg_t1: Optional[float] = None
    min_avg_t2: Optional[float] = None

    def is_unconstrained(self) -> bool:
        """``True`` when no device characteristic is bounded."""
        return all(
            value is None
            for value in (
                self.max_avg_two_qubit_error,
                self.max_avg_readout_error,
                self.min_avg_t1,
                self.min_avg_t2,
            )
        )

    def as_dict(self) -> Dict[str, Optional[float]]:
        """Serialise for job YAML / logs."""
        return {
            "max_avg_two_qubit_error": self.max_avg_two_qubit_error,
            "max_avg_readout_error": self.max_avg_readout_error,
            "min_avg_t1": self.min_avg_t1,
            "min_avg_t2": self.min_avg_t2,
        }


@dataclass
class JobSpec:
    """Everything the scheduler needs to know about a submitted job."""

    name: str
    image: str
    circuit_qasm: str
    resources: ResourceRequest = field(default_factory=ResourceRequest)
    constraints: DeviceConstraints = field(default_factory=DeviceConstraints)
    #: ``"fidelity"`` or ``"topology"`` — which ranking strategy the meta
    #: server should apply (Table 1 of the paper).
    strategy: str = "fidelity"
    shots: int = 1024
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_name(self.name, "name")
        require_name(self.image, "image")
        if self.strategy not in ("fidelity", "topology"):
            raise ClusterError("strategy must be 'fidelity' or 'topology'")
        require_positive_int(self.shots, "shots")
        if not self.circuit_qasm.strip():
            raise ClusterError("circuit_qasm must not be empty")

    def to_manifest(self) -> Dict[str, object]:
        """Render the Kubernetes-style job manifest (the paper's job YAML)."""
        return {
            "apiVersion": "batch/v1",
            "kind": "Job",
            "metadata": {"name": self.name, "labels": {"qrio.io/strategy": self.strategy}},
            "spec": {
                "template": {
                    "spec": {
                        "containers": [
                            {
                                "name": self.name,
                                "image": self.image,
                                "resources": {
                                    "requests": {
                                        "cpu": f"{self.resources.cpu_millicores}m",
                                        "memory": f"{self.resources.memory_mb}Mi",
                                        "qrio.io/qubits": str(self.resources.qubits),
                                    }
                                },
                            }
                        ],
                        "restartPolicy": "Never",
                    }
                },
                "qrioDeviceConstraints": self.constraints.as_dict(),
                "qrioShots": self.shots,
            },
        }


@dataclass
class Job:
    """Runtime state of a submitted job."""

    spec: JobSpec
    phase: JobPhase = JobPhase.PENDING
    node_name: Optional[str] = None
    score: Optional[float] = None
    result: Optional[SimulationResult] = None
    logs: List[str] = field(default_factory=list)
    uid: int = field(default_factory=lambda: next(_JOB_SEQUENCE))
    transpiled: Optional[QuantumCircuit] = None
    failure_reason: Optional[str] = None

    @property
    def name(self) -> str:
        """Job name (from its spec)."""
        return self.spec.name

    def log(self, message: str) -> None:
        """Append a line to the job's execution log."""
        self.logs.append(message)

    def mark_scheduled(self, node_name: str, score: Optional[float] = None) -> None:
        """Record that the scheduler bound the job to ``node_name``."""
        if self.phase not in (JobPhase.PENDING, JobPhase.UNSCHEDULABLE):
            raise ClusterError(f"Job '{self.name}' cannot be scheduled from phase {self.phase.value}")
        self.phase = JobPhase.SCHEDULED
        self.node_name = node_name
        self.score = score
        self.log(f"Scheduled on node '{node_name}'" + (f" with score {score:.4f}" if score is not None else ""))

    def mark_running(self) -> None:
        """Record that the container started executing."""
        if self.phase != JobPhase.SCHEDULED:
            raise ClusterError(f"Job '{self.name}' cannot run from phase {self.phase.value}")
        self.phase = JobPhase.RUNNING
        self.log("Container started")

    def mark_succeeded(self, result: SimulationResult) -> None:
        """Record successful completion and store the execution result."""
        if self.phase != JobPhase.RUNNING:
            raise ClusterError(f"Job '{self.name}' cannot succeed from phase {self.phase.value}")
        self.phase = JobPhase.SUCCEEDED
        self.result = result
        self.log(f"Execution finished: {result.shots} shots, {len(result.counts)} distinct outcomes")

    def mark_failed(self, reason: str) -> None:
        """Record job failure with a reason."""
        self.phase = JobPhase.FAILED
        self.failure_reason = reason
        self.log(f"Job failed: {reason}")

    def mark_unschedulable(self, reason: str) -> None:
        """Record that filtering left no feasible node for this job."""
        self.phase = JobPhase.UNSCHEDULABLE
        self.failure_reason = reason
        self.log(f"Job unschedulable: {reason}")

    def is_finished(self) -> bool:
        """``True`` once the job reached a terminal phase."""
        return self.phase in (JobPhase.SUCCEEDED, JobPhase.FAILED, JobPhase.UNSCHEDULABLE)

    def describe(self) -> Dict[str, object]:
        """Structured summary used by logs and the dashboard."""
        return {
            "name": self.name,
            "uid": self.uid,
            "phase": self.phase.value,
            "node": self.node_name,
            "score": self.score,
            "strategy": self.spec.strategy,
            "image": self.spec.image,
            "failure_reason": self.failure_reason,
        }
