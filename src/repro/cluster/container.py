"""Simulated containerization: image building, the registry, and the runtime.

The QRIO master server packages every job into a docker image holding the
user's QASM file, a generated Python run-script, a requirements file and the
Dockerfile itself, then pushes the image to a registry so the chosen node can
pull and run it (Section 3.3).  This module reproduces those artefacts and
the pull/run lifecycle fully in memory (optionally materialising the build
directory on disk), so the end-to-end flow is inspectable without a Docker
daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.qasm.exporter import dump_qasm
from repro.utils.exceptions import ClusterError
from repro.utils.validation import require_name

#: Python packages the paper installs inside every job container.
CONTAINER_REQUIREMENTS = (
    "qiskit",
    "qiskit-aer",
    "matplotlib",
    "qiskit_ibmq_provider",
    "qiskit_ibm_runtime",
)

_RUN_SCRIPT_TEMPLATE = '''"""Auto-generated QRIO job runner.

Reads the node-local backend description (backend.py), transpiles the job's
QASM circuit to that backend and executes it, writing the counts to stdout.
In this reproduction the script is executed by the in-process container
runtime rather than a Docker daemon, but the artefact matches what the QRIO
master server would build.
"""

from backend import backend  # noqa: F401  (vendor-provided device description)

QASM_FILE = "{qasm_file}"
SHOTS = {shots}


def main():
    with open(QASM_FILE) as handle:
        qasm = handle.read()
    # transpile(qasm, backend) and execute for SHOTS shots; the hosting node
    # performs these steps through the repro library when running in-process.
    print("Running", QASM_FILE, "for", SHOTS, "shots")


if __name__ == "__main__":
    main()
'''


@dataclass
class ContainerImage:
    """An immutable bundle of job artefacts, addressed by image name and tag."""

    name: str
    tag: str
    files: Dict[str, str]
    job_name: str

    @property
    def reference(self) -> str:
        """Full image reference, e.g. ``qrio/bv-job:latest``."""
        return f"{self.name}:{self.tag}"

    def file(self, filename: str) -> str:
        """Contents of one file in the image."""
        if filename not in self.files:
            raise ClusterError(f"Image '{self.reference}' has no file '{filename}'")
        return self.files[filename]


class ImageBuilder:
    """Builds container images for QRIO jobs (the master server's build step)."""

    def __init__(self, workspace: Optional[Path] = None) -> None:
        self._workspace = Path(workspace) if workspace is not None else None

    def build(
        self,
        job_name: str,
        image_name: str,
        circuit: QuantumCircuit,
        shots: int = 1024,
        tag: str = "latest",
    ) -> ContainerImage:
        """Assemble the job directory artefacts and produce an image.

        The image contains exactly the four artefacts the paper lists: the
        QASM circuit, the generated run script, ``requirements.txt`` and the
        ``Dockerfile``.
        """
        require_name(job_name, "job_name")
        require_name(image_name, "image_name")
        qasm_file = f"{job_name}.qasm"
        files = {
            qasm_file: dump_qasm(circuit),
            "run_job.py": _RUN_SCRIPT_TEMPLATE.format(qasm_file=qasm_file, shots=shots),
            "requirements.txt": "\n".join(CONTAINER_REQUIREMENTS) + "\n",
            "Dockerfile": self._dockerfile(qasm_file),
        }
        if self._workspace is not None:
            job_dir = self._workspace / job_name
            job_dir.mkdir(parents=True, exist_ok=True)
            for filename, content in files.items():
                (job_dir / filename).write_text(content, encoding="utf-8")
        return ContainerImage(name=image_name, tag=tag, files=files, job_name=job_name)

    @staticmethod
    def _dockerfile(qasm_file: str) -> str:
        return "\n".join(
            [
                "FROM python:3.11-slim",
                "WORKDIR /job",
                "COPY requirements.txt .",
                "RUN pip install -r requirements.txt",
                f"COPY {qasm_file} .",
                "COPY run_job.py .",
                'CMD ["python", "run_job.py"]',
                "",
            ]
        )


class ImageRegistry:
    """In-memory docker-hub stand-in: push images, pull them by reference."""

    def __init__(self) -> None:
        self._images: Dict[str, ContainerImage] = {}

    def push(self, image: ContainerImage) -> str:
        """Store ``image`` and return its reference."""
        self._images[image.reference] = image
        return image.reference

    def pull(self, reference: str) -> ContainerImage:
        """Retrieve an image by ``name:tag`` reference."""
        if reference not in self._images:
            raise ClusterError(f"Image '{reference}' not found in the registry")
        return self._images[reference]

    def exists(self, reference: str) -> bool:
        """``True`` when the registry holds ``reference``."""
        return reference in self._images

    def references(self) -> List[str]:
        """All stored image references."""
        return sorted(self._images)

    def __len__(self) -> int:
        return len(self._images)
