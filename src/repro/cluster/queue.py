"""Job queue for multi-job scheduling (the paper's future-work item 4).

The published QRIO prototype handles one scheduling request at a time; the
authors list a job queue and multi-job scheduling as future work (Section 5).
This module implements that extension: a priority queue with pluggable
ordering policies and a draining loop that schedules queued jobs in policy
order, so the ablation benchmark can compare FIFO against smarter orderings.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.job import Job, JobSpec
from repro.utils.exceptions import ClusterError


class QueuePolicy(str, Enum):
    """Ordering policies for the job queue."""

    #: First in, first out (submission order).
    FIFO = "fifo"
    #: Smallest circuits first (by requested qubit count) — reduces head-of-line
    #: blocking when large jobs can only run on a few devices.
    SMALLEST_FIRST = "smallest_first"
    #: Jobs with the tightest fidelity requirement first, so the scarce
    #: high-fidelity devices are assigned before being consumed by lax jobs.
    TIGHTEST_FIDELITY_FIRST = "tightest_fidelity_first"


def _priority(policy: QueuePolicy, spec: JobSpec, sequence: int) -> Tuple:
    if policy == QueuePolicy.FIFO:
        return (sequence,)
    if policy == QueuePolicy.SMALLEST_FIRST:
        return (spec.resources.qubits, sequence)
    if policy == QueuePolicy.TIGHTEST_FIDELITY_FIRST:
        requirement = spec.metadata.get("fidelity_threshold")
        tightness = -float(requirement) if requirement is not None else 0.0
        return (tightness, sequence)
    raise ClusterError(f"Unknown queue policy {policy}")


@dataclass(order=True)
class _QueueEntry:
    priority: Tuple
    sequence: int
    spec: JobSpec = field(compare=False)


class JobQueue:
    """A policy-ordered queue of job specifications awaiting scheduling."""

    def __init__(self, policy: QueuePolicy = QueuePolicy.FIFO) -> None:
        self.policy = policy
        self._heap: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._names: set = set()

    def __len__(self) -> int:
        return len(self._heap)

    def enqueue(self, spec: JobSpec) -> None:
        """Add a job specification to the queue."""
        if spec.name in self._names:
            raise ClusterError(f"Job '{spec.name}' is already queued")
        sequence = next(self._sequence)
        entry = _QueueEntry(priority=_priority(self.policy, spec, sequence), sequence=sequence, spec=spec)
        heapq.heappush(self._heap, entry)
        self._names.add(spec.name)

    def dequeue(self) -> JobSpec:
        """Remove and return the highest-priority job specification."""
        if not self._heap:
            raise ClusterError("The job queue is empty")
        entry = heapq.heappop(self._heap)
        self._names.discard(entry.spec.name)
        return entry.spec

    def peek(self) -> Optional[JobSpec]:
        """The next job to be dequeued, without removing it."""
        return self._heap[0].spec if self._heap else None

    def drain(self) -> List[JobSpec]:
        """Remove and return every queued spec in policy order."""
        specs = []
        while self._heap:
            specs.append(self.dequeue())
        return specs

    def pending_names(self) -> List[str]:
        """Names of queued jobs (unordered)."""
        return sorted(self._names)
