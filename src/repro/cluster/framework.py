"""The scheduling framework: filter plugins, score plugins, one cycle.

This mirrors the Kubernetes scheduler-framework structure the paper builds
on: a scheduling cycle first runs every *filter* plugin to shortlist feasible
nodes, then every *score* plugin to rank them, and finally binds the job to
the winner.  QRIO's contribution is the concrete plugins (requirement
filtering and meta-server-backed ranking); those live in
:mod:`repro.core.scheduler`, while the generic machinery lives here so other
plugin combinations (the random baseline, the oracle, ablations) can reuse it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.job import Job, JobPhase
from repro.cluster.node import Node
from repro.cluster.registry import ClusterState
from repro.utils.exceptions import NoFeasibleNodeError, SchedulingError


class FilterPlugin(abc.ABC):
    """Decides whether a node is feasible for a job."""

    @property
    def name(self) -> str:
        """Plugin name used in events and filter reports."""
        return type(self).__name__

    @abc.abstractmethod
    def filter(self, job: Job, node: Node) -> Tuple[bool, str]:
        """Return ``(feasible, reason)`` for scheduling ``job`` on ``node``."""


class ScorePlugin(abc.ABC):
    """Assigns a score to a feasible node (lower is better, as in the paper)."""

    @property
    def name(self) -> str:
        """Plugin name used in events and score reports."""
        return type(self).__name__

    @abc.abstractmethod
    def score(self, job: Job, node: Node) -> float:
        """Score ``node`` for ``job``; the node with the lowest score wins."""

    def prime(self, job: Job, nodes: Sequence[Node]) -> None:
        """Announce the full scoring shortlist before per-node scoring.

        Called once per scheduling cycle with every node that passed
        filtering, so a plugin can batch cross-node work (e.g. merge canary
        executions into one batched simulation).  Must not change the scores
        the subsequent :meth:`score` calls return; the default is a no-op.
        """


@dataclass
class FilterReport:
    """Outcome of the filtering stage for one job."""

    feasible: List[str] = field(default_factory=list)
    rejected: Dict[str, str] = field(default_factory=dict)

    @property
    def num_feasible(self) -> int:
        """Number of nodes that passed every filter plugin."""
        return len(self.feasible)


@dataclass
class SchedulingDecision:
    """Result of one scheduling cycle."""

    job_name: str
    node_name: Optional[str]
    score: Optional[float]
    filter_report: FilterReport
    scores: Dict[str, float] = field(default_factory=dict)

    @property
    def scheduled(self) -> bool:
        """``True`` when a node was selected."""
        return self.node_name is not None


class SchedulingFramework:
    """Runs filter plugins, score plugins and binding for pending jobs."""

    def __init__(
        self,
        cluster: ClusterState,
        filter_plugins: Sequence[FilterPlugin],
        score_plugins: Sequence[ScorePlugin],
    ) -> None:
        if not score_plugins:
            raise SchedulingError("At least one score plugin is required")
        self._cluster = cluster
        self._filter_plugins = list(filter_plugins)
        self._score_plugins = list(score_plugins)

    # ------------------------------------------------------------------ #
    @property
    def cluster(self) -> ClusterState:
        """The cluster this framework schedules onto."""
        return self._cluster

    def run_filters(self, job: Job, nodes: Optional[Iterable[Node]] = None) -> FilterReport:
        """Run every filter plugin over ``nodes`` (default: schedulable nodes)."""
        report = FilterReport()
        candidates = list(nodes) if nodes is not None else self._cluster.schedulable_nodes()
        for node in candidates:
            rejected_reason: Optional[str] = None
            for plugin in self._filter_plugins:
                feasible, reason = plugin.filter(job, node)
                if not feasible:
                    rejected_reason = f"{plugin.name}: {reason}"
                    break
            if rejected_reason is None:
                report.feasible.append(node.name)
            else:
                report.rejected[node.name] = rejected_reason
        self._cluster.events.record(
            "Filtered",
            job.name,
            f"{report.num_feasible}/{len(candidates)} nodes feasible",
        )
        return report

    def run_scoring(self, job: Job, node_names: Sequence[str]) -> Dict[str, float]:
        """Run every score plugin on the shortlisted nodes and sum their scores."""
        scores: Dict[str, float] = {}
        shortlist = [self._cluster.node(node_name) for node_name in node_names]
        for plugin in self._score_plugins:
            plugin.prime(job, shortlist)
        for node_name in node_names:
            node = self._cluster.node(node_name)
            total = 0.0
            for plugin in self._score_plugins:
                total += plugin.score(job, node)
            scores[node_name] = total
        if scores:
            best = min(scores, key=scores.get)
            self._cluster.events.record(
                "Scored",
                job.name,
                f"{len(scores)} nodes scored; best={best} ({scores[best]:.4f})",
            )
        return scores

    # ------------------------------------------------------------------ #
    def schedule(self, job: Job, bind: bool = True) -> SchedulingDecision:
        """Run one full scheduling cycle for ``job``.

        When filtering leaves no node, the job is marked unschedulable — the
        situation the paper describes for overly tight two-qubit error bounds
        in the Fig. 10 experiment.
        """
        if job.phase not in (JobPhase.PENDING, JobPhase.UNSCHEDULABLE):
            raise SchedulingError(f"Job '{job.name}' is not pending (phase {job.phase.value})")
        filter_report = self.run_filters(job)
        if filter_report.num_feasible == 0:
            job.mark_unschedulable("no node satisfies the job's requirements")
            self._cluster.events.record("Unschedulable", job.name, "0 feasible nodes after filtering")
            return SchedulingDecision(
                job_name=job.name,
                node_name=None,
                score=None,
                filter_report=filter_report,
            )
        scores = self.run_scoring(job, filter_report.feasible)
        best_node = min(scores, key=lambda name: (scores[name], name))
        decision = SchedulingDecision(
            job_name=job.name,
            node_name=best_node,
            score=scores[best_node],
            filter_report=filter_report,
            scores=scores,
        )
        if bind:
            self._cluster.bind(job.name, best_node, score=scores[best_node])
        return decision

    def schedule_pending(self, bind: bool = True) -> List[SchedulingDecision]:
        """Schedule every pending job in submission order."""
        decisions = []
        for job in self._cluster.pending_jobs():
            decisions.append(self.schedule(job, bind=bind))
        return decisions
