"""Kubernetes-like cluster substrate: nodes, jobs, scheduling framework, containers."""

from repro.cluster.container import CONTAINER_REQUIREMENTS, ContainerImage, ImageBuilder, ImageRegistry
from repro.cluster.events import Event, EventLog
from repro.cluster.framework import (
    FilterPlugin,
    FilterReport,
    SchedulingDecision,
    SchedulingFramework,
    ScorePlugin,
)
from repro.cluster.job import DeviceConstraints, Job, JobPhase, JobSpec, ResourceRequest
from repro.cluster.labels import NodeLabels
from repro.cluster.node import Node, NodeCapacity, NodeStatus
from repro.cluster.queue import JobQueue, QueuePolicy
from repro.cluster.registry import ClusterState

__all__ = [
    "CONTAINER_REQUIREMENTS",
    "ClusterState",
    "ContainerImage",
    "DeviceConstraints",
    "Event",
    "EventLog",
    "FilterPlugin",
    "FilterReport",
    "ImageBuilder",
    "ImageRegistry",
    "Job",
    "JobPhase",
    "JobQueue",
    "JobSpec",
    "Node",
    "NodeCapacity",
    "NodeLabels",
    "NodeStatus",
    "QueuePolicy",
    "ResourceRequest",
    "SchedulingDecision",
    "SchedulingFramework",
    "ScorePlugin",
]
