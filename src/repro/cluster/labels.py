"""Node labels: the key/value metadata QRIO attaches to every cluster node.

Section 3.1: "we label each node in the cluster with its properties which
helps Kubernetes in the scheduling process of a job.  Concretely, we specify
the following parameters: Number of qubits, Average two-qubit gate error,
Average T1 and T2 times for the entire device, Average readout error rate,
CPU and Memory capacity of the node."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.backends.backend import Backend
from repro.utils.validation import require_finite_float, require_non_negative_int

#: Canonical label keys used across the scheduler, meta server and dashboard.
LABEL_QUBITS = "qrio.io/qubits"
LABEL_AVG_TWO_QUBIT_ERROR = "qrio.io/avg-two-qubit-error"
LABEL_AVG_READOUT_ERROR = "qrio.io/avg-readout-error"
LABEL_AVG_T1 = "qrio.io/avg-t1"
LABEL_AVG_T2 = "qrio.io/avg-t2"
LABEL_CPU_MILLICORES = "qrio.io/cpu-millicores"
LABEL_MEMORY_MB = "qrio.io/memory-mb"
LABEL_SIMULATOR_KIND = "qrio.io/simulator-kind"


@dataclass
class NodeLabels:
    """Structured view over a node's label dictionary."""

    qubits: int
    avg_two_qubit_error: float
    avg_readout_error: float
    avg_t1: float
    avg_t2: float
    cpu_millicores: int
    memory_mb: int
    simulator_kind: str = "noisy-simulator"
    extra: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_non_negative_int(self.qubits, "qubits")
        require_finite_float(self.avg_two_qubit_error, "avg_two_qubit_error")
        require_finite_float(self.avg_readout_error, "avg_readout_error")
        require_non_negative_int(self.cpu_millicores, "cpu_millicores")
        require_non_negative_int(self.memory_mb, "memory_mb")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_backend(
        cls,
        backend: Backend,
        cpu_millicores: int = 4000,
        memory_mb: int = 8192,
        simulator_kind: str = "noisy-simulator",
    ) -> "NodeLabels":
        """Derive labels from a backend's calibration data."""
        properties = backend.properties
        return cls(
            qubits=properties.num_qubits,
            avg_two_qubit_error=properties.average_two_qubit_error(),
            avg_readout_error=properties.average_readout_error(),
            avg_t1=properties.average_t1(),
            avg_t2=properties.average_t2(),
            cpu_millicores=cpu_millicores,
            memory_mb=memory_mb,
            simulator_kind=simulator_kind,
        )

    def as_dict(self) -> Dict[str, str]:
        """Flatten to the string key/value form Kubernetes labels use."""
        labels = {
            LABEL_QUBITS: str(self.qubits),
            LABEL_AVG_TWO_QUBIT_ERROR: f"{self.avg_two_qubit_error:.6f}",
            LABEL_AVG_READOUT_ERROR: f"{self.avg_readout_error:.6f}",
            LABEL_AVG_T1: f"{self.avg_t1:.1f}",
            LABEL_AVG_T2: f"{self.avg_t2:.1f}",
            LABEL_CPU_MILLICORES: str(self.cpu_millicores),
            LABEL_MEMORY_MB: str(self.memory_mb),
            LABEL_SIMULATOR_KIND: self.simulator_kind,
        }
        labels.update(self.extra)
        return labels

    @classmethod
    def from_dict(cls, labels: Mapping[str, str]) -> "NodeLabels":
        """Parse labels back from their string form."""
        known = {
            LABEL_QUBITS,
            LABEL_AVG_TWO_QUBIT_ERROR,
            LABEL_AVG_READOUT_ERROR,
            LABEL_AVG_T1,
            LABEL_AVG_T2,
            LABEL_CPU_MILLICORES,
            LABEL_MEMORY_MB,
            LABEL_SIMULATOR_KIND,
        }
        return cls(
            qubits=int(labels[LABEL_QUBITS]),
            avg_two_qubit_error=float(labels[LABEL_AVG_TWO_QUBIT_ERROR]),
            avg_readout_error=float(labels[LABEL_AVG_READOUT_ERROR]),
            avg_t1=float(labels[LABEL_AVG_T1]),
            avg_t2=float(labels[LABEL_AVG_T2]),
            cpu_millicores=int(labels[LABEL_CPU_MILLICORES]),
            memory_mb=int(labels[LABEL_MEMORY_MB]),
            simulator_kind=labels.get(LABEL_SIMULATOR_KIND, "noisy-simulator"),
            extra={key: value for key, value in labels.items() if key not in known},
        )
