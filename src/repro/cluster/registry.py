"""The cluster state: node registry, job registry and the event log.

This is the in-process stand-in for the Kubernetes API server: vendors
register worker nodes (each wrapping a quantum backend), the master server
submits jobs, the scheduler binds jobs to nodes, and everything that happens
is recorded as events.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.backends.backend import Backend
from repro.cluster.events import EventLog
from repro.cluster.job import Job, JobPhase, JobSpec
from repro.cluster.node import Node, NodeCapacity
from repro.utils.exceptions import ClusterError


class ClusterState:
    """Registry of nodes and jobs plus the cluster-wide event log."""

    def __init__(self, name: str = "qrio-cluster") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._jobs: Dict[str, Job] = {}
        self.events = EventLog()

    # ------------------------------------------------------------------ #
    # Nodes
    # ------------------------------------------------------------------ #
    def register_node(self, node: Node) -> Node:
        """Add a worker node to the cluster."""
        if node.name in self._nodes:
            raise ClusterError(f"Node '{node.name}' is already registered")
        self._nodes[node.name] = node
        self.events.record("NodeRegistered", node.name, f"backend={node.backend.name}, qubits={node.backend.num_qubits}")
        return node

    def register_backend(self, backend: Backend, capacity: Optional[NodeCapacity] = None) -> Node:
        """Convenience: wrap ``backend`` in a node and register it."""
        node = Node(backend, capacity=capacity)
        return self.register_node(node)

    def register_backends(self, backends: Iterable[Backend]) -> List[Node]:
        """Register a whole fleet of backends at once."""
        return [self.register_backend(backend) for backend in backends]

    def remove_node(self, name: str) -> None:
        """Remove a node (e.g. a vendor withdrawing a device)."""
        node = self.node(name)
        if node.bound_jobs:
            raise ClusterError(
                f"Node '{name}' still has bound jobs: {node.bound_jobs}; drain it first"
            )
        del self._nodes[name]
        self.events.record("NodeRemoved", name, "node removed from cluster")

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        if name not in self._nodes:
            raise ClusterError(f"Unknown node '{name}'")
        return self._nodes[name]

    def nodes(self) -> List[Node]:
        """All registered nodes (registration order)."""
        return list(self._nodes.values())

    def schedulable_nodes(self) -> List[Node]:
        """Nodes currently accepting new jobs."""
        return [node for node in self._nodes.values() if node.is_schedulable()]

    def backends(self) -> List[Backend]:
        """The quantum backends of all registered nodes."""
        return [node.backend for node in self._nodes.values()]

    # ------------------------------------------------------------------ #
    # Jobs
    # ------------------------------------------------------------------ #
    def submit_job(self, spec: JobSpec) -> Job:
        """Accept a job specification and track it as Pending."""
        if spec.name in self._jobs and not self._jobs[spec.name].is_finished():
            raise ClusterError(f"A job named '{spec.name}' is already active")
        job = Job(spec=spec)
        self._jobs[spec.name] = job
        self.events.record("JobSubmitted", spec.name, f"strategy={spec.strategy}, image={spec.image}")
        return job

    def job(self, name: str) -> Job:
        """Look up a job by name."""
        if name not in self._jobs:
            raise ClusterError(f"Unknown job '{name}'")
        return self._jobs[name]

    def jobs(self, phase: Optional[JobPhase] = None) -> List[Job]:
        """All jobs, optionally filtered by phase."""
        jobs = list(self._jobs.values())
        if phase is None:
            return jobs
        return [job for job in jobs if job.phase == phase]

    def pending_jobs(self) -> List[Job]:
        """Jobs waiting for a scheduling decision."""
        return self.jobs(JobPhase.PENDING)

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    def bind(self, job_name: str, node_name: str, score: Optional[float] = None) -> None:
        """Bind a pending job to a node, reserving the node's resources."""
        job = self.job(job_name)
        node = self.node(node_name)
        node.allocate(job_name, job.spec.resources.cpu_millicores, job.spec.resources.memory_mb)
        job.mark_scheduled(node_name, score=score)
        self.events.record("Bound", job_name, f"bound to {node_name}" + (f" (score {score:.4f})" if score is not None else ""))

    def release(self, job_name: str) -> None:
        """Release a finished job's resources from its node."""
        job = self.job(job_name)
        if job.node_name is None:
            return
        node = self.node(job.node_name)
        if job_name in node.bound_jobs:
            node.release(job_name, job.spec.resources.cpu_millicores, job.spec.resources.memory_mb)
            self.events.record("Released", job_name, f"resources released on {job.node_name}")

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Cluster-wide summary used by the dashboard's front page."""
        return {
            "name": self.name,
            "nodes": [node.describe() for node in self._nodes.values()],
            "jobs": [job.describe() for job in self._jobs.values()],
            "num_events": len(self.events),
        }
