"""Cluster event records (the `kubectl get events` equivalent)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

_EVENT_SEQUENCE = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """One observable cluster event.

    Attributes
    ----------
    kind:
        Event category (``NodeRegistered``, ``JobSubmitted``, ``Filtered``,
        ``Scored``, ``Bound``, ``Executed``, ``Failed``, ...).
    subject:
        The object the event is about (job or node name).
    message:
        Human-readable detail.
    sequence:
        Monotonically increasing event index (stands in for a timestamp so
        experiment runs remain deterministic).
    """

    kind: str
    subject: str
    message: str
    sequence: int = field(default_factory=lambda: next(_EVENT_SEQUENCE))


class EventLog:
    """Append-only list of events with simple querying."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(self, kind: str, subject: str, message: str) -> Event:
        """Append and return a new event."""
        event = Event(kind=kind, subject=subject, message=message)
        self._events.append(event)
        return event

    def all(self) -> List[Event]:
        """All events in record order."""
        return list(self._events)

    def for_subject(self, subject: str) -> List[Event]:
        """Events about one job or node."""
        return [event for event in self._events if event.subject == subject]

    def of_kind(self, kind: str) -> List[Event]:
        """Events of one category."""
        return [event for event in self._events if event.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering (newest last)."""
        events = self._events if limit is None else self._events[-limit:]
        lines = [f"[{event.sequence:05d}] {event.kind:<16s} {event.subject:<28s} {event.message}" for event in events]
        return "\n".join(lines)
