"""OpenQASM 2.0 front end: tokenizer, parser and exporter."""

from repro.qasm.exporter import dump_qasm, write_qasm_file
from repro.qasm.parser import QASMParser, load_qasm_file, parse_qasm
from repro.qasm.tokenizer import Token, TokenStream, tokenize

__all__ = [
    "QASMParser",
    "Token",
    "TokenStream",
    "dump_qasm",
    "load_qasm_file",
    "parse_qasm",
    "tokenize",
    "write_qasm_file",
]
