"""Tokenizer for the OpenQASM 2.0 subset QRIO jobs are written in.

Job circuits enter QRIO as QASM files uploaded through the visualizer, so
the library ships a small, dependency-free OpenQASM 2.0 front end.  The
tokenizer produces a flat token stream; :mod:`repro.qasm.parser` turns that
stream into a :class:`repro.circuits.QuantumCircuit`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.utils.exceptions import QASMError


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    kind:
        One of ``ID``, ``NUMBER``, ``STRING``, ``SYMBOL``, ``ARROW``.
    text:
        The raw token text.
    line:
        1-based source line, used for error messages.
    """

    kind: str
    text: str
    line: int


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<COMMENT>//[^\n]*)
  | (?P<STRING>"[^"\n]*")
  | (?P<NUMBER>(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?)
  | (?P<ARROW>->)
  | (?P<ID>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<SYMBOL>[{}()\[\];,+\-*/^])
  | (?P<NEWLINE>\n)
  | (?P<WHITESPACE>[ \t\r]+)
  | (?P<MISMATCH>.)
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list of :class:`Token`.

    Comments and whitespace are dropped.  Any unrecognised character raises
    :class:`~repro.utils.exceptions.QASMError` with the offending line number.
    """
    tokens: List[Token] = []
    line = 1
    for match in _TOKEN_PATTERN.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind == "NEWLINE":
            line += 1
            continue
        if kind in ("WHITESPACE", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise QASMError(f"Unexpected character {text!r} on line {line}")
        tokens.append(Token(kind, text, line))
    return tokens


class TokenStream:
    """Cursor over a token list with the small lookahead the parser needs."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Token:
        """Return the next token without consuming it."""
        if self._index >= len(self._tokens):
            raise QASMError("Unexpected end of QASM input")
        return self._tokens[self._index]

    def at_end(self) -> bool:
        """``True`` when every token has been consumed."""
        return self._index >= len(self._tokens)

    def advance(self) -> Token:
        """Consume and return the next token."""
        token = self.peek()
        self._index += 1
        return token

    def expect(self, text: str) -> Token:
        """Consume the next token, requiring its text to equal ``text``."""
        token = self.advance()
        if token.text != text:
            raise QASMError(
                f"Expected {text!r} on line {token.line}, found {token.text!r}"
            )
        return token

    def accept(self, text: str) -> bool:
        """Consume the next token if its text equals ``text``."""
        if not self.at_end() and self.peek().text == text:
            self._index += 1
            return True
        return False

    def expect_kind(self, kind: str) -> Token:
        """Consume the next token, requiring it to be of ``kind``."""
        token = self.advance()
        if token.kind != kind:
            raise QASMError(
                f"Expected a {kind} token on line {token.line}, found {token.text!r}"
            )
        return token
