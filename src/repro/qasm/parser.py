"""Recursive-descent parser turning OpenQASM 2.0 text into a circuit.

Supported constructs (the subset the QRIO workloads and job submissions use):

* ``OPENQASM 2.0;`` header and ``include`` statements (includes are accepted
  and ignored — the standard gate library is built in).
* Multiple ``qreg``/``creg`` declarations; registers are flattened into a
  single qubit/clbit index space in declaration order.
* Gate applications with parameter expressions over numbers, ``pi``, unary
  minus, ``+ - * / ^`` and parentheses.
* ``measure q[i] -> c[j];`` for single bits and ``measure q -> c;`` for whole
  registers.
* ``barrier`` and ``reset``.

Custom ``gate`` definitions, ``if`` statements and ``opaque`` declarations are
rejected with an informative error, mirroring the job validation a cloud
front end would perform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_spec, is_known_gate
from repro.circuits.instruction import Instruction
from repro.qasm.tokenizer import Token, TokenStream, tokenize
from repro.utils.exceptions import QASMError

#: Gate spellings that appear in qelib1.inc but map onto this library's names.
_GATE_ALIASES = {
    "cnot": "cx",
    "toffoli": "ccx",
    "i": "id",
    "iden": "id",
    "u0": "id",
    "phase": "p",
}


@dataclass
class _Register:
    """A declared QASM register and its offset in the flattened index space."""

    name: str
    size: int
    offset: int


class QASMParser:
    """Parser object; use :func:`parse_qasm` for the functional interface."""

    def __init__(self, source: str, name: Optional[str] = None) -> None:
        self._stream = TokenStream(tokenize(source))
        self._qregs: Dict[str, _Register] = {}
        self._cregs: Dict[str, _Register] = {}
        self._name = name or "qasm_circuit"
        self._pending: List[Instruction] = []

    # ------------------------------------------------------------------ #
    def parse(self) -> QuantumCircuit:
        """Parse the full program and return the resulting circuit."""
        self._parse_header()
        while not self._stream.at_end():
            self._parse_statement()
        num_qubits = sum(reg.size for reg in self._qregs.values())
        num_clbits = sum(reg.size for reg in self._cregs.values())
        if num_qubits == 0:
            raise QASMError("QASM program declares no qubits")
        circuit = QuantumCircuit(num_qubits, max(num_clbits, num_qubits), name=self._name)
        for instruction in self._pending:
            circuit.append(instruction)
        return circuit

    # ------------------------------------------------------------------ #
    def _parse_header(self) -> None:
        token = self._stream.peek()
        if token.text == "OPENQASM":
            self._stream.advance()
            version = self._stream.expect_kind("NUMBER")
            if not version.text.startswith("2"):
                raise QASMError(f"Only OpenQASM 2.x is supported, got {version.text}")
            self._stream.expect(";")

    def _parse_statement(self) -> None:
        token = self._stream.peek()
        if token.text == "include":
            self._stream.advance()
            self._stream.expect_kind("STRING")
            self._stream.expect(";")
        elif token.text in ("qreg", "creg"):
            self._parse_register(token.text)
        elif token.text == "measure":
            self._parse_measure()
        elif token.text == "barrier":
            self._parse_barrier()
        elif token.text == "reset":
            self._parse_reset()
        elif token.text in ("gate", "opaque", "if"):
            raise QASMError(
                f"'{token.text}' statements are not supported (line {token.line})"
            )
        elif token.kind == "ID":
            self._parse_gate_application()
        else:
            raise QASMError(f"Unexpected token {token.text!r} on line {token.line}")

    def _parse_register(self, kind: str) -> None:
        self._stream.advance()
        name = self._stream.expect_kind("ID").text
        self._stream.expect("[")
        size_token = self._stream.expect_kind("NUMBER")
        self._stream.expect("]")
        self._stream.expect(";")
        size = int(float(size_token.text))
        if size <= 0:
            raise QASMError(f"Register '{name}' must have positive size")
        registers = self._qregs if kind == "qreg" else self._cregs
        if name in self._qregs or name in self._cregs:
            raise QASMError(f"Register '{name}' declared twice")
        offset = sum(reg.size for reg in registers.values())
        registers[name] = _Register(name, size, offset)

    # ------------------------------------------------------------------ #
    def _resolve_qubit(self, register: str, index: int, line: int) -> int:
        if register not in self._qregs:
            raise QASMError(f"Unknown quantum register '{register}' on line {line}")
        reg = self._qregs[register]
        if not 0 <= index < reg.size:
            raise QASMError(
                f"Index {index} out of range for register '{register}[{reg.size}]' on line {line}"
            )
        return reg.offset + index

    def _resolve_clbit(self, register: str, index: int, line: int) -> int:
        if register not in self._cregs:
            raise QASMError(f"Unknown classical register '{register}' on line {line}")
        reg = self._cregs[register]
        if not 0 <= index < reg.size:
            raise QASMError(
                f"Index {index} out of range for register '{register}[{reg.size}]' on line {line}"
            )
        return reg.offset + index

    def _parse_argument(self) -> Tuple[str, Optional[int], int]:
        """Parse ``name`` or ``name[index]`` and return (name, index, line)."""
        token = self._stream.expect_kind("ID")
        index: Optional[int] = None
        if self._stream.accept("["):
            index_token = self._stream.expect_kind("NUMBER")
            index = int(float(index_token.text))
            self._stream.expect("]")
        return token.text, index, token.line

    def _expand_qubit_argument(self, name: str, index: Optional[int], line: int) -> List[int]:
        if index is not None:
            return [self._resolve_qubit(name, index, line)]
        if name not in self._qregs:
            raise QASMError(f"Unknown quantum register '{name}' on line {line}")
        reg = self._qregs[name]
        return [reg.offset + i for i in range(reg.size)]

    # ------------------------------------------------------------------ #
    def _parse_measure(self) -> None:
        self._stream.expect("measure")
        q_name, q_index, line = self._parse_argument()
        self._stream.expect("->")
        c_name, c_index, c_line = self._parse_argument()
        self._stream.expect(";")
        if (q_index is None) != (c_index is None):
            raise QASMError(f"Mismatched measure operands on line {line}")
        if q_index is not None:
            qubit = self._resolve_qubit(q_name, q_index, line)
            clbit = self._resolve_clbit(c_name, c_index, c_line)
            self._pending.append(Instruction("measure", (qubit,), clbits=(clbit,)))
            return
        qreg = self._qregs.get(q_name)
        creg = self._cregs.get(c_name)
        if qreg is None:
            raise QASMError(f"Unknown quantum register '{q_name}' on line {line}")
        if creg is None:
            raise QASMError(f"Unknown classical register '{c_name}' on line {c_line}")
        if qreg.size != creg.size:
            raise QASMError(
                f"Register sizes differ in 'measure {q_name} -> {c_name}' on line {line}"
            )
        for i in range(qreg.size):
            self._pending.append(
                Instruction("measure", (qreg.offset + i,), clbits=(creg.offset + i,))
            )

    def _parse_barrier(self) -> None:
        self._stream.expect("barrier")
        qubits: List[int] = []
        while True:
            name, index, line = self._parse_argument()
            qubits.extend(self._expand_qubit_argument(name, index, line))
            if not self._stream.accept(","):
                break
        self._stream.expect(";")
        self._pending.append(Instruction("barrier", tuple(qubits)))

    def _parse_reset(self) -> None:
        self._stream.expect("reset")
        name, index, line = self._parse_argument()
        self._stream.expect(";")
        for qubit in self._expand_qubit_argument(name, index, line):
            self._pending.append(Instruction("reset", (qubit,)))

    def _parse_gate_application(self) -> None:
        name_token = self._stream.expect_kind("ID")
        gate_name = _GATE_ALIASES.get(name_token.text.lower(), name_token.text.lower())
        if not is_known_gate(gate_name):
            raise QASMError(
                f"Unsupported gate '{name_token.text}' on line {name_token.line}"
            )
        spec = gate_spec(gate_name)
        params: List[float] = []
        if self._stream.accept("("):
            if not self._stream.accept(")"):
                while True:
                    params.append(self._parse_expression())
                    if self._stream.accept(")"):
                        break
                    self._stream.expect(",")
        operands: List[Tuple[str, Optional[int], int]] = []
        while True:
            operands.append(self._parse_argument())
            if not self._stream.accept(","):
                break
        self._stream.expect(";")

        expanded = [self._expand_qubit_argument(name, index, line) for name, index, line in operands]
        broadcast_size = max(len(group) for group in expanded)
        for group in expanded:
            if len(group) not in (1, broadcast_size):
                raise QASMError(
                    f"Cannot broadcast operands of '{gate_name}' on line {name_token.line}"
                )
        for position in range(broadcast_size):
            qubits = tuple(
                group[position] if len(group) > 1 else group[0] for group in expanded
            )
            if len(qubits) != spec.num_qubits:
                raise QASMError(
                    f"Gate '{gate_name}' expects {spec.num_qubits} operand(s) on line {name_token.line}"
                )
            self._pending.append(Instruction(gate_name, qubits, params=tuple(params)))

    # ------------------------------------------------------------------ #
    # Parameter expressions: standard precedence-climbing over + - * / ^.
    # ------------------------------------------------------------------ #
    def _parse_expression(self) -> float:
        return self._parse_additive()

    def _parse_additive(self) -> float:
        value = self._parse_multiplicative()
        while not self._stream.at_end() and self._stream.peek().text in ("+", "-"):
            operator = self._stream.advance().text
            rhs = self._parse_multiplicative()
            value = value + rhs if operator == "+" else value - rhs
        return value

    def _parse_multiplicative(self) -> float:
        value = self._parse_unary()
        while not self._stream.at_end() and self._stream.peek().text in ("*", "/"):
            operator = self._stream.advance().text
            rhs = self._parse_unary()
            if operator == "*":
                value *= rhs
            else:
                if rhs == 0:
                    raise QASMError("Division by zero in gate parameter expression")
                value /= rhs
        return value

    def _parse_unary(self) -> float:
        if self._stream.accept("-"):
            return -self._parse_unary()
        if self._stream.accept("+"):
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> float:
        value = self._parse_atom()
        if not self._stream.at_end() and self._stream.peek().text == "^":
            self._stream.advance()
            exponent = self._parse_unary()
            value = value**exponent
        return value

    def _parse_atom(self) -> float:
        token = self._stream.advance()
        if token.kind == "NUMBER":
            return float(token.text)
        if token.kind == "ID":
            if token.text.lower() == "pi":
                return math.pi
            if token.text.lower() in ("sin", "cos", "tan", "exp", "ln", "sqrt"):
                self._stream.expect("(")
                argument = self._parse_expression()
                self._stream.expect(")")
                functions = {
                    "sin": math.sin,
                    "cos": math.cos,
                    "tan": math.tan,
                    "exp": math.exp,
                    "ln": math.log,
                    "sqrt": math.sqrt,
                }
                return functions[token.text.lower()](argument)
            raise QASMError(f"Unknown identifier '{token.text}' in expression on line {token.line}")
        if token.text == "(":
            value = self._parse_expression()
            self._stream.expect(")")
            return value
        raise QASMError(f"Unexpected token {token.text!r} in expression on line {token.line}")


def parse_qasm(source: str, name: Optional[str] = None) -> QuantumCircuit:
    """Parse OpenQASM 2.0 ``source`` into a :class:`QuantumCircuit`."""
    return QASMParser(source, name=name).parse()


def load_qasm_file(path, name: Optional[str] = None) -> QuantumCircuit:
    """Read ``path`` and parse its contents as OpenQASM 2.0."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return parse_qasm(source, name=name)
