"""Export :class:`~repro.circuits.QuantumCircuit` objects as OpenQASM 2.0 text.

The exporter is the counterpart of :mod:`repro.qasm.parser`: QRIO's master
server materialises every job's circuit as a QASM file inside the container
image it builds, and the visualizer round-trips user uploads through this
format, so ``parse(dump(circuit))`` must reproduce the original circuit.
"""

from __future__ import annotations

import math
from typing import List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.utils.exceptions import QASMError

#: Gate names that are emitted verbatim (they exist in qelib1.inc).
_DIRECT_GATES = {
    "id",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "rx",
    "ry",
    "rz",
    "p",
    "u1",
    "u2",
    "u3",
    "u",
    "cx",
    "cz",
    "cy",
    "ch",
    "swap",
    "crz",
    "cu1",
    "cp",
    "rzz",
    "ccx",
    "ccz",
}


def _format_parameter(value: float) -> str:
    """Render a gate angle, preferring exact multiples of pi for readability."""
    if value == 0:
        return "0"
    for denominator in (1, 2, 3, 4, 6, 8, 16):
        for numerator in range(-16, 17):
            if numerator == 0:
                continue
            candidate = numerator * math.pi / denominator
            if abs(candidate - value) < 1e-12:
                sign = "-" if numerator < 0 else ""
                numerator = abs(numerator)
                if numerator == 1 and denominator == 1:
                    return f"{sign}pi"
                if denominator == 1:
                    return f"{sign}{numerator}*pi"
                if numerator == 1:
                    return f"{sign}pi/{denominator}"
                return f"{sign}{numerator}*pi/{denominator}"
    return repr(float(value))


def _format_instruction(instruction: Instruction) -> str:
    name = instruction.name
    if name == "measure":
        qubit = instruction.qubits[0]
        clbit = instruction.clbits[0]
        return f"measure q[{qubit}] -> c[{clbit}];"
    if name == "barrier":
        operands = ",".join(f"q[{qubit}]" for qubit in instruction.qubits)
        return f"barrier {operands};"
    if name == "reset":
        return f"reset q[{instruction.qubits[0]}];"
    if name not in _DIRECT_GATES:
        raise QASMError(f"Gate '{name}' has no OpenQASM 2 spelling")
    params = ""
    if instruction.params:
        params = "(" + ",".join(_format_parameter(p) for p in instruction.params) + ")"
    operands = ",".join(f"q[{qubit}]" for qubit in instruction.qubits)
    return f"{name}{params} {operands};"


def dump_qasm(circuit: QuantumCircuit) -> str:
    """Serialise ``circuit`` to OpenQASM 2.0 source text."""
    lines: List[str] = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    if circuit.num_clbits > 0:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for instruction in circuit:
        lines.append(_format_instruction(instruction))
    return "\n".join(lines) + "\n"


def write_qasm_file(circuit: QuantumCircuit, path) -> None:
    """Write ``circuit`` to ``path`` as OpenQASM 2.0."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_qasm(circuit))
