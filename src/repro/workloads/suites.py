"""Named workload suites: weighted mixes of circuits for multi-job experiments.

The paper's evaluation schedules one job at a time; its future-work section
(item 4) calls for multi-job scheduling, which needs a *stream* of jobs with
a realistic mix of circuit families.  A :class:`WorkloadSuite` describes such
a mix: each entry is a circuit factory plus a relative arrival weight, the
ranking strategy the submitting user would pick (fidelity or topology) and a
default fidelity requirement.  The scenario layer's arrival processes
(:mod:`repro.scenarios.arrivals`) sample from these suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.algorithms import (
    deutsch_jozsa,
    hardware_efficient_ansatz,
    phase_estimation,
    qaoa_maxcut,
    ripple_carry_adder,
    simon,
    w_state,
)
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import bernstein_vazirani, ghz, grover_search, hidden_subgroup, qft, repetition_code_encoder
from repro.circuits.random_circuits import circ2_benchmark, circ_benchmark, grid_random_circuit
from repro.utils.exceptions import CircuitError
from repro.utils.rng import SeedLike, ensure_generator


@dataclass(frozen=True)
class SuiteEntry:
    """One circuit family within a workload suite."""

    key: str
    label: str
    factory: Callable[[], QuantumCircuit]
    #: Relative arrival weight within the suite (need not be normalised).
    weight: float = 1.0
    #: Which QRIO ranking strategy a user submitting this circuit would pick.
    strategy: str = "fidelity"
    #: Default fidelity requirement attached to fidelity-strategy submissions.
    fidelity_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise CircuitError(f"Suite entry '{self.key}' must have a positive weight")
        if self.strategy not in ("fidelity", "topology"):
            raise CircuitError(f"Suite entry '{self.key}' strategy must be 'fidelity' or 'topology'")
        if not 0.0 < self.fidelity_threshold <= 1.0:
            raise CircuitError(f"Suite entry '{self.key}' fidelity_threshold must lie in (0, 1]")

    def circuit(self) -> QuantumCircuit:
        """Build a fresh instance of the entry's circuit."""
        return self.factory()


@dataclass(frozen=True)
class WorkloadSuite:
    """A named, weighted collection of circuit families."""

    name: str
    entries: Tuple[SuiteEntry, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise CircuitError(f"Workload suite '{self.name}' must contain at least one entry")
        keys = [entry.key for entry in self.entries]
        if len(keys) != len(set(keys)):
            raise CircuitError(f"Workload suite '{self.name}' has duplicate entry keys")

    # ------------------------------------------------------------------ #
    def keys(self) -> List[str]:
        """Entry keys in declaration order."""
        return [entry.key for entry in self.entries]

    def entry(self, key: str) -> SuiteEntry:
        """Look up one entry by key."""
        for entry in self.entries:
            if entry.key == key:
                return entry
        raise KeyError(f"Suite '{self.name}' has no entry '{key}'")

    def circuits(self) -> Dict[str, QuantumCircuit]:
        """One freshly built circuit per entry, keyed by entry key."""
        return {entry.key: entry.circuit() for entry in self.entries}

    def weights(self) -> List[float]:
        """Normalised sampling probabilities in entry order."""
        total = sum(entry.weight for entry in self.entries)
        return [entry.weight / total for entry in self.entries]

    def sample(self, rng: Optional[np.random.Generator] = None, seed: SeedLike = None) -> SuiteEntry:
        """Draw one entry according to the suite's weights."""
        rng = rng if rng is not None else ensure_generator(seed)
        index = int(rng.choice(len(self.entries), p=self.weights()))
        return self.entries[index]

    def sample_many(self, count: int, rng: Optional[np.random.Generator] = None, seed: SeedLike = None) -> List[SuiteEntry]:
        """Draw ``count`` entries with replacement."""
        rng = rng if rng is not None else ensure_generator(seed)
        return [self.sample(rng=rng) for _ in range(count)]


# --------------------------------------------------------------------------- #
# Built-in suites
# --------------------------------------------------------------------------- #
def paper_evaluation_suite() -> WorkloadSuite:
    """The six Fig. 7 workloads with equal weights (all fidelity-strategy)."""
    return WorkloadSuite(
        name="paper_eval",
        entries=(
            SuiteEntry("bv", "Bv", lambda: bernstein_vazirani("1" * 9)),
            SuiteEntry("hsp", "Hsp", lambda: hidden_subgroup(4)),
            SuiteEntry("rep", "Rep", lambda: repetition_code_encoder(5)),
            SuiteEntry("grover", "Grover", lambda: grover_search(3)),
            SuiteEntry("circ", "Circ", lambda: circ_benchmark()),
            SuiteEntry("circ_2", "Circ_2", lambda: circ2_benchmark()),
        ),
    )


def clifford_suite() -> WorkloadSuite:
    """Circuits that are entirely Clifford (canary == original circuit)."""
    return WorkloadSuite(
        name="clifford",
        entries=(
            SuiteEntry("bv", "Bernstein-Vazirani", lambda: bernstein_vazirani("10101")),
            SuiteEntry("ghz", "GHZ", lambda: ghz(6)),
            SuiteEntry("rep", "Repetition code", lambda: repetition_code_encoder(5)),
            SuiteEntry("hsp", "Hidden subgroup", lambda: hidden_subgroup(4)),
            SuiteEntry("simon", "Simon", lambda: simon("110")),
            SuiteEntry("dj", "Deutsch-Jozsa", lambda: deutsch_jozsa(4, "balanced")),
        ),
    )


def nisq_mix_suite() -> WorkloadSuite:
    """A heterogeneous near-term mix: variational, oracle and arithmetic jobs.

    Weights loosely follow the job-mix characterisation of quantum-cloud
    measurement studies: many small variational/oracle circuits, fewer wide
    structured circuits, occasional arithmetic workloads.  Variational
    workloads (QAOA, VQE) favour the topology strategy because their
    interaction structure is known in advance — the user persona the paper's
    topology-ranking use case targets.
    """
    ring_edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]
    return WorkloadSuite(
        name="nisq_mix",
        entries=(
            SuiteEntry("qaoa_ring", "QAOA ring-5", lambda: qaoa_maxcut(ring_edges, layers=1), weight=3.0, strategy="topology"),
            SuiteEntry(
                "vqe_4",
                "VQE ansatz 4q",
                lambda: hardware_efficient_ansatz(4, layers=2, measure=True),
                weight=3.0,
                strategy="topology",
            ),
            SuiteEntry("bv_6", "Bernstein-Vazirani 6q", lambda: bernstein_vazirani("10111"), weight=2.0, fidelity_threshold=0.9),
            SuiteEntry("ghz_5", "GHZ 5q", lambda: ghz(5), weight=2.0, fidelity_threshold=0.8),
            SuiteEntry("qft_4", "QFT 4q", lambda: qft(4, measure=True), weight=1.5, fidelity_threshold=0.7),
            SuiteEntry("dj_4", "Deutsch-Jozsa 4q", lambda: deutsch_jozsa(4, "balanced"), weight=1.5, fidelity_threshold=0.9),
            SuiteEntry("qpe_3", "Phase estimation 3q", lambda: phase_estimation(3, 0.25), weight=1.0, fidelity_threshold=0.7),
            SuiteEntry("w_4", "W state 4q", lambda: w_state(4, measure=True), weight=1.0, fidelity_threshold=0.8),
            SuiteEntry("adder_2", "Adder 2-bit", lambda: ripple_carry_adder(2, 1, 2), weight=1.0, fidelity_threshold=0.6),
            SuiteEntry("grover_3", "Grover 3q", lambda: grover_search(3), weight=1.0, fidelity_threshold=0.8),
        ),
    )


def grid_random_suite() -> WorkloadSuite:
    """Supremacy-style grid random circuits at increasing widths.

    Every entry is a fixed-seed :func:`~repro.circuits.grid_random_circuit`
    instance, so a suite draw is fully deterministic.  The family stresses
    fidelity ranking rather than topology matching: a grid's mesh interaction
    graph embeds in none of the testbed's line/ring/tree devices, so all
    entries submit with the fidelity strategy and dense two-qubit layers that
    amplify calibration differences between devices.  Widths stay at or
    below 9 qubits so every job fits the 10-qubit testbed fleet.
    """
    return WorkloadSuite(
        name="grid_random",
        entries=(
            SuiteEntry(
                "grid_2x2", "Grid 2x2 random", lambda: grid_random_circuit(2, 2, depth=4, seed=21),
                weight=3.0, fidelity_threshold=0.8,
            ),
            SuiteEntry(
                "grid_2x3", "Grid 2x3 random", lambda: grid_random_circuit(2, 3, depth=4, seed=22),
                weight=3.0, fidelity_threshold=0.7,
            ),
            SuiteEntry(
                "grid_2x4", "Grid 2x4 random", lambda: grid_random_circuit(2, 4, depth=4, seed=23),
                weight=2.0, fidelity_threshold=0.6,
            ),
            SuiteEntry(
                "grid_3x3", "Grid 3x3 random", lambda: grid_random_circuit(3, 3, depth=4, seed=24),
                weight=1.0, fidelity_threshold=0.5,
            ),
        ),
    )


_BUILTIN_SUITES: Dict[str, Callable[[], WorkloadSuite]] = {
    "paper_eval": paper_evaluation_suite,
    "clifford": clifford_suite,
    "nisq_mix": nisq_mix_suite,
    "grid_random": grid_random_suite,
}


def available_suites() -> List[str]:
    """Names of the built-in workload suites."""
    return sorted(_BUILTIN_SUITES)


def workload_suite(name: str) -> WorkloadSuite:
    """Build one built-in suite by name."""
    try:
        return _BUILTIN_SUITES[name]()
    except KeyError:
        raise KeyError(f"Unknown workload suite '{name}'; available: {available_suites()}") from None
