"""The user-circuit workloads of the Fig. 7 experiment.

Section 4.3 evaluates the fidelity-ranking scheduler on six circuits, each
submitted with a demanded fidelity of 100%: Bernstein-Vazirani (10 qubits),
Hidden Subgroup Problem (4 qubits), Grover search (3 qubits), a repetition
code encoder (5 qubits), ``Circ`` (a random 7-qubit circuit) and ``Circ_2``
(a random 8-qubit circuit with 12 CX gates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import (
    bernstein_vazirani,
    grover_search,
    hidden_subgroup,
    repetition_code_encoder,
)
from repro.circuits.random_circuits import circ2_benchmark, circ_benchmark


@dataclass(frozen=True)
class EvaluationWorkload:
    """One Fig. 7 workload: a label plus a circuit factory."""

    key: str
    label: str
    factory: Callable[[], QuantumCircuit]

    def circuit(self) -> QuantumCircuit:
        """Build a fresh instance of the workload circuit."""
        return self.factory()


def evaluation_workloads() -> List[EvaluationWorkload]:
    """The six Fig. 7 workloads in the paper's plotting order."""
    return [
        EvaluationWorkload("bv", "Bv", lambda: bernstein_vazirani("1" * 9)),
        EvaluationWorkload("hsp", "Hsp", lambda: hidden_subgroup(4)),
        EvaluationWorkload("rep", "Rep", lambda: repetition_code_encoder(5)),
        EvaluationWorkload("grover", "Grover", lambda: grover_search(3)),
        EvaluationWorkload("circ", "Circ", lambda: circ_benchmark()),
        EvaluationWorkload("circ_2", "Circ_2", lambda: circ2_benchmark()),
    ]


def evaluation_workload(key: str) -> EvaluationWorkload:
    """Look up one workload by key."""
    for workload in evaluation_workloads():
        if workload.key == key:
            return workload
    raise KeyError(f"Unknown evaluation workload '{key}'")


def workload_circuits() -> Dict[str, QuantumCircuit]:
    """All Fig. 7 circuits keyed by workload key."""
    return {workload.key: workload.circuit() for workload in evaluation_workloads()}
