"""The default topology requests of the Fig. 6 experiment.

Section 4.2 evaluates the topology-ranking scheduler on five default
topologies: a 4-qubit grid, a 6-qubit line, a 7-qubit ring, a 6-qubit heavy
square and a 6-qubit fully connected request.  Each request is represented
the same way the visualizer represents a drawn topology: an edge list plus
the topology circuit derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.backends.topologies import (
    fully_connected_topology,
    grid_topology,
    heavy_square_topology,
    line_topology,
    ring_topology,
)
from repro.circuits.circuit import QuantumCircuit
from repro.core.visualizer import TopologyCanvas


@dataclass(frozen=True)
class DefaultTopology:
    """One default topology request."""

    key: str
    label: str
    num_qubits: int
    edges: Tuple[Tuple[int, int], ...]

    def canvas(self) -> TopologyCanvas:
        """The request as a pre-loaded visualizer canvas."""
        canvas = TopologyCanvas(self.num_qubits)
        canvas.load_edges(self.edges)
        return canvas

    def topology_circuit(self) -> QuantumCircuit:
        """The request as the topology circuit QRIO scores devices against."""
        return self.canvas().to_topology_circuit(name=f"default_{self.key}")


def default_topologies() -> List[DefaultTopology]:
    """The five default topology requests of Fig. 6, in the paper's order."""
    return [
        DefaultTopology(
            key="grid",
            label="Grid",
            num_qubits=4,
            edges=tuple(grid_topology(2, 2)),
        ),
        DefaultTopology(
            key="heavy_square",
            label="Heavy Square",
            num_qubits=6,
            edges=tuple(heavy_square_topology(6)),
        ),
        DefaultTopology(
            key="fully_connected",
            label="Fully Connected",
            num_qubits=6,
            edges=tuple(fully_connected_topology(6)),
        ),
        DefaultTopology(
            key="line",
            label="Line",
            num_qubits=6,
            edges=tuple(line_topology(6)),
        ),
        DefaultTopology(
            key="ring",
            label="Ring",
            num_qubits=7,
            edges=tuple(ring_topology(7)),
        ),
    ]


def default_topology(key: str) -> DefaultTopology:
    """Look up one default topology by key (grid, heavy_square, ...)."""
    for topology in default_topologies():
        if topology.key == key:
            return topology
    raise KeyError(f"Unknown default topology '{key}'")
