"""Evaluation workloads: the paper's circuits, default topologies and suites."""

from repro.workloads.default_topologies import DefaultTopology, default_topologies, default_topology
from repro.workloads.evaluation_circuits import (
    EvaluationWorkload,
    evaluation_workload,
    evaluation_workloads,
    workload_circuits,
)
from repro.workloads.suites import (
    SuiteEntry,
    WorkloadSuite,
    available_suites,
    clifford_suite,
    grid_random_suite,
    nisq_mix_suite,
    paper_evaluation_suite,
    workload_suite,
)

__all__ = [
    "DefaultTopology",
    "EvaluationWorkload",
    "SuiteEntry",
    "WorkloadSuite",
    "available_suites",
    "clifford_suite",
    "default_topologies",
    "grid_random_suite",
    "default_topology",
    "evaluation_workload",
    "evaluation_workloads",
    "nisq_mix_suite",
    "paper_evaluation_suite",
    "workload_circuits",
    "workload_suite",
]
