"""Typed, versioned fault events: the hostile-world half of a scenario.

The catalog's arrival processes (PR 5) shape *when* jobs arrive; this module
shapes *what the world does* while they arrive.  A :class:`FaultEvent` stream
rides inside a :class:`~repro.scenarios.Trace` (serialised with the jobs, see
``trace.py`` format version 2) and is replayed deterministically by the
:class:`FaultInjector`, which :class:`~repro.scenarios.ScenarioRunner`
attaches to the :class:`~repro.service.QRIOService` it drives:

* :class:`DeviceOutage` — a device leaves the fleet for a window and comes
  back.  Outages flip availability through each engine's placement filter
  path (orchestrator/cluster cordon the node, the cloud engine drops the
  device from its feasibility shortlist), so in-window jobs reroute — or
  fail when nothing is left.
* :class:`CalibrationJump` — a mid-trace calibration epoch: the device's
  :class:`~repro.backends.BackendProperties` are re-drawn through
  :class:`~repro.cloud.CalibrationDriftModel` and the stale entries of the
  fleet-wide :func:`~repro.core.cache.plan_cache` are eagerly dropped via
  ``invalidate_device`` (exactly what a vendor calibration push does).
* :class:`QueueStorm` — a burst of synthetic backlog lands on device queues
  (cloud engine), stretching predicted waits the way a tenant dumping work
  outside this trace would.
* :class:`StragglerSlowdown` — a device serves jobs ``factor`` times slower
  for a window: the cloud engine's service times stretch, and a
  :class:`~repro.service.DeviceLatencyEngine` stretches its wall-clock
  occupancy.
* :class:`TenantBurst` — one tenant floods the trace with extra jobs for a
  window.  Bursts act at trace-*build* time (:func:`apply_workload_events`
  merges the extra requests into the arrival stream) and are recorded so the
  resilience metrics can attribute the overload.

Determinism contract: events are applied inside the service's serialized
MATCHING stage, in arrival order, *before* the job that first reaches the
event's timestamp is matched — identical for ``workers=0`` and concurrent
replays.  Events whose effect is visible to the RUNNING stage (calibration
jumps, straggler windows) additionally quiesce the runtime's in-flight lanes
first, so a calibration epoch is a barrier: no job ever runs half-old,
half-new properties, no matter the worker count.

Device references in events may be literal device names or fleet-relative
``"@<index>"`` references (``"@0"`` = first device of the fleet sorted by
name), which keeps catalog scenarios portable across fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.scenarios.arrivals import JobRequest
from repro.utils.exceptions import ScenarioError
from repro.utils.rng import SeedLike, derive_seed, ensure_generator

#: Schema version of the serialised event payloads (bump on field changes;
#: ``parse_event`` rejects versions it does not know how to read).
EVENT_SCHEMA_VERSION = 1


def _require_time(value: float, label: str) -> None:
    if not isinstance(value, (int, float)) or value < 0.0:
        raise ScenarioError(f"{label} must be a non-negative number, got {value!r}")


def _require_positive(value: float, label: str) -> None:
    if not isinstance(value, (int, float)) or value <= 0.0:
        raise ScenarioError(f"{label} must be a positive number, got {value!r}")


@dataclass(frozen=True)
class DeviceOutage:
    """One device is unavailable on ``[time_s, time_s + duration_s)``."""

    time_s: float
    device: str
    duration_s: float

    kind = "outage"

    def __post_init__(self) -> None:
        _require_time(self.time_s, "DeviceOutage.time_s")
        _require_positive(self.duration_s, "DeviceOutage.duration_s")

    @property
    def end_s(self) -> float:
        """First instant the device is schedulable again."""
        return self.time_s + self.duration_s


@dataclass(frozen=True)
class CalibrationJump:
    """A calibration epoch: the device's properties are re-drawn at ``time_s``.

    The drift magnitudes feed a
    :class:`~repro.cloud.CalibrationDriftModel`; the draw itself is seeded by
    the injector, so the same trace + seed always produces the same post-jump
    properties on every engine.
    """

    time_s: float
    device: str
    two_qubit_spread: float = 0.35
    one_qubit_spread: float = 0.2
    readout_spread: float = 0.2

    kind = "calibration-jump"

    def __post_init__(self) -> None:
        _require_time(self.time_s, "CalibrationJump.time_s")
        for label in ("two_qubit_spread", "one_qubit_spread", "readout_spread"):
            _require_positive(getattr(self, label), f"CalibrationJump.{label}")


@dataclass(frozen=True)
class QueueStorm:
    """``backlog_s`` seconds of synthetic work land on device queues at ``time_s``.

    ``devices=()`` means every device.  Only engines with simulated queues
    (the cloud engine) feel a storm; wall-clock engines record it as a no-op.
    """

    time_s: float
    backlog_s: float
    devices: Tuple[str, ...] = ()

    kind = "queue-storm"

    def __post_init__(self) -> None:
        _require_time(self.time_s, "QueueStorm.time_s")
        _require_positive(self.backlog_s, "QueueStorm.backlog_s")
        object.__setattr__(self, "devices", tuple(self.devices))


@dataclass(frozen=True)
class StragglerSlowdown:
    """One device serves jobs ``factor``x slower on ``[time_s, time_s + duration_s)``."""

    time_s: float
    device: str
    duration_s: float
    factor: float = 3.0

    kind = "straggler"

    def __post_init__(self) -> None:
        _require_time(self.time_s, "StragglerSlowdown.time_s")
        _require_positive(self.duration_s, "StragglerSlowdown.duration_s")
        if not isinstance(self.factor, (int, float)) or self.factor <= 1.0:
            raise ScenarioError(f"StragglerSlowdown.factor must be > 1, got {self.factor!r}")

    @property
    def end_s(self) -> float:
        """First instant the device serves at full speed again."""
        return self.time_s + self.duration_s


@dataclass(frozen=True)
class TenantBurst:
    """One tenant submits extra jobs at ``rate_per_hour`` for ``duration_s``.

    Applied when the trace is *built* (:func:`apply_workload_events`): the
    burst jobs join the arrival stream like any other job — attributed to
    ``user``, which a tenant-aware replay maps onto a real
    :class:`~repro.tenancy.Tenant` — and the recorded event lets the
    resilience metrics attribute the overload window.  The ``weight`` and
    quota fields describe the bursting tenant itself, so a replayed trace
    carries everything needed to exercise weighted-fair queueing and
    admission control end-to-end (:func:`tenants_from_events`).  The fields
    default to an unconstrained weight-1 tenant, which keeps schema version
    1 readable in both directions: old payloads simply omit them.
    """

    time_s: float
    duration_s: float
    user: str = "burst-tenant"
    rate_per_hour: float = 360.0
    #: Fair share of the bursting tenant in a tenant-aware replay.
    weight: float = 1.0
    #: Pending-jobs quota of the bursting tenant (``None`` = unlimited).
    max_pending: Optional[int] = None

    kind = "tenant-burst"

    def __post_init__(self) -> None:
        _require_time(self.time_s, "TenantBurst.time_s")
        _require_positive(self.duration_s, "TenantBurst.duration_s")
        _require_positive(self.rate_per_hour, "TenantBurst.rate_per_hour")
        _require_positive(self.weight, "TenantBurst.weight")
        if self.max_pending is not None and (
            not isinstance(self.max_pending, int) or self.max_pending <= 0
        ):
            raise ScenarioError(
                f"TenantBurst.max_pending must be a positive int or None, got {self.max_pending!r}"
            )

    @property
    def end_s(self) -> float:
        """End of the burst window."""
        return self.time_s + self.duration_s


#: Every event class, keyed by its serialised ``kind`` tag.
EVENT_TYPES: Dict[str, Type] = {
    cls.kind: cls
    for cls in (DeviceOutage, CalibrationJump, QueueStorm, StragglerSlowdown, TenantBurst)
}

#: The serialised kind tags, in registry order.
EVENT_KINDS: Tuple[str, ...] = tuple(EVENT_TYPES)

#: Union alias for annotations (events share no base class; the registry is
#: the contract).
FaultEvent = object


def event_to_payload(event) -> Dict[str, object]:
    """Serialise one event to its JSONL payload (``parse_event`` inverts)."""
    cls = type(event)
    if getattr(cls, "kind", None) not in EVENT_TYPES:
        raise ScenarioError(f"Not a fault event: {event!r}")
    payload: Dict[str, object] = {"event": cls.kind, "schema": EVENT_SCHEMA_VERSION}
    for spec in fields(cls):
        value = getattr(event, spec.name)
        payload[spec.name] = list(value) if isinstance(value, tuple) else value
    return payload


def parse_event(payload: Dict[str, object]):
    """Parse one serialised event payload back into its typed event.

    Raises:
        ScenarioError: Unknown kind, unsupported schema version, missing or
            ill-typed fields (the event constructors validate ranges).
    """
    if not isinstance(payload, dict) or "event" not in payload:
        raise ScenarioError(f"Not an event payload: {payload!r}")
    kind = payload["event"]
    if kind not in EVENT_TYPES:
        raise ScenarioError(f"Unknown event kind '{kind}' (known: {', '.join(EVENT_KINDS)})")
    schema = payload.get("schema", EVENT_SCHEMA_VERSION)
    if schema != EVENT_SCHEMA_VERSION:
        raise ScenarioError(
            f"Event schema {schema!r} is not supported (this build reads {EVENT_SCHEMA_VERSION})"
        )
    cls = EVENT_TYPES[kind]
    kwargs = {}
    for spec in fields(cls):
        if spec.name in payload:
            value = payload[spec.name]
            kwargs[spec.name] = tuple(value) if isinstance(value, list) else value
    try:
        return cls(**kwargs)
    except ScenarioError:
        raise
    except TypeError as error:
        raise ScenarioError(f"Malformed '{kind}' event {payload!r}: {error}") from error


def normalise_events(events: Sequence) -> Tuple:
    """Validate and canonically order an event stream.

    Events are sorted by ``(time_s, kind, repr)`` — a total, deterministic
    order — so a trace's serialised event section is a byte-stable function
    of its contents.

    Raises:
        ScenarioError: A non-event object in the stream.
    """
    stream = list(events)
    for event in stream:
        if getattr(type(event), "kind", None) not in EVENT_TYPES:
            raise ScenarioError(f"Not a fault event: {event!r}")
    return tuple(sorted(stream, key=lambda event: (event.time_s, event.kind, repr(event))))


# --------------------------------------------------------------------------- #
# Workload-level events: applied when the trace is built
# --------------------------------------------------------------------------- #
def apply_workload_events(
    requests: Sequence[JobRequest],
    events: Sequence,
    *,
    suite,
    shots: int = 1024,
    seed: SeedLike = None,
) -> List[JobRequest]:
    """Fold workload-level events (tenant bursts) into an arrival stream.

    Every :class:`TenantBurst` contributes ``rate_per_hour`` extra jobs per
    hour across its window, drawn from ``suite`` under a derived seed,
    attributed to the burst's tenant.  The merged stream is re-sorted by
    arrival time and re-indexed, so job names stay unique and traces stay
    valid.  Events of other kinds pass through untouched (they act at replay
    time, not build time).
    """
    merged: List[JobRequest] = list(requests)
    for position, event in enumerate(events):
        if not isinstance(event, TenantBurst):
            continue
        rng = ensure_generator(derive_seed(seed, "tenant-burst", position))
        count = max(1, int(round(event.duration_s * event.rate_per_hour / 3600.0)))
        for draw in range(count):
            arrival = event.time_s + (draw + float(rng.uniform(0.0, 1.0))) * (
                event.duration_s / count
            )
            entry = suite.sample(rng=rng)
            merged.append(
                JobRequest(
                    index=0,  # re-indexed below
                    arrival_time=min(arrival, event.end_s),
                    workload_key=entry.key,
                    circuit=entry.circuit(),
                    strategy=entry.strategy,
                    fidelity_threshold=entry.fidelity_threshold,
                    shots=shots,
                    user=event.user,
                )
            )
    merged.sort(key=lambda request: (request.arrival_time, request.user, request.workload_key))
    return [
        JobRequest(
            index=index,
            arrival_time=request.arrival_time,
            workload_key=request.workload_key,
            circuit=request.circuit,
            strategy=request.strategy,
            fidelity_threshold=request.fidelity_threshold,
            shots=request.shots,
            user=request.user,
        )
        for index, request in enumerate(merged)
    ]


def tenants_from_events(events: Sequence) -> Dict[str, "object"]:
    """Tenant definitions declared by a trace's :class:`TenantBurst` events.

    Returns ``{user: Tenant}`` for every burst, carrying the burst's weight
    and pending quota — what a tenant-aware :class:`~repro.scenarios.ScenarioRunner`
    stamps onto the replayed submissions so quotas and fair queueing apply to
    exactly the tenants the trace declared.  Multiple bursts by the same user
    must agree on weight/quota (a trace contradiction is an error, not a
    silent last-wins).
    """
    from repro.tenancy.api import Tenant

    tenants: Dict[str, Tenant] = {}
    for event in events:
        if not isinstance(event, TenantBurst):
            continue
        tenant = Tenant(id=event.user, weight=event.weight, max_pending=event.max_pending)
        existing = tenants.get(event.user)
        if existing is not None and existing != tenant:
            raise ScenarioError(
                f"Trace declares tenant '{event.user}' twice with conflicting "
                f"weight/quota ({existing} vs {tenant})"
            )
        tenants[event.user] = tenant
    return tenants


# --------------------------------------------------------------------------- #
# Replay-time injection
# --------------------------------------------------------------------------- #
class StragglerTimeModel:
    """Delegating :class:`~repro.cloud.ExecutionTimeModel` that stretches
    service times by the injector's current per-device straggler factor.

    Installed on the cloud engine's simulator when a fault injector binds.
    Routing and service-time computation both happen inside the serialized
    MATCHING stage, so the factor read here is the deterministic one for the
    job's arrival time.
    """

    def __init__(self, inner, injector: "FaultInjector") -> None:
        self._inner = inner
        self._injector = injector

    def service_time_s(self, circuit, backend, shots: int) -> float:
        base = self._inner.service_time_s(circuit, backend, shots)
        return base * self._injector.straggler_factor(backend.name)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class FaultInjector:
    """Replay a fault-event stream against a live service, deterministically.

    The injector expands its events into a time-ordered action list (an
    outage is a down action plus an up action) and applies every action due
    at or before each job's arrival, from inside the service's serialized
    MATCHING stage (:meth:`advance_to`).  Actions visible to the RUNNING
    stage first quiesce the runtime's in-flight lanes, so concurrent replays
    apply them at the same logical point as synchronous ones.

    Not thread-safe by itself — the MATCHING funnel it is called from already
    serializes access (see :class:`~repro.service.ServiceRuntime`).
    """

    def __init__(self, events: Sequence, *, seed: SeedLike = None) -> None:
        self._events = normalise_events(events)
        self._seed = seed
        self._engine = None
        self._quiesce: Optional[Callable[[], None]] = None
        self._actions: List[Tuple[float, int, str, object]] = []
        self._cursor = 0
        self._down: Dict[str, int] = {}
        self._slow: Dict[str, List[float]] = {}
        self._applied: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------------ #
    @property
    def events(self) -> Tuple:
        """The canonically ordered event stream this injector replays."""
        return self._events

    def applied(self) -> List[Tuple[float, str, str]]:
        """Actions applied so far, as ``(time_s, action, device)`` rows."""
        return list(self._applied)

    def bind(self, engine, *, quiesce: Optional[Callable[[], None]] = None) -> None:
        """Attach to an engine (called by ``QRIOService.set_fault_injector``).

        Resolves ``"@<index>"`` device references against the engine's fleet
        (sorted by name) and builds the action timeline.

        Raises:
            ScenarioError: An out-of-range ``@`` reference.
        """
        self._engine = engine
        self._quiesce = quiesce
        names = sorted(backend.name for backend in engine.fleet())
        order = 0
        actions: List[Tuple[float, int, str, object]] = []
        for position, event in enumerate(self._events):
            if isinstance(event, DeviceOutage):
                device = self._resolve(event.device, names)
                actions.append((event.time_s, order, "down", device))
                actions.append((event.end_s, order + 1, "up", device))
                order += 2
            elif isinstance(event, CalibrationJump):
                device = self._resolve(event.device, names)
                actions.append((event.time_s, order, "jump", (device, event, position)))
                order += 1
            elif isinstance(event, QueueStorm):
                devices = tuple(self._resolve(ref, names) for ref in event.devices) or tuple(names)
                actions.append((event.time_s, order, "storm", (devices, event)))
                order += 1
            elif isinstance(event, StragglerSlowdown):
                device = self._resolve(event.device, names)
                actions.append((event.time_s, order, "slow-start", (device, event.factor)))
                actions.append((event.end_s, order + 1, "slow-end", (device, event.factor)))
                order += 2
            # TenantBurst acts at build time; nothing to replay.
        actions.sort(key=lambda action: (action[0], action[1]))
        self._actions = actions
        self._cursor = 0
        self._install_time_model()

    @staticmethod
    def _resolve(reference: str, names: Sequence[str]) -> str:
        """A literal device name, or ``"@i"`` into the name-sorted fleet."""
        if isinstance(reference, str) and reference.startswith("@"):
            try:
                index = int(reference[1:])
                return names[index]
            except (ValueError, IndexError) as error:
                raise ScenarioError(
                    f"Device reference '{reference}' does not resolve in a "
                    f"{len(names)}-device fleet"
                ) from error
        return reference

    def _install_time_model(self) -> None:
        """Stretchy service times on engines with a simulated clock."""
        session = getattr(self._engine, "session", None)
        if session is not None and hasattr(session, "set_time_model"):
            session.set_time_model(
                StragglerTimeModel(session.simulator.config.time_model, self)
            )

    # ------------------------------------------------------------------ #
    def advance_to(self, time_s: Optional[float]) -> int:
        """Apply every action due at or before ``time_s``; returns the count.

        ``None`` (a job without an arrival stamp) applies nothing — fault
        replay always stamps arrivals, see ``ScenarioRunner``.
        """
        if time_s is None or self._engine is None:
            return 0
        applied = 0
        while self._cursor < len(self._actions) and self._actions[self._cursor][0] <= time_s:
            when, _, action, payload = self._actions[self._cursor]
            self._cursor += 1
            self._apply(when, action, payload)
            applied += 1
        return applied

    def finish(self) -> int:
        """Apply every remaining action (end-of-trace recoveries)."""
        return self.advance_to(float("inf")) if self._actions else 0

    def _apply(self, when: float, action: str, payload) -> None:
        engine = self._engine
        if action == "down":
            count = self._down.get(payload, 0)
            self._down[payload] = count + 1
            if count == 0:
                engine.set_device_available(payload, False)
            self._applied.append((when, action, payload))
        elif action == "up":
            count = self._down.get(payload, 0) - 1
            self._down[payload] = max(count, 0)
            if count == 0:
                engine.set_device_available(payload, True)
            self._applied.append((when, action, payload))
        elif action == "jump":
            device, event, position = payload
            self._barrier()
            properties = self._drift_properties(device, event, position)
            engine.apply_calibration(device, properties)
            self._applied.append((when, action, device))
        elif action == "storm":
            devices, event = payload
            engine.inject_queue_backlog(devices, at_time_s=when, backlog_s=event.backlog_s)
            self._applied.append((when, action, ",".join(devices)))
        elif action == "slow-start":
            device, factor = payload
            self._barrier()
            self._slow.setdefault(device, []).append(factor)
            self._applied.append((when, action, device))
        elif action == "slow-end":
            device, factor = payload
            self._barrier()
            stack = self._slow.get(device, [])
            if factor in stack:
                stack.remove(factor)
            self._applied.append((when, action, device))

    def _barrier(self) -> None:
        """Quiesce in-flight RUNNING work before a run-visible state change."""
        if self._quiesce is not None:
            self._quiesce()

    def _drift_properties(self, device: str, event: CalibrationJump, position: int):
        from repro.cloud.calibration import CalibrationDriftModel

        backend = next(b for b in self._engine.fleet() if b.name == device)
        model = CalibrationDriftModel(
            two_qubit_spread=event.two_qubit_spread,
            one_qubit_spread=event.one_qubit_spread,
            readout_spread=event.readout_spread,
        )
        return model.drift_properties(
            backend.properties, seed=derive_seed(self._seed, "calibration-jump", device, position)
        )

    # ------------------------------------------------------------------ #
    def straggler_factor(self, device: str) -> float:
        """Current service-time multiplier of ``device`` (1.0 = full speed)."""
        factor = 1.0
        for value in self._slow.get(device, ()):
            factor *= value
        return factor

    def unavailable_devices(self) -> Tuple[str, ...]:
        """Devices currently inside an outage window, sorted."""
        return tuple(sorted(device for device, count in self._down.items() if count > 0))
