"""Portable, versioned job traces: record once, replay anywhere.

A :class:`Trace` is the scenario subsystem's unit of reproducibility: an
ordered list of :class:`~repro.scenarios.JobRequest` records plus metadata,
serialisable to a line-oriented JSONL file (one header line, one line per
job) that any future version of the repo — or an external tool — can replay
bit-identically against any engine × policy × workers configuration.

Circuits travel as OpenQASM 2.0 text.  The QASM round trip normalises one
detail (a parsed circuit always carries a full-width classical register), so
:meth:`Trace.from_requests` pushes every circuit through ``dump → parse``
once at construction time; after that, the in-memory trace and any number of
``save``/``load`` generations are structurally identical, which is what
makes *recorded* and *loaded* replays route the same.

:class:`TraceRecorder` captures a live :class:`~repro.service.QRIOService`
run through the service's submission-listener hook, so any workload driven
through ``submit``/``submit_batch`` — interactive sessions included — can be
frozen into a trace and replayed later.  A capture is at *trace-format*
granularity: circuit, strategy, fidelity threshold, shots, arrival time and
a recorder-level user label.  Requirement fields outside the portable format
(explicit ``topology_edges``, per-job ``policy``, ``priority``/``deadline_s``,
device-characteristic bounds) are not recorded — replay reconstructs a
topology request from the circuit's own interaction structure and applies
the runner-level policy, so a live run that relied on those per-job fields
may route differently when replayed.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.qasm.exporter import dump_qasm
from repro.qasm.parser import parse_qasm
from repro.scenarios.arrivals import JobRequest, trace_summary
from repro.scenarios.events import event_to_payload, normalise_events, parse_event
from repro.utils.exceptions import ScenarioError

#: Magic string on the header line of every trace file.
TRACE_FORMAT = "qrio-trace"
#: Current trace schema version.  Bump when a job field changes meaning;
#: ``load_trace`` rejects versions it does not know how to read.  Version 2
#: added the fault-event section (event lines between header and jobs);
#: version-1 files (no events) still load.
TRACE_VERSION = 2
#: Every version ``load_trace`` can read.
READABLE_TRACE_VERSIONS = (1, 2)


def _normalise_circuit(circuit):
    """One QASM round trip, making the circuit its own serialisation fixed point."""
    return parse_qasm(dump_qasm(circuit))


@dataclass(frozen=True)
class Trace:
    """An ordered, replayable stream of job requests plus provenance metadata."""

    name: str
    jobs: tuple
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Canonically ordered fault-event stream (see :mod:`repro.scenarios.events`).
    events: tuple = ()

    def __post_init__(self) -> None:
        jobs = tuple(self.jobs)
        times = [job.arrival_time for job in jobs]
        if any(later < earlier for earlier, later in zip(times, times[1:])):
            raise ScenarioError(f"Trace '{self.name}' arrival times must be non-decreasing")
        object.__setattr__(self, "jobs", jobs)
        object.__setattr__(self, "events", normalise_events(self.events))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_requests(
        cls,
        name: str,
        requests: Sequence[JobRequest],
        events: Sequence = (),
        **metadata: object,
    ) -> "Trace":
        """Build a trace from in-memory requests, normalising every circuit.

        The normalisation (one QASM dump/parse round trip per circuit) is
        what guarantees that replaying this object and replaying
        ``load_trace(save(...))`` make identical routing decisions.
        ``events`` attaches a fault-event stream (canonically re-ordered).
        """
        jobs = tuple(
            JobRequest(
                index=request.index,
                arrival_time=request.arrival_time,
                workload_key=request.workload_key,
                circuit=_normalise_circuit(request.circuit),
                strategy=request.strategy,
                fidelity_threshold=request.fidelity_threshold,
                shots=request.shots,
                user=request.user,
            )
            for request in requests
        )
        return cls(name=name, jobs=jobs, metadata=dict(metadata), events=tuple(events))

    def without_events(self) -> "Trace":
        """A fault-free twin: same jobs and metadata, empty event stream.

        The control arm of resilience comparisons (and of the
        ``BENCH_scenarios.json`` fault-overhead row).
        """
        return Trace(name=self.name, jobs=self.jobs, metadata=dict(self.metadata))

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobRequest]:
        return iter(self.jobs)

    def summary(self) -> Dict[str, object]:
        """Aggregate description (job count, duration, workload mix, users)."""
        return trace_summary(list(self.jobs))

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def header(self) -> Dict[str, object]:
        """The JSONL header line's payload."""
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "name": self.name,
            "num_jobs": len(self.jobs),
            "num_events": len(self.events),
            "metadata": dict(self.metadata),
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace as JSONL (header, then event lines, then job lines)."""
        path = Path(path)
        lines = [json.dumps(self.header(), sort_keys=True)]
        for event in self.events:
            lines.append(json.dumps(event_to_payload(event), sort_keys=True))
        for job in self.jobs:
            lines.append(
                json.dumps(
                    {
                        "index": job.index,
                        "arrival_time": job.arrival_time,
                        "workload_key": job.workload_key,
                        "circuit_qasm": dump_qasm(job.circuit),
                        "strategy": job.strategy,
                        "fidelity_threshold": job.fidelity_threshold,
                        "shots": job.shots,
                        "user": job.user,
                    },
                    sort_keys=True,
                )
            )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path


def record(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` (function-style alias of :meth:`Trace.save`)."""
    return trace.save(path)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a JSONL trace file written by :meth:`Trace.save`.

    Raises:
        ScenarioError: Missing or malformed header, unknown format or
            version, or a malformed job line.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ScenarioError(f"Cannot read trace file '{path}': {error}") from error
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ScenarioError(f"Trace file '{path}' is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ScenarioError(f"Trace file '{path}' has a malformed header line: {error}") from error
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ScenarioError(
            f"Trace file '{path}' is not a {TRACE_FORMAT} file (header {header!r})"
        )
    version = header.get("version")
    if version not in READABLE_TRACE_VERSIONS:
        raise ScenarioError(
            f"Trace file '{path}' has version {version!r}; this build reads versions "
            f"{READABLE_TRACE_VERSIONS}"
        )
    jobs: List[JobRequest] = []
    events: List[object] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            payload = json.loads(line)
            if isinstance(payload, dict) and "event" in payload:
                if version == 1:
                    raise ScenarioError(
                        f"Trace file '{path}' line {lineno}: version-1 traces carry no events"
                    )
                if jobs:
                    raise ScenarioError(
                        f"Trace file '{path}' line {lineno}: event lines must precede job lines"
                    )
                events.append(parse_event(payload))
                continue
            jobs.append(
                JobRequest(
                    index=int(payload["index"]),
                    arrival_time=float(payload["arrival_time"]),
                    workload_key=str(payload["workload_key"]),
                    circuit=parse_qasm(payload["circuit_qasm"]),
                    strategy=str(payload["strategy"]),
                    fidelity_threshold=float(payload["fidelity_threshold"]),
                    shots=int(payload["shots"]),
                    user=str(payload["user"]),
                )
            )
        except ScenarioError:
            raise
        except Exception as error:  # json, key, parse errors: one taxonomy
            raise ScenarioError(f"Trace file '{path}' line {lineno} is malformed: {error}") from error
    declared = header.get("num_jobs")
    if declared is not None and declared != len(jobs):
        raise ScenarioError(
            f"Trace file '{path}' declares {declared} jobs but contains {len(jobs)}"
        )
    declared_events = header.get("num_events")
    if declared_events is not None and declared_events != len(events):
        raise ScenarioError(
            f"Trace file '{path}' declares {declared_events} events but contains {len(events)}"
        )
    return Trace(
        name=str(header.get("name", path.stem)),
        jobs=tuple(jobs),
        metadata=dict(header.get("metadata", {})),
        events=tuple(events),
    )


class TraceRecorder:
    """Capture a live :class:`~repro.service.QRIOService` run as a trace.

    The recorder registers itself as a submission listener on the service and
    converts every admitted :class:`~repro.service.JobSpec` into a trace job.
    Arrival times are logical by default — consecutive submissions are spaced
    ``inter_arrival_s`` apart, matching :class:`~repro.service.CloudEngine`'s
    clock semantics, so the recorded trace replays deterministically.  Pass
    ``wall_clock=True`` to stamp real submission times instead (replay stays
    deterministic; only the recorded timestamps differ run to run).

    See the module docstring for what a capture does and does not record
    (explicit topology edges, per-job policies and priorities are outside the
    portable trace format).  Usable as a context manager::

        with TraceRecorder(service, name="captured") as recorder:
            service.submit(circuit, 0.9)
            service.process()
        trace = recorder.trace()
    """

    def __init__(
        self,
        service,
        *,
        name: str = "recorded",
        inter_arrival_s: float = 1.0,
        wall_clock: bool = False,
        user: str = "service",
    ) -> None:
        if inter_arrival_s < 0:
            raise ScenarioError("inter_arrival_s must be non-negative")
        self._service = service
        self._name = name
        self._inter_arrival_s = inter_arrival_s
        self._wall_clock = wall_clock
        self._user = user
        self._jobs: List[JobRequest] = []
        # The recorder's capture clock is wall time by design; replay runs on
        # the recorded (logical or clamped) arrival timeline.
        # qrio: allow[QRIO-D002] capture clock of the trace recorder
        self._started = time.monotonic()
        self._attached = True
        #: Concurrent submitters notify on their own threads; the lock keeps
        #: the (index, arrival clamp, append) step atomic.  Ordering between
        #: two truly concurrent batches follows notification order.
        self._mutex = threading.Lock()
        service.add_submission_listener(self._on_submission)

    # ------------------------------------------------------------------ #
    def _on_submission(self, job_name: str, spec) -> None:
        requirements = spec.requirements
        with self._mutex:
            index = len(self._jobs)
            if self._wall_clock:
                # qrio: allow[QRIO-D002] wall_clock=True explicitly opts into host-time stamps
                arrival = time.monotonic() - self._started
            elif requirements.arrival_time_s is not None:
                arrival = requirements.arrival_time_s
            else:
                arrival = index * self._inter_arrival_s
            # Traces require non-decreasing arrivals; whatever the source of
            # the timestamp (wall clock, explicit arrival_time_s, logical
            # spacing — possibly mixed across submissions), clamp to the tail.
            if self._jobs:
                arrival = max(arrival, self._jobs[-1].arrival_time)
            self._jobs.append(
                JobRequest(
                    index=index,
                    arrival_time=arrival,
                    workload_key=job_name,
                    circuit=spec.circuit,
                    strategy=requirements.strategy,
                    fidelity_threshold=(
                        requirements.effective_fidelity_threshold
                        if requirements.strategy == "fidelity"
                        else 0.0
                    ),
                    shots=spec.shots,
                    user=self._user,
                )
            )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._mutex:
            return len(self._jobs)

    def detach(self) -> None:
        """Stop recording (idempotent; the captured jobs remain available)."""
        if self._attached:
            self._service.remove_submission_listener(self._on_submission)
            self._attached = False

    def trace(self, name: Optional[str] = None) -> Trace:
        """Everything captured so far as a normalised, replayable trace."""
        with self._mutex:
            jobs = list(self._jobs)
        return Trace.from_requests(
            name if name is not None else self._name,
            jobs,
            source="TraceRecorder",
            engine=self._service.engine.name,
        )

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()
