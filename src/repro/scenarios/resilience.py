"""Resilience metrics: how gracefully did a replay degrade under faults?

Pure functions over a replay's per-job outcomes and the trace's fault-event
stream — no service state, so the same numbers are computable from a saved
report.  The vocabulary (pinned by hand-computed fixtures in
``tests/scenarios/test_resilience.py``):

* **p99 wait during outages** — p99 of the waits of jobs that *arrived*
  inside any :class:`~repro.scenarios.DeviceOutage` window (the jobs that had
  to be absorbed by the degraded fleet).
* **recovery time** — per outage window, the gap between the window's end
  and the arrival of the first job at/after it that succeeded within the
  SLO; the reported ``recovery_s`` is the worst window.  ``inf`` means the
  fleet never got back under the SLO before the trace ended.
* **SLO violations** — jobs that failed, plus jobs that succeeded but waited
  longer than ``slo_wait_s``.
* **failed vs rerouted** — of the jobs arriving during outage windows, how
  many failed outright vs were served by the remaining devices.

Percentiles use :func:`numpy.percentile` with its default linear
interpolation, matching :func:`repro.scenarios.metrics.summarise_waits`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.scenarios.events import DeviceOutage, StragglerSlowdown, TenantBurst

#: Resilience keys merged into a report's flat row (stable, table-friendly).
RESILIENCE_ROW_KEYS = (
    "slo_violations",
    "jobs_failed",
    "jobs_rerouted",
    "p99_outage_wait_s",
    "recovery_s",
)


def outage_windows(events: Iterable) -> List[Tuple[float, float, str]]:
    """``(start_s, end_s, device)`` per outage event, in time order."""
    windows = [
        (event.time_s, event.end_s, event.device)
        for event in events
        if isinstance(event, DeviceOutage)
    ]
    return sorted(windows)


def _in_any_window(arrival: float, windows: Sequence[Tuple[float, float, str]]) -> bool:
    return any(start <= arrival < end for start, end, _ in windows)


def resilience_summary(
    outcomes: Sequence,
    events: Iterable,
    *,
    slo_wait_s: float,
) -> Dict[str, object]:
    """Aggregate the resilience metrics of one replay.

    ``outcomes`` rows need ``arrival_s``, ``wait_s``, ``succeeded`` (the
    shape of :class:`~repro.scenarios.JobOutcome`); ``events`` is the trace's
    fault-event stream.  Jobs without an arrival stamp are excluded from the
    window-relative metrics but still count toward failures and violations.
    """
    events = list(events)
    windows = outage_windows(events)
    jobs_failed = sum(1 for outcome in outcomes if not outcome.succeeded)
    slo_violations = jobs_failed + sum(
        1
        for outcome in outcomes
        if outcome.succeeded and outcome.wait_s is not None and outcome.wait_s > slo_wait_s
    )
    in_outage = [
        outcome
        for outcome in outcomes
        if outcome.arrival_s is not None and _in_any_window(outcome.arrival_s, windows)
    ]
    outage_waits = [
        outcome.wait_s for outcome in in_outage if outcome.succeeded and outcome.wait_s is not None
    ]
    p99_outage = float(np.percentile(np.asarray(outage_waits, dtype=float), 99)) if outage_waits else 0.0
    recovery = 0.0
    for start, end, _ in windows:
        after = sorted(
            (outcome for outcome in outcomes if outcome.arrival_s is not None and outcome.arrival_s >= end),
            key=lambda outcome: outcome.arrival_s,
        )
        window_recovery = float("inf")
        for outcome in after:
            if outcome.succeeded and outcome.wait_s is not None and outcome.wait_s <= slo_wait_s:
                window_recovery = outcome.arrival_s - end
                break
        recovery = max(recovery, window_recovery)
    return {
        "slo_wait_s": float(slo_wait_s),
        "events": len(events),
        "outages": len(windows),
        "stragglers": sum(1 for event in events if isinstance(event, StragglerSlowdown)),
        "tenant_bursts": sum(1 for event in events if isinstance(event, TenantBurst)),
        "jobs_during_outage": len(in_outage),
        "jobs_failed": jobs_failed,
        "jobs_rerouted": sum(1 for outcome in in_outage if outcome.succeeded),
        "slo_violations": slo_violations,
        "p99_outage_wait_s": p99_outage,
        "recovery_s": recovery,
    }
