"""Engine-neutral scenarios: arrival processes, portable traces, sweeps.

The source paper is a workload-characterisation study, yet until this
subsystem existed the repo's workload machinery was trapped inside the cloud
simulator.  ``repro.scenarios`` is the missing layer:

* :mod:`repro.scenarios.arrivals` — the pluggable :class:`ArrivalProcess`
  protocol (Poisson/diurnal, MMPP bursts, Pareto heavy tails, flash crowds,
  closed client loops) feeding :func:`generate_requests`;
* :mod:`repro.scenarios.trace` — the versioned JSONL :class:`Trace` format
  (``save``/:func:`load_trace`), plus :class:`TraceRecorder` for capturing
  live :class:`~repro.service.QRIOService` runs;
* :mod:`repro.scenarios.runner` — :class:`ScenarioRunner`, replaying any
  trace against any engine × policy × workers configuration into a unified
  :class:`ScenarioReport` (wait percentiles, makespan, utilisation,
  fidelity, Jain fairness);
* :mod:`repro.scenarios.events` — the typed, versioned fault-event layer
  (device outages, calibration jumps, queue storms, stragglers, tenant
  bursts) and the :class:`FaultInjector` that replays an event stream
  deterministically through any engine;
* :mod:`repro.scenarios.resilience` — resilience metrics of fault-augmented
  replays (p99 wait during outages, recovery time, SLO violations);
* :mod:`repro.scenarios.catalog` — named, reproducible scenario specs,
  including fault-augmented hostile-world entries;
* :mod:`repro.scenarios.sweep` — the policy × engine sweep harness;
* :mod:`repro.scenarios.metrics` — the shared metric vocabulary (hoisted
  from ``repro.cloud.metrics``, which remains a deprecation shim).

``repro.cloud.arrivals`` is likewise a deprecation shim over
:mod:`repro.scenarios.arrivals`; the cloud simulator consumes this layer.
"""

from repro.scenarios.arrivals import (
    ArrivalProcess,
    ArrivalSpec,
    ClosedLoopProcess,
    FlashCrowdProcess,
    JobRequest,
    MMPPProcess,
    ParetoProcess,
    PoissonProcess,
    generate_requests,
    generate_trace,
    trace_summary,
)
from repro.scenarios.catalog import (
    ScenarioSpec,
    available_scenarios,
    build_scenario_trace,
    register_scenario,
    scenario,
    unregister_scenario,
)
from repro.scenarios.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    CalibrationJump,
    DeviceOutage,
    FaultInjector,
    QueueStorm,
    StragglerSlowdown,
    TenantBurst,
    apply_workload_events,
    event_to_payload,
    normalise_events,
    parse_event,
    tenants_from_events,
)
from repro.scenarios.resilience import (
    RESILIENCE_ROW_KEYS,
    outage_windows,
    resilience_summary,
)
from repro.scenarios.metrics import (
    WAIT_PERCENTILES,
    jain_fairness_index,
    makespan,
    per_user_mean_waits,
    render_metric_table,
    summarise_waits,
    wait_fairness,
)
from repro.scenarios.runner import (
    ENGINE_NAMES,
    NATIVE_POLICY,
    TENANT_ROW_KEYS,
    JobOutcome,
    ScenarioReport,
    ScenarioRunner,
    policy_label,
)
from repro.scenarios.sweep import (
    RESILIENCE_COLUMNS,
    SWEEP_COLUMNS,
    TENANT_COLUMNS,
    SweepResult,
    render_sweep,
    run_sweep,
)
from repro.scenarios.trace import (
    READABLE_TRACE_VERSIONS,
    TRACE_FORMAT,
    TRACE_VERSION,
    Trace,
    TraceRecorder,
    load_trace,
    record,
)
from repro.utils.exceptions import ScenarioError

__all__ = [
    "ArrivalProcess",
    "ArrivalSpec",
    "CalibrationJump",
    "ClosedLoopProcess",
    "DeviceOutage",
    "ENGINE_NAMES",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "FaultInjector",
    "FlashCrowdProcess",
    "JobOutcome",
    "JobRequest",
    "MMPPProcess",
    "NATIVE_POLICY",
    "ParetoProcess",
    "PoissonProcess",
    "QueueStorm",
    "READABLE_TRACE_VERSIONS",
    "RESILIENCE_COLUMNS",
    "RESILIENCE_ROW_KEYS",
    "SWEEP_COLUMNS",
    "ScenarioError",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "StragglerSlowdown",
    "SweepResult",
    "TENANT_COLUMNS",
    "TENANT_ROW_KEYS",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TenantBurst",
    "Trace",
    "TraceRecorder",
    "WAIT_PERCENTILES",
    "apply_workload_events",
    "available_scenarios",
    "build_scenario_trace",
    "event_to_payload",
    "generate_requests",
    "generate_trace",
    "jain_fairness_index",
    "load_trace",
    "makespan",
    "normalise_events",
    "outage_windows",
    "parse_event",
    "per_user_mean_waits",
    "policy_label",
    "record",
    "register_scenario",
    "render_metric_table",
    "render_sweep",
    "resilience_summary",
    "run_sweep",
    "scenario",
    "summarise_waits",
    "tenants_from_events",
    "trace_summary",
    "unregister_scenario",
    "wait_fairness",
]
