"""Engine-neutral wait-time, fairness and utilisation metrics.

Historically these lived in :mod:`repro.cloud.metrics` and could only
describe the discrete-event cloud simulator.  The scenario subsystem hoists
them out so the same summary vocabulary — wait percentiles, makespan, Jain
fairness, per-device load shares — describes a run of *any* engine: the
cloud simulator's logical-clock records, the concurrent service runtime's
wall-clock drains, and the :class:`~repro.scenarios.ScenarioReport` rows a
policy×engine sweep emits.  ``repro.cloud.metrics`` remains importable as a
deprecation shim over this module.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.utils.exceptions import CloudError

#: The percentiles every wait summary reports.  Cloud measurement studies
#: characterise queueing by its tail, so the p95/p99 columns matter as much
#: as the mean — a policy that halves the mean while tripling p99 is a
#: regression for the unlucky users.
WAIT_PERCENTILES = (50, 95, 99)


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index over per-user allocations.

    Ranges from ``1/n`` (one user gets everything) to ``1.0`` (perfectly even).
    Conventionally computed over *throughput*-like quantities, so callers
    should pass something where "more is better" (e.g. inverse mean wait).
    """
    values = [float(value) for value in values]
    if not values:
        raise CloudError("jain_fairness_index needs at least one value")
    if any(value < 0 for value in values):
        raise CloudError("jain_fairness_index values must be non-negative")
    total = sum(values)
    if total == 0.0:
        return 1.0
    squares = sum(value * value for value in values)
    return (total * total) / (len(values) * squares)


def summarise_waits(waits: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p50 / p95 / p99 / max of a collection of wait times.

    ``median`` and ``p50`` are aliases: ``median`` is the historical key the
    cloud simulator reported, ``p50`` lines up with the other percentile
    columns so tables can iterate :data:`WAIT_PERCENTILES` uniformly.
    """
    if not waits:
        empty = {"mean": 0.0, "median": 0.0, "max": 0.0}
        empty.update({f"p{percentile}": 0.0 for percentile in WAIT_PERCENTILES})
        return empty
    array = np.asarray(list(waits), dtype=float)
    summary = {
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "max": float(array.max()),
    }
    for percentile in WAIT_PERCENTILES:
        summary[f"p{percentile}"] = float(np.percentile(array, percentile))
    return summary


def makespan(finish_times: Sequence[float], start_times: Sequence[float] = ()) -> float:
    """Completion time of the last job, optionally relative to the first start.

    With only ``finish_times`` this is the simulated-clock makespan (the
    cloud simulator starts at t=0); passing ``start_times`` as well gives the
    wall-clock span of a service-runtime drain, where the origin is the first
    submission rather than zero.
    """
    if not finish_times:
        return 0.0
    end = max(float(value) for value in finish_times)
    origin = min((float(value) for value in start_times), default=0.0)
    return max(0.0, end - origin)


def per_user_mean_waits(waits_by_user: Mapping[str, Sequence[float]]) -> Dict[str, float]:
    """Mean wait per user (the input to the fairness index)."""
    return {
        user: (float(np.mean(list(values))) if len(list(values)) else 0.0)
        for user, values in waits_by_user.items()
    }


def wait_fairness(waits_by_user: Mapping[str, Sequence[float]]) -> float:
    """Jain fairness over users' inverse mean waits (higher is fairer)."""
    means = per_user_mean_waits(waits_by_user)
    if not means:
        return 1.0
    inverse = [1.0 / (mean + 1.0) for mean in means.values()]
    return jain_fairness_index(inverse)


def render_metric_table(rows: List[Dict[str, object]], columns: List[str], title: str) -> str:
    """Fixed-width text table used by the policy-comparison and sweep reports."""
    header = " ".join(f"{column:>18}" for column in columns)
    lines = [title, header, "-" * len(header)]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4f}")
            else:
                cells.append(f"{str(value):>18}")
        lines.append(" ".join(cells))
    return "\n".join(lines)
