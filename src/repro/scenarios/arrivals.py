"""Pluggable job-arrival processes for scenario generation.

Real quantum-cloud measurement studies (the IISWC'21 characterisation the
paper cites) observe bursty, diurnal, heavy-tailed streams of mostly-small
jobs from many users.  The original reproduction hard-wired one such model —
a Poisson process with optional day/night modulation — inside the cloud
simulator.  This module hoists it into an engine-neutral
:class:`ArrivalProcess` protocol and adds the other canonical shapes of that
characterisation literature:

* :class:`PoissonProcess` — memoryless arrivals, optionally diurnally
  modulated (the legacy generator, bit-for-bit);
* :class:`MMPPProcess` — a two-state Markov-modulated Poisson process:
  quiet/burst phases with geometric dwell times, the standard bursty model;
* :class:`ParetoProcess` — heavy-tailed inter-arrival gaps (occasional long
  silences between packed batches);
* :class:`FlashCrowdProcess` — a steady baseline with one rate spike
  (a paper deadline, a course assignment going out);
* :class:`ClosedLoopProcess` — a fixed client population where each client
  "thinks" before resubmitting, so the offered load saturates instead of
  growing without bound.

Every process feeds :func:`generate_requests`, which samples jobs from a
:class:`~repro.workloads.WorkloadSuite` and attributes them to a fixed user
population — the same :class:`JobRequest` records the cloud simulator, the
unified service and the scenario runner all consume.
"""

from __future__ import annotations

import abc
import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.utils.exceptions import CloudError
from repro.utils.rng import SeedLike, ensure_generator
from repro.utils.validation import require_positive_int
from repro.workloads.suites import WorkloadSuite, nisq_mix_suite


@dataclass(frozen=True)
class JobRequest:
    """One job in an arrival trace."""

    #: Monotonically increasing arrival index.
    index: int
    #: Arrival time in seconds from the start of the trace.
    arrival_time: float
    #: Workload-suite entry key the job was drawn from.
    workload_key: str
    #: The job's circuit (already built; traces are reproducible artefacts).
    circuit: QuantumCircuit
    #: ``"fidelity"`` or ``"topology"`` — the strategy the submitting user picks.
    strategy: str
    #: Fidelity requirement carried by fidelity-strategy submissions.
    fidelity_threshold: float
    #: Number of shots requested.
    shots: int
    #: Identifier of the submitting user (for fairness metrics).
    user: str

    @property
    def name(self) -> str:
        """Unique job name within the trace."""
        return f"{self.workload_key}-{self.index:04d}"


# --------------------------------------------------------------------------- #
# The arrival-process protocol
# --------------------------------------------------------------------------- #
class ArrivalProcess(abc.ABC):
    """How long until the next job arrives.

    A process is a stream of inter-arrival gaps: :func:`generate_requests`
    calls :meth:`begin` once per trace and then :meth:`next_gap` once per
    job, threading the shared generator through so the whole trace is one
    reproducible draw sequence.  Processes may keep per-trace state (phase of
    a modulated process, client pool of a closed loop) — :meth:`begin` must
    reset it so one process instance can generate many independent traces.
    """

    #: Short name recorded in trace metadata and scenario listings.
    name: str = "process"

    def begin(self, rng: np.random.Generator) -> None:
        """Reset per-trace state (default: stateless, nothing to do)."""

    @abc.abstractmethod
    def next_gap(self, rng: np.random.Generator, clock: float, index: int) -> float:
        """Seconds between the arrival at ``clock`` and the next one.

        Args:
            rng: The trace's shared generator (consume draws only from here).
            clock: Current trace time — the previous job's arrival time.
            index: Index of the job about to arrive (0-based).
        """

    def describe(self) -> Dict[str, object]:
        """Serialisable description recorded in trace metadata."""
        return {"process": self.name}


def _require_positive_rate(rate_per_hour: float) -> float:
    if rate_per_hour <= 0:
        raise CloudError("rate_per_hour must be positive")
    return rate_per_hour / 3600.0


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals, optionally modulated by a day/night load factor.

    This is the legacy ``repro.cloud.arrivals`` generator verbatim: gaps are
    exponential with the instantaneous rate evaluated at the previous
    arrival, and with ``diurnal_amplitude > 0`` the rate oscillates between
    ``rate * (1 - amplitude)`` and ``rate * (1 + amplitude)`` over a 24-hour
    period.
    """

    name = "poisson"

    def __init__(self, rate_per_hour: float = 60.0, diurnal_amplitude: float = 0.0) -> None:
        self._base_rate = _require_positive_rate(rate_per_hour)
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise CloudError("diurnal_amplitude must lie in [0, 1)")
        self.rate_per_hour = rate_per_hour
        self.diurnal_amplitude = diurnal_amplitude
        if diurnal_amplitude > 0.0:
            self.name = "diurnal-poisson"

    def rate_at(self, time_s: float) -> float:
        """Arrival rate (jobs per second) at ``time_s`` under the diurnal model."""
        if self.diurnal_amplitude <= 0.0:
            return self._base_rate
        phase = 2.0 * math.pi * (time_s / 86_400.0)
        return self._base_rate * (1.0 + self.diurnal_amplitude * math.sin(phase))

    def next_gap(self, rng: np.random.Generator, clock: float, index: int) -> float:
        return float(rng.exponential(1.0 / self.rate_at(clock)))

    def describe(self) -> Dict[str, object]:
        return {
            "process": self.name,
            "rate_per_hour": self.rate_per_hour,
            "diurnal_amplitude": self.diurnal_amplitude,
        }


class MMPPProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (the standard bursty model).

    The process alternates between a *quiet* phase (rate scaled down so the
    long-run mean stays ``rate_per_hour``) and a *burst* phase (rate scaled
    up by ``burst_factor``).  Phase dwell times are geometric in *jobs*:
    after each arrival the phase flips with probability ``1/mean_quiet_jobs``
    (or ``1/mean_burst_jobs``).  The result is the clumped arrival pattern
    cloud characterisation studies report — long lulls punctuated by packed
    batches — with a coefficient of variation well above the Poisson 1.0.
    """

    name = "mmpp"

    def __init__(
        self,
        rate_per_hour: float = 60.0,
        burst_factor: float = 8.0,
        mean_burst_jobs: float = 6.0,
        mean_quiet_jobs: float = 18.0,
    ) -> None:
        self._base_rate = _require_positive_rate(rate_per_hour)
        if burst_factor <= 1.0:
            raise CloudError("burst_factor must exceed 1.0 (1.0 is plain Poisson)")
        if mean_burst_jobs < 1.0 or mean_quiet_jobs < 1.0:
            raise CloudError("mean phase lengths must be at least one job")
        self.rate_per_hour = rate_per_hour
        self.burst_factor = burst_factor
        self.mean_burst_jobs = mean_burst_jobs
        self.mean_quiet_jobs = mean_quiet_jobs
        # Pick the quiet-phase rate so the time-averaged rate stays at the
        # requested mean: burst jobs arrive burst_factor times faster, so the
        # quiet phase must be slowed by the jobs-weighted complement.
        burst_share = mean_burst_jobs / (mean_burst_jobs + mean_quiet_jobs)
        time_scale = burst_share / burst_factor + (1.0 - burst_share)
        self._quiet_rate = self._base_rate * time_scale
        self._in_burst = False

    def begin(self, rng: np.random.Generator) -> None:
        self._in_burst = False

    def next_gap(self, rng: np.random.Generator, clock: float, index: int) -> float:
        rate = self._quiet_rate * (self.burst_factor if self._in_burst else 1.0)
        gap = float(rng.exponential(1.0 / rate))
        flip_probability = 1.0 / (self.mean_burst_jobs if self._in_burst else self.mean_quiet_jobs)
        if float(rng.random()) < flip_probability:
            self._in_burst = not self._in_burst
        return gap

    def describe(self) -> Dict[str, object]:
        return {
            "process": self.name,
            "rate_per_hour": self.rate_per_hour,
            "burst_factor": self.burst_factor,
            "mean_burst_jobs": self.mean_burst_jobs,
            "mean_quiet_jobs": self.mean_quiet_jobs,
        }


class ParetoProcess(ArrivalProcess):
    """Heavy-tailed inter-arrival gaps (Pareto with shape ``alpha``).

    ``alpha`` must exceed 1 so the mean gap is finite; the scale is chosen so
    the mean matches ``rate_per_hour``.  Small ``alpha`` (1.1–1.5) produces
    the occasional very long silence followed by tight clusters that
    session-level traffic models exhibit.
    """

    name = "pareto"

    def __init__(self, rate_per_hour: float = 60.0, alpha: float = 1.5) -> None:
        self._base_rate = _require_positive_rate(rate_per_hour)
        if alpha <= 1.0:
            raise CloudError("alpha must exceed 1.0 so the mean inter-arrival gap is finite")
        self.rate_per_hour = rate_per_hour
        self.alpha = alpha
        # Lomax-shifted Pareto: gap = scale * (pareto(alpha) + 1) has mean
        # scale * alpha / (alpha - 1); solve for the requested mean gap.
        self._scale = (alpha - 1.0) / (alpha * self._base_rate)

    def next_gap(self, rng: np.random.Generator, clock: float, index: int) -> float:
        return float((rng.pareto(self.alpha) + 1.0) * self._scale)

    def describe(self) -> Dict[str, object]:
        return {"process": self.name, "rate_per_hour": self.rate_per_hour, "alpha": self.alpha}


class FlashCrowdProcess(ArrivalProcess):
    """A steady Poisson baseline with one multiplicative rate spike.

    Between ``flash_at_s`` and ``flash_at_s + flash_duration_s`` the rate is
    multiplied by ``flash_multiplier`` — the submission-deadline / demo-day
    pattern where a quiet service is suddenly swamped and must drain the
    backlog afterwards.
    """

    name = "flash-crowd"

    def __init__(
        self,
        rate_per_hour: float = 60.0,
        flash_at_s: float = 1800.0,
        flash_duration_s: float = 900.0,
        flash_multiplier: float = 10.0,
    ) -> None:
        self._base_rate = _require_positive_rate(rate_per_hour)
        if flash_at_s < 0 or flash_duration_s <= 0:
            raise CloudError("flash window must start at t >= 0 and last > 0 seconds")
        if flash_multiplier <= 1.0:
            raise CloudError("flash_multiplier must exceed 1.0")
        self.rate_per_hour = rate_per_hour
        self.flash_at_s = flash_at_s
        self.flash_duration_s = flash_duration_s
        self.flash_multiplier = flash_multiplier

    def rate_at(self, time_s: float) -> float:
        """Arrival rate (jobs per second) at ``time_s``."""
        in_flash = self.flash_at_s <= time_s < self.flash_at_s + self.flash_duration_s
        return self._base_rate * (self.flash_multiplier if in_flash else 1.0)

    def next_gap(self, rng: np.random.Generator, clock: float, index: int) -> float:
        return float(rng.exponential(1.0 / self.rate_at(clock)))

    def describe(self) -> Dict[str, object]:
        return {
            "process": self.name,
            "rate_per_hour": self.rate_per_hour,
            "flash_at_s": self.flash_at_s,
            "flash_duration_s": self.flash_duration_s,
            "flash_multiplier": self.flash_multiplier,
        }


class ClosedLoopProcess(ArrivalProcess):
    """A fixed client population with exponential think times.

    Open processes (Poisson, MMPP, …) submit regardless of how the service
    is doing; a closed loop models interactive users: each of ``num_clients``
    clients submits, "thinks" for an exponential ``think_time_s``, then
    submits again.  The merged stream therefore self-limits at
    ``num_clients / think_time_s`` jobs per second — the saturation regime
    multi-job schedulers must stay stable under.

    The loop is closed over the trace's own arrival clock (think time starts
    at the previous submission), which keeps trace generation independent of
    any engine — replaying the trace against a slow engine then models
    clients who fire-and-forget their next job.
    """

    name = "closed-loop"

    def __init__(self, num_clients: int = 8, think_time_s: float = 120.0) -> None:
        require_positive_int(num_clients, "num_clients")
        if think_time_s <= 0:
            raise CloudError("think_time_s must be positive")
        self.num_clients = num_clients
        self.think_time_s = think_time_s
        self._ready: List[float] = []

    def begin(self, rng: np.random.Generator) -> None:
        # Every client starts an independent think before its first job, so
        # the trace does not open with a synchronized thundering herd.
        self._ready = [float(rng.exponential(self.think_time_s)) for _ in range(self.num_clients)]
        heapq.heapify(self._ready)

    def next_gap(self, rng: np.random.Generator, clock: float, index: int) -> float:
        if not self._ready:  # begin() not called: single implicit client
            self._ready = [float(rng.exponential(self.think_time_s))]
        ready = heapq.heappop(self._ready)
        arrival = max(ready, clock)
        heapq.heappush(self._ready, arrival + float(rng.exponential(self.think_time_s)))
        return arrival - clock

    def describe(self) -> Dict[str, object]:
        return {
            "process": self.name,
            "num_clients": self.num_clients,
            "think_time_s": self.think_time_s,
        }


# --------------------------------------------------------------------------- #
# Trace generation
# --------------------------------------------------------------------------- #
def generate_requests(
    process: ArrivalProcess,
    *,
    num_jobs: int,
    num_users: int = 8,
    shots: int = 1024,
    suite: Optional[WorkloadSuite] = None,
    seed: SeedLike = None,
) -> List[JobRequest]:
    """Generate a reproducible arrival trace from any :class:`ArrivalProcess`.

    Per job, in this order (the draw sequence is part of the reproducibility
    contract): one gap from the process, one suite entry, one user.  Jobs are
    drawn from the suite's weighted mix and users are assigned uniformly at
    random.
    """
    require_positive_int(num_jobs, "num_jobs")
    require_positive_int(num_users, "num_users")
    require_positive_int(shots, "shots")
    rng = ensure_generator(seed)
    suite = suite if suite is not None else nisq_mix_suite()
    process.begin(rng)
    requests: List[JobRequest] = []
    clock = 0.0
    for index in range(num_jobs):
        clock += process.next_gap(rng, clock, index)
        entry = suite.sample(rng=rng)
        user = f"user-{int(rng.integers(0, num_users)):02d}"
        requests.append(
            JobRequest(
                index=index,
                arrival_time=clock,
                workload_key=entry.key,
                circuit=entry.circuit(),
                strategy=entry.strategy,
                fidelity_threshold=entry.fidelity_threshold,
                shots=shots,
                user=user,
            )
        )
    return requests


@dataclass(frozen=True)
class ArrivalSpec:
    """Parameters of a synthetic Poisson/diurnal arrival trace.

    This is the legacy ``repro.cloud.arrivals`` surface, kept because the
    cloud simulator's callers configure traces through it; it is now a thin
    shorthand for ``generate_requests(PoissonProcess(...), ...)``.
    """

    #: Mean arrival rate in jobs per hour.
    rate_per_hour: float = 60.0
    #: Number of jobs in the trace.
    num_jobs: int = 100
    #: Number of distinct users submitting jobs.
    num_users: int = 8
    #: Shots requested by every job.
    shots: int = 1024
    #: Relative amplitude of the diurnal modulation (0 disables it); the rate
    #: oscillates between ``rate * (1 - amplitude)`` and ``rate * (1 + amplitude)``
    #: over a 24-hour period.
    diurnal_amplitude: float = 0.0
    #: Workload suite jobs are drawn from; ``None`` uses the NISQ mix.
    suite: Optional[WorkloadSuite] = None

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise CloudError("rate_per_hour must be positive")
        require_positive_int(self.num_jobs, "num_jobs")
        require_positive_int(self.num_users, "num_users")
        require_positive_int(self.shots, "shots")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise CloudError("diurnal_amplitude must lie in [0, 1)")

    def workload_suite(self) -> WorkloadSuite:
        """The suite the trace samples from."""
        return self.suite if self.suite is not None else nisq_mix_suite()

    def process(self) -> PoissonProcess:
        """The arrival process this spec describes."""
        return PoissonProcess(self.rate_per_hour, self.diurnal_amplitude)


def generate_trace(spec: ArrivalSpec, seed: SeedLike = None) -> List[JobRequest]:
    """Generate a reproducible arrival trace from ``spec``.

    Inter-arrival gaps are exponential with the (possibly time-varying) rate
    evaluated at the previous arrival, jobs are drawn from the suite's
    weighted mix, and users are assigned uniformly at random.  Identical
    draw-for-draw to the historical ``repro.cloud.arrivals.generate_trace``.
    """
    return generate_requests(
        spec.process(),
        num_jobs=spec.num_jobs,
        num_users=spec.num_users,
        shots=spec.shots,
        suite=spec.workload_suite(),
        seed=seed,
    )


def trace_summary(requests: List[JobRequest]) -> Dict[str, object]:
    """Aggregate description of a trace (used by reports and logs)."""
    if not requests:
        return {"num_jobs": 0, "duration_s": 0.0, "workload_mix": {}, "num_users": 0}
    mix: Dict[str, int] = {}
    users = set()
    for request in requests:
        mix[request.workload_key] = mix.get(request.workload_key, 0) + 1
        users.add(request.user)
    return {
        "num_jobs": len(requests),
        "duration_s": requests[-1].arrival_time,
        "workload_mix": dict(sorted(mix.items())),
        "num_users": len(users),
    }
