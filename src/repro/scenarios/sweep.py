"""The policy × engine sweep harness.

One call — :func:`run_sweep` — answers the operator question the unified
service, runtime and policy registry were built toward: *given these
workload scenarios, which placement policy on which engine gives the best
wait/fidelity/fairness trade-off?*  Each scenario is frozen into **one**
trace that every (engine, policy) cell replays, so differences between rows
are attributable to the configuration, never to workload noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.backends.backend import Backend
from repro.scenarios.catalog import build_scenario_trace
from repro.scenarios.metrics import render_metric_table
from repro.scenarios.resilience import RESILIENCE_ROW_KEYS
from repro.scenarios.runner import TENANT_ROW_KEYS, ScenarioReport, ScenarioRunner, policy_label
from repro.scenarios.trace import Trace
from repro.utils.exceptions import ScenarioError
from repro.utils.rng import SeedLike

#: Columns of the sweep comparison table, in display order.
SWEEP_COLUMNS = [
    "scenario",
    "engine",
    "policy",
    "jobs",
    "failed",
    "p50_wait_s",
    "p95_wait_s",
    "p99_wait_s",
    "makespan_s",
    "mean_fidelity",
    "fairness",
]

#: Extra columns appended when any swept scenario carries fault events —
#: the "which policy degrades gracefully" view of a resilience sweep.
RESILIENCE_COLUMNS = list(RESILIENCE_ROW_KEYS)

#: Extra columns appended when any cell replayed tenant-aware — the
#: "who starved whom" view of a multi-tenant sweep.
TENANT_COLUMNS = list(TENANT_ROW_KEYS)


@dataclass(frozen=True)
class SweepResult:
    """Every cell of one scenario × engine × policy grid."""

    reports: Tuple[ScenarioReport, ...]

    def rows(self) -> List[Dict[str, object]]:
        """One flat dict per cell (table/JSON source)."""
        return [report.row() for report in self.reports]

    def report(
        self, scenario: str, engine: str, policy: Optional[str] = None
    ) -> ScenarioReport:
        """The cell for one (scenario, engine, policy) combination.

        Raises:
            ScenarioError: No such cell in this sweep.
        """
        wanted_policy = policy_label(policy)
        for report in self.reports:
            have_policy = policy_label(report.policy)
            if (
                report.scenario == scenario
                and report.engine == engine
                and have_policy == wanted_policy
            ):
                return report
        raise ScenarioError(
            f"Sweep has no cell (scenario={scenario!r}, engine={engine!r}, policy={wanted_policy!r})"
        )

    def to_json(self) -> str:
        """All rows as one strict-JSON array (CLI ``scenarios sweep --json``)."""
        from repro.scenarios.runner import _json_safe_row

        return json.dumps([_json_safe_row(row) for row in self.rows()], sort_keys=True)


def run_sweep(
    fleet: Sequence[Backend],
    scenarios: Sequence[Union[str, Trace]],
    *,
    engines: Sequence[str] = ("orchestrator", "cluster", "cloud"),
    policies: Sequence[Optional[object]] = (None,),
    workers: int = 0,
    seed: SeedLike = None,
    num_jobs: Optional[int] = None,
    fidelity_report: str = "esp",
    canary_shots: int = 128,
    slo_wait_s: float = 600.0,
    tenant_aware: bool = False,
) -> SweepResult:
    """Replay every scenario through every engine × policy cell.

    Args:
        fleet: Devices every cell schedules onto.
        scenarios: Catalogue names (frozen once per sweep with ``seed``) or
            pre-built :class:`~repro.scenarios.Trace` objects.
        engines: Engine names from :data:`repro.scenarios.runner.ENGINE_NAMES`.
        policies: Placement-policy specs per cell; ``None`` means each
            engine's native path.
        workers: Service worker-pool size shared by every cell.
        seed: Base seed for trace freezing and engine seeding.
        num_jobs: Optional trace-length override for catalogue scenarios.
        fidelity_report: Cloud engine's fidelity mode.
        canary_shots: Canary shots of the orchestrator/cluster engines.
        slo_wait_s: Wait-time SLO of the resilience metrics computed for
            fault-augmented scenario cells.
        tenant_aware: Replay every cell tenant-aware (trace users become
            :class:`~repro.tenancy.Tenant` identities; see
            :class:`~repro.scenarios.ScenarioRunner`), appending the
            per-tenant columns to the comparison table.

    Returns:
        A :class:`SweepResult` with one report per cell, ordered scenario ×
        engine × policy.

    Raises:
        ScenarioError: Empty scenario/engine/policy axes or unknown names.
    """
    if not scenarios:
        raise ScenarioError("run_sweep needs at least one scenario")
    if not engines:
        raise ScenarioError("run_sweep needs at least one engine")
    if not policies:
        raise ScenarioError("run_sweep needs at least one policy (None = native)")
    traces: List[Trace] = []
    for item in scenarios:
        if isinstance(item, Trace):
            traces.append(item)
        else:
            traces.append(build_scenario_trace(item, seed=seed, num_jobs=num_jobs))
    reports: List[ScenarioReport] = []
    for trace in traces:
        for engine in engines:
            for policy in policies:
                runner = ScenarioRunner(
                    list(fleet),
                    engine=engine,
                    policy=policy,
                    workers=workers,
                    seed=seed,
                    fidelity_report=fidelity_report,
                    canary_shots=canary_shots,
                    slo_wait_s=slo_wait_s,
                    tenant_aware=tenant_aware,
                )
                reports.append(runner.replay(trace))
    return SweepResult(reports=tuple(reports))


def render_sweep(result: SweepResult, title: str = "Scenario sweep") -> str:
    """Fixed-width comparison table over every sweep cell.

    Resilience columns are appended when any cell replayed a fault-augmented
    trace (fault-free cells leave those cells blank).
    """
    columns = list(SWEEP_COLUMNS)
    if any(report.resilience is not None for report in result.reports):
        columns += RESILIENCE_COLUMNS
    if any(report.tenant_waits is not None for report in result.reports):
        columns += TENANT_COLUMNS
    return render_metric_table(result.rows(), columns, title)
