"""Named, reproducible scenarios: the workload menu of the sweep harness.

A :class:`ScenarioSpec` bundles an arrival process, a workload suite and a
population/shot configuration under a short name, so experiments, the CLI
(``repro-qrio scenarios list/run/sweep``) and the benchmarks all talk about
the same workloads.  ``build_trace(seed=...)`` freezes a spec into a
normalised, replayable :class:`~repro.scenarios.Trace` — the same seed always
yields the same trace.

The built-in catalogue covers the scenario-diversity axis of the ROADMAP:
steady and diurnal Poisson load, MMPP bursts, heavy-tailed silences, a flash
crowd and a closed client loop.  ``register_scenario`` adds custom entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.scenarios.arrivals import (
    ArrivalProcess,
    ClosedLoopProcess,
    FlashCrowdProcess,
    MMPPProcess,
    ParetoProcess,
    PoissonProcess,
    generate_requests,
)
from repro.scenarios.events import (
    CalibrationJump,
    DeviceOutage,
    QueueStorm,
    StragglerSlowdown,
    TenantBurst,
    apply_workload_events,
    normalise_events,
)
from repro.scenarios.trace import Trace
from repro.utils.exceptions import ScenarioError
from repro.utils.rng import SeedLike, derive_seed
from repro.workloads.suites import WorkloadSuite, grid_random_suite, nisq_mix_suite


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload scenario: process + suite + population."""

    name: str
    description: str
    #: Builds a fresh arrival process (processes are stateful; never shared).
    process_factory: Callable[[], ArrivalProcess]
    num_jobs: int = 60
    num_users: int = 8
    shots: int = 1024
    #: Builds the workload suite jobs are drawn from (default: NISQ mix).
    suite_factory: Callable[[], WorkloadSuite] = field(default=nisq_mix_suite)
    #: Builds the scenario's fault-event stream (``None`` = fault-free).
    #: Device references may use the fleet-relative ``"@N"`` form so catalog
    #: scenarios stay portable across fleets.
    events_factory: Optional[Callable[[], Sequence[object]]] = None

    def process(self) -> ArrivalProcess:
        """A fresh instance of the scenario's arrival process."""
        return self.process_factory()

    def events(self) -> tuple:
        """The scenario's normalised fault events (empty when fault-free)."""
        if self.events_factory is None:
            return ()
        return normalise_events(self.events_factory())

    def build_trace(self, seed: SeedLike = None, *, num_jobs: Optional[int] = None) -> Trace:
        """Freeze this scenario into a normalised, replayable trace.

        The seed is mixed with the scenario name, so two scenarios built from
        the same base seed still draw independent streams; ``num_jobs``
        optionally overrides the spec's default length (benchmarks shrink it
        for smoke runs).  Fault scenarios fold workload-shaping events
        (tenant bursts) into the arrival stream and record the full event
        stream on the trace, so the frozen artefact replays hostile
        conditions deterministically.
        """
        process = self.process()
        suite = self.suite_factory()
        trace_seed = derive_seed(seed, "scenario", self.name)
        requests = generate_requests(
            process,
            num_jobs=num_jobs if num_jobs is not None else self.num_jobs,
            num_users=self.num_users,
            shots=self.shots,
            suite=suite,
            seed=trace_seed,
        )
        events = self.events()
        if events:
            requests = apply_workload_events(
                requests, events, suite=suite, shots=self.shots, seed=trace_seed
            )
        return Trace.from_requests(
            self.name,
            requests,
            events=events,
            description=self.description,
            **process.describe(),
        )

    def describe(self) -> Dict[str, object]:
        """Serialisable listing row (CLI ``scenarios list [--json]``)."""
        events = self.events()
        return {
            "name": self.name,
            "description": self.description,
            "num_jobs": self.num_jobs,
            "num_users": self.num_users,
            "shots": self.shots,
            "suite": self.suite_factory().name,
            "num_events": len(events),
            "event_kinds": sorted({event.kind for event in events}),
            **self.process().describe(),
        }


_CATALOG: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the catalogue (``replace=True`` to overwrite)."""
    if not replace and spec.name in _CATALOG:
        raise ScenarioError(f"A scenario named '{spec.name}' is already registered")
    _CATALOG[spec.name] = spec
    return spec


def unregister_scenario(name: str) -> None:
    """Remove a scenario (used by tests to keep the catalogue clean)."""
    _CATALOG.pop(name, None)


def available_scenarios() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_CATALOG)


def scenario(name: str) -> ScenarioSpec:
    """Look up one scenario by name.

    Raises:
        ScenarioError: Unknown name (listing the registered ones).
    """
    if name not in _CATALOG:
        raise ScenarioError(
            f"Unknown scenario '{name}' (registered: {', '.join(available_scenarios())})"
        )
    return _CATALOG[name]


def build_scenario_trace(name: str, seed: SeedLike = None, *, num_jobs: Optional[int] = None) -> Trace:
    """Shorthand: ``scenario(name).build_trace(seed, num_jobs=...)``."""
    return scenario(name).build_trace(seed, num_jobs=num_jobs)


# --------------------------------------------------------------------------- #
# Built-in catalogue
# --------------------------------------------------------------------------- #
register_scenario(
    ScenarioSpec(
        name="steady",
        description="Steady Poisson load at 60 jobs/hour (the legacy default)",
        process_factory=lambda: PoissonProcess(rate_per_hour=60.0),
    )
)
register_scenario(
    ScenarioSpec(
        name="diurnal",
        description="Poisson load with a strong day/night cycle (amplitude 0.6)",
        process_factory=lambda: PoissonProcess(rate_per_hour=60.0, diurnal_amplitude=0.6),
        num_jobs=80,
    )
)
register_scenario(
    ScenarioSpec(
        name="bursty",
        description="MMPP bursts: quiet stretches punctuated by 8x-rate batches",
        process_factory=lambda: MMPPProcess(rate_per_hour=60.0, burst_factor=8.0),
        num_jobs=80,
    )
)
register_scenario(
    ScenarioSpec(
        name="heavy-tail",
        description="Pareto (alpha=1.3) inter-arrivals: long silences, tight clusters",
        process_factory=lambda: ParetoProcess(rate_per_hour=60.0, alpha=1.3),
    )
)
register_scenario(
    ScenarioSpec(
        name="flash-crowd",
        description="Steady load with a 10x submission spike half an hour in",
        process_factory=lambda: FlashCrowdProcess(
            rate_per_hour=60.0, flash_at_s=1800.0, flash_duration_s=900.0, flash_multiplier=10.0
        ),
        num_jobs=80,
    )
)
register_scenario(
    ScenarioSpec(
        name="closed-loop",
        description="8 interactive clients, 2-minute think time (self-limiting load)",
        process_factory=lambda: ClosedLoopProcess(num_clients=8, think_time_s=120.0),
    )
)

# --------------------------------------------------------------------------- #
# Fault-augmented scenarios (hostile-world conditions).  Event times are laid
# out against each scenario's expected trace span (num_jobs / rate), and all
# device references use the fleet-relative "@N" form so the scenarios replay
# on any fleet with enough devices.
# --------------------------------------------------------------------------- #
register_scenario(
    ScenarioSpec(
        name="outage-recovery",
        description="Steady load; the first device drops out mid-trace and returns",
        process_factory=lambda: PoissonProcess(rate_per_hour=120.0),
        num_jobs=60,
        events_factory=lambda: (
            DeviceOutage(time_s=400.0, device="@0", duration_s=500.0),
        ),
    )
)
register_scenario(
    ScenarioSpec(
        name="calibration-shock",
        description="Steady load; two devices take calibration-epoch jumps mid-trace",
        process_factory=lambda: PoissonProcess(rate_per_hour=120.0),
        num_jobs=60,
        events_factory=lambda: (
            CalibrationJump(time_s=350.0, device="@0"),
            CalibrationJump(time_s=900.0, device="@1", two_qubit_spread=0.6),
        ),
    )
)
register_scenario(
    ScenarioSpec(
        name="hostile-world",
        description="Bursty load under all five fault kinds: outage, drift, storm, straggler, tenant burst",
        process_factory=lambda: MMPPProcess(rate_per_hour=120.0, burst_factor=6.0),
        num_jobs=80,
        events_factory=lambda: (
            StragglerSlowdown(time_s=120.0, device="@2", duration_s=700.0, factor=3.0),
            QueueStorm(time_s=250.0, backlog_s=600.0, devices=("@1",)),
            DeviceOutage(time_s=500.0, device="@0", duration_s=450.0),
            TenantBurst(time_s=600.0, duration_s=300.0, rate_per_hour=480.0),
            CalibrationJump(time_s=800.0, device="@1"),
        ),
    )
)
register_scenario(
    ScenarioSpec(
        name="grid-stress",
        description="Supremacy-style grid random circuits under an outage plus drift",
        process_factory=lambda: PoissonProcess(rate_per_hour=120.0),
        num_jobs=60,
        suite_factory=grid_random_suite,
        events_factory=lambda: (
            DeviceOutage(time_s=300.0, device="@1", duration_s=400.0),
            CalibrationJump(time_s=700.0, device="@2"),
        ),
    )
)
