"""Replay any trace against any engine × policy × workers configuration.

:class:`ScenarioRunner` is the evaluation loop the paper's future-work item 4
(multi-job scheduling) needs: it takes a portable
:class:`~repro.scenarios.Trace` and drives it through
:meth:`~repro.service.QRIOService.submit`, so the *same* workload exercises
the full orchestrator cycle, the bare cluster framework or the discrete-event
cloud simulator — under any registered placement policy and any worker-pool
size — and comes back as one comparable :class:`ScenarioReport`.

Determinism contract: a runner builds a **fresh, seeded engine per replay**,
and trace jobs carry their recorded arrival times into the cloud engine's
discrete-event clock (``JobRequirements.arrival_time_s``).  Replaying one
trace twice under the same seed therefore reproduces routing decisions and
per-job results bit-for-bit — the property the scenario test-suite and
``BENCH_scenarios.json`` pin.

Imports of the service layer are deliberately function-local: the service's
engines import :mod:`repro.scenarios.arrivals`, so a module-level import here
would create a cycle during package initialisation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.backends.backend import Backend
from repro.scenarios.arrivals import JobRequest
from repro.scenarios.metrics import summarise_waits, wait_fairness
from repro.scenarios.trace import Trace
from repro.utils.exceptions import AdmissionRejectedError, ScenarioError
from repro.utils.rng import SeedLike, derive_seed

#: Engine names the runner can build on its own.
ENGINE_NAMES = ("orchestrator", "cluster", "cloud")

#: Label rendered (and accepted by lookups) for "no policy — the engine's
#: native placement path".  One constant so report rows, sweep-cell lookup
#: and the CLI's ``--policies`` parsing cannot drift apart.
NATIVE_POLICY = "native"

#: Row keys appended by tenant-aware replays (sweep tables pick them up).
TENANT_ROW_KEYS = ("tenants", "worst_tenant_p99_s")


def policy_label(policy: Optional[str]) -> str:
    """The display/lookup label of a report's policy (``None`` → native)."""
    return NATIVE_POLICY if policy is None else policy


@dataclass(frozen=True)
class JobOutcome:
    """One job's replay outcome (the rows behind a report's signatures)."""

    name: str
    user: str
    device: Optional[str]
    succeeded: bool
    wait_s: Optional[float] = None
    fidelity: Optional[float] = None
    score: Optional[float] = None
    counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    #: The trace's recorded arrival time (drives the resilience metrics'
    #: outage-window attribution; not part of the replay signatures).
    arrival_s: Optional[float] = None


@dataclass(frozen=True)
class ScenarioReport:
    """Unified result of replaying one trace on one configuration."""

    scenario: str
    engine: str
    policy: Optional[str]
    workers: int
    jobs: int
    succeeded: int
    failed: int
    outcomes: Tuple[JobOutcome, ...]
    #: p50/p95/p99/mean/max wait summary (see :attr:`wait_clock` for units).
    wait_summary: Dict[str, float]
    #: ``"simulated"`` (cloud engine's logical clock) or ``"wall"`` seconds.
    wait_clock: str
    makespan_s: float
    mean_fidelity: Optional[float]
    fairness: float
    jobs_per_device: Dict[str, int]
    #: Busy fraction per device over the makespan (cloud engine only).
    device_utilisation: Optional[Dict[str, float]] = None
    #: Resilience metrics (:func:`~repro.scenarios.resilience.resilience_summary`)
    #: — populated only when the replayed trace carried fault events.
    resilience: Optional[Dict[str, object]] = None
    #: Per-tenant wait summaries (p50/p95/p99/mean/max, keyed by tenant id)
    #: — populated only by tenant-aware replays; ``fairness`` then reads as
    #: the cross-tenant Jain index.
    tenant_waits: Optional[Dict[str, Dict[str, float]]] = None

    # ------------------------------------------------------------------ #
    def routing(self) -> Tuple[Tuple[str, Optional[str]], ...]:
        """``(job name, device)`` per job, in arrival order."""
        return tuple((outcome.name, outcome.device) for outcome in self.outcomes)

    def routing_signature(self) -> str:
        """Digest of the routing decisions (bit-identical replays agree)."""
        return hashlib.sha256(repr(self.routing()).encode("utf-8")).hexdigest()

    def results_signature(self) -> str:
        """Digest of per-job results: device, counts, fidelity, score, error."""
        payload = tuple(
            (
                outcome.name,
                outcome.device,
                tuple(sorted(outcome.counts.items())),
                outcome.fidelity,
                outcome.score,
                outcome.error,
            )
            for outcome in self.outcomes
        )
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()

    def row(self) -> Dict[str, object]:
        """One flat row for comparison tables and JSON reports.

        Fault-augmented replays append the resilience columns
        (:data:`~repro.scenarios.resilience.RESILIENCE_ROW_KEYS`); fault-free
        rows keep the original shape so existing consumers are unaffected.
        """
        row: Dict[str, object] = {
            "scenario": self.scenario,
            "engine": self.engine,
            "policy": policy_label(self.policy),
            "workers": self.workers,
            "jobs": self.jobs,
            "failed": self.failed,
            "p50_wait_s": self.wait_summary["p50"],
            "p95_wait_s": self.wait_summary["p95"],
            "p99_wait_s": self.wait_summary["p99"],
            "mean_wait_s": self.wait_summary["mean"],
            "makespan_s": self.makespan_s,
            "mean_fidelity": float("nan") if self.mean_fidelity is None else self.mean_fidelity,
            "fairness": self.fairness,
            "wait_clock": self.wait_clock,
        }
        if self.resilience is not None:
            from repro.scenarios.resilience import RESILIENCE_ROW_KEYS

            for key in RESILIENCE_ROW_KEYS:
                row[key] = self.resilience[key]
        if self.tenant_waits is not None:
            row["tenants"] = len(self.tenant_waits)
            row["worst_tenant_p99_s"] = max(
                (summary["p99"] for summary in self.tenant_waits.values()), default=0.0
            )
        return row

    def to_json(self) -> str:
        """The flat row as a JSON document (used by the CLI ``--json`` mode).

        Strict JSON: a missing fidelity is ``null``, never the non-standard
        ``NaN`` literal, so downstream parsers need no leniency flags.
        """
        return json.dumps(_json_safe_row(self.row()), sort_keys=True)


def _json_safe_row(row: Dict[str, object]) -> Dict[str, object]:
    """Replace non-finite floats with ``None`` for strict-JSON consumers."""
    import math

    return {
        key: (None if isinstance(value, float) and not math.isfinite(value) else value)
        for key, value in row.items()
    }


def _topology_edges(circuit) -> Tuple[Tuple[int, int], ...]:
    """The circuit's two-qubit interaction pairs, as a topology request."""
    edges = set()
    for instruction in circuit.data:
        if instruction.is_two_qubit_gate:
            a, b = instruction.qubits
            edges.add((min(a, b), max(a, b)))
    return tuple(sorted(edges))


class ScenarioRunner:
    """Replay traces through the unified service against one configuration.

    Args:
        fleet: Devices the replayed jobs are scheduled onto.
        engine: ``"orchestrator"`` / ``"cluster"`` / ``"cloud"``, or a
            zero-argument callable returning a fresh
            :class:`~repro.service.ExecutionEngine` (one per replay).
        policy: Placement policy applied to every job — a registry name
            (optionally parameterized) or a
            :class:`~repro.policies.PlacementPolicy` factory input; ``None``
            keeps each engine's native path.
        workers: Worker-pool size of the service (``0`` = synchronous).
        seed: Base seed; every replay derives the same engine seed from it,
            which is what makes replays bit-identical.
        fidelity_report: Cloud engine's fidelity mode (ignored elsewhere).
        canary_shots: Clifford-canary shots of orchestrator/cluster engines.
        slo_wait_s: Wait-time SLO used by the resilience metrics of
            fault-augmented replays (seconds on the report's wait clock).
        tenant_aware: Stamp each replayed job's trace user onto
            ``JobRequirements.tenant``, so weighted-fair queueing and
            per-tenant quotas apply during the replay and the report gains
            per-tenant wait summaries.  **Off by default**: tenants join the
            service's dedup key, so enabling this changes grouping (and
            hence routing) — the pre-tenancy bit-identity pins require the
            default to stay tenant-blind.
        tenants: Explicit ``{user: Tenant}`` definitions for tenant-aware
            replays; merged over (and winning against) the definitions the
            trace's :class:`~repro.scenarios.events.TenantBurst` events
            declare.  Users without a definition replay as weight-1
            unconstrained tenants.
        admission: Zero-argument factory building a fresh
            :class:`~repro.tenancy.AdmissionController` per replay (a
            controller is stateful, so sharing one across replays would
            leak pressure between them).  Submissions it rejects become
            failed outcomes with the rejection message — the trace is
            replayed, not aborted.
    """

    def __init__(
        self,
        fleet: List[Backend],
        *,
        engine: Union[str, Callable] = "orchestrator",
        policy: Optional[object] = None,
        workers: int = 0,
        seed: SeedLike = None,
        fidelity_report: str = "esp",
        canary_shots: int = 128,
        slo_wait_s: float = 600.0,
        tenant_aware: bool = False,
        tenants: Optional[Dict[str, object]] = None,
        admission: Optional[Callable] = None,
    ) -> None:
        if isinstance(engine, str) and engine not in ENGINE_NAMES:
            raise ScenarioError(
                f"Unknown engine '{engine}'; expected one of {', '.join(ENGINE_NAMES)} "
                "or an engine factory"
            )
        if slo_wait_s <= 0:
            raise ScenarioError("slo_wait_s must be a positive number of seconds")
        self._fleet = list(fleet)
        self._engine = engine
        self._policy = policy
        self._workers = workers
        self._seed = seed
        self._fidelity_report = fidelity_report
        self._canary_shots = canary_shots
        self._slo_wait_s = float(slo_wait_s)
        if (tenants or admission) and not tenant_aware:
            raise ScenarioError(
                "tenants/admission only apply to tenant-aware replays; pass tenant_aware=True"
            )
        self._tenant_aware = bool(tenant_aware)
        self._tenants = dict(tenants) if tenants else {}
        self._admission_factory = admission

    # ------------------------------------------------------------------ #
    @property
    def engine_name(self) -> str:
        """The configured engine selector (name, or the factory's repr)."""
        return self._engine if isinstance(self._engine, str) else getattr(self._engine, "__name__", "custom")

    def _make_engine(self):
        """A fresh, deterministically-seeded engine for one replay."""
        from repro.cloud.simulation import CloudSimulationConfig
        from repro.service import CloudEngine, ClusterEngine, OrchestratorEngine

        if callable(self._engine):
            return self._engine()
        engine_seed = derive_seed(self._seed, "scenario-engine", self._engine)
        if self._engine == "orchestrator":
            return OrchestratorEngine(
                canary_shots=self._canary_shots, policy=self._policy, seed=engine_seed
            )
        if self._engine == "cluster":
            return ClusterEngine(
                canary_shots=self._canary_shots, policy=self._policy, seed=engine_seed
            )
        return CloudEngine(
            policy=self._policy,
            config=CloudSimulationConfig(fidelity_report=self._fidelity_report, seed=engine_seed),
        )

    def _requirements_for(self, request: JobRequest, arrival: bool, tenant=None):
        from repro.service import JobRequirements

        arrival_time = request.arrival_time if arrival else None
        if request.strategy == "topology":
            edges = _topology_edges(request.circuit)
            if edges:
                return JobRequirements(
                    topology_edges=edges, arrival_time_s=arrival_time, tenant=tenant
                )
        threshold = request.fidelity_threshold
        if not 0.0 < threshold <= 1.0:
            threshold = 1.0
        return JobRequirements(
            fidelity_threshold=threshold, arrival_time_s=arrival_time, tenant=tenant
        )

    # ------------------------------------------------------------------ #
    def replay(self, trace: Union[Trace, List[JobRequest]], *, name: Optional[str] = None) -> ScenarioReport:
        """Replay every job of ``trace`` and aggregate a scenario report.

        Jobs are submitted in arrival order with their recorded arrival
        times, shots and strategy-derived requirements (fidelity threshold,
        or a topology request reconstructed from the circuit's two-qubit
        interaction structure), then the service is drained.

        Fault-augmented traces (``trace.events``) are replayed through a
        :class:`~repro.scenarios.events.FaultInjector` bound to the replay's
        engine: every job carries its recorded arrival time (on every
        engine, so event ordering against the arrival clock is identical
        across engines) and each replay schedules onto private copies of the
        fleet's :class:`~repro.backends.Backend` objects, because
        calibration jumps mutate device properties in place.

        Raises:
            ScenarioError: The trace is empty.
        """
        from repro.service import CloudEngine, QRIOService

        jobs = list(trace.jobs) if isinstance(trace, Trace) else list(trace)
        events = tuple(trace.events) if isinstance(trace, Trace) else ()
        if not jobs:
            raise ScenarioError("Cannot replay an empty trace")
        has_faults = bool(events)
        scenario_name = name or (trace.name if isinstance(trace, Trace) else "trace")
        engine = self._make_engine()
        is_cloud = isinstance(engine, CloudEngine)
        fleet = (
            [Backend(properties=backend.properties) for backend in self._fleet]
            if has_faults
            else self._fleet
        )
        tenant_map: Dict[str, object] = {}
        if self._tenant_aware:
            from repro.scenarios.events import tenants_from_events
            from repro.tenancy.api import Tenant

            tenant_map = tenants_from_events(events)
            tenant_map.update(self._tenants)
        admission = self._admission_factory() if self._admission_factory is not None else None
        service = QRIOService(fleet, engine, workers=self._workers, admission=admission)
        injector = None
        if has_faults:
            from repro.scenarios.events import FaultInjector

            # Engine-independent seed: the injected drift must be the same
            # across engines for the cross-engine signature contract.
            injector = FaultInjector(events, seed=derive_seed(self._seed, "scenario-faults"))
            service.set_fault_injector(injector)
        try:
            handles = []
            for request in sorted(jobs, key=lambda job: (job.arrival_time, job.index)):
                tenant = None
                if self._tenant_aware:
                    tenant = tenant_map.get(request.user)
                    if tenant is None:
                        tenant = Tenant(id=request.user)
                        tenant_map[request.user] = tenant
                requirements = self._requirements_for(
                    request, arrival=is_cloud or has_faults, tenant=tenant
                )
                try:
                    handle = service.submit(
                        request.circuit,
                        requirements,
                        shots=request.shots,
                        name=request.name,
                    )
                except AdmissionRejectedError as rejection:
                    # A rejected submission is an outcome of the scenario,
                    # not a replay failure: record the shed and keep going.
                    handles.append((request, None, str(rejection)))
                else:
                    handles.append((request, handle, None))
            service.process()
            if injector is not None:
                injector.finish()
            outcomes: List[JobOutcome] = []
            for request, handle, shed_error in handles:
                if handle is None:
                    outcomes.append(
                        JobOutcome(
                            name=request.name,
                            user=request.user,
                            device=None,
                            succeeded=False,
                            error=shed_error,
                            arrival_s=request.arrival_time,
                        )
                    )
                    continue
                status = handle.status()
                if handle.done:
                    result = handle.result()
                    outcomes.append(
                        JobOutcome(
                            name=handle.name,
                            user=request.user,
                            device=result.device,
                            succeeded=True,
                            wait_s=self._wait_of(handle, result),
                            fidelity=result.fidelity,
                            score=result.score,
                            counts=dict(result.counts),
                            arrival_s=request.arrival_time,
                        )
                    )
                else:
                    outcomes.append(
                        JobOutcome(
                            name=handle.name,
                            user=request.user,
                            device=status.device,
                            succeeded=False,
                            error=status.error,
                            arrival_s=request.arrival_time,
                        )
                    )
            wall_report = service.wait_report()
        finally:
            service.close()
        return self._build_report(scenario_name, engine, is_cloud, outcomes, wall_report, events)

    @staticmethod
    def _wait_of(handle, result) -> Optional[float]:
        """Per-job wait: simulated (cloud detail) or wall-clock (events)."""
        wait = result.detail.get("wait_time_s")
        if wait is not None:
            return float(wait)
        return handle.wall_wait_s()

    def _build_report(
        self,
        scenario_name: str,
        engine,
        is_cloud: bool,
        outcomes: List[JobOutcome],
        wall_report: Dict[str, object],
        events: Tuple[object, ...] = (),
    ) -> ScenarioReport:
        waits = [outcome.wait_s for outcome in outcomes if outcome.wait_s is not None]
        waits_by_user: Dict[str, List[float]] = {}
        for outcome in outcomes:
            if outcome.wait_s is not None:
                waits_by_user.setdefault(outcome.user, []).append(outcome.wait_s)
        jobs_per_device: Dict[str, int] = {}
        for outcome in outcomes:
            if outcome.device is not None:
                jobs_per_device[outcome.device] = jobs_per_device.get(outcome.device, 0) + 1
        fidelities = [outcome.fidelity for outcome in outcomes if outcome.fidelity is not None]
        utilisation: Optional[Dict[str, float]] = None
        if is_cloud:
            simulation = engine.simulation_result()
            makespan_s = simulation.makespan()
            utilisation = simulation.device_utilisation()
            wait_clock = "simulated"
        else:
            makespan_s = float(wall_report["makespan_s"])
            wait_clock = "wall"
        succeeded = sum(1 for outcome in outcomes if outcome.succeeded)
        resilience: Optional[Dict[str, object]] = None
        if events:
            from repro.scenarios.resilience import resilience_summary

            resilience = resilience_summary(outcomes, events, slo_wait_s=self._slo_wait_s)
        tenant_waits: Optional[Dict[str, Dict[str, float]]] = None
        if self._tenant_aware:
            # Tenant-aware replays stamp the trace user as the tenant id, so
            # the per-user wait groups *are* the per-tenant groups.
            tenant_waits = {
                user: summarise_waits(samples)
                for user, samples in sorted(waits_by_user.items())
            }
        policy_label: Optional[str]
        if self._policy is None:
            policy_label = None
        elif isinstance(self._policy, str):
            policy_label = self._policy
        else:
            policy_label = getattr(self._policy, "name", type(self._policy).__name__)
        return ScenarioReport(
            scenario=scenario_name,
            engine=engine.name,
            policy=policy_label,
            workers=self._workers,
            jobs=len(outcomes),
            succeeded=succeeded,
            failed=len(outcomes) - succeeded,
            outcomes=tuple(outcomes),
            wait_summary=summarise_waits(waits),
            wait_clock=wait_clock,
            makespan_s=makespan_s,
            mean_fidelity=(sum(fidelities) / len(fidelities)) if fidelities else None,
            fairness=wait_fairness(waits_by_user),
            jobs_per_device=dict(sorted(jobs_per_device.items())),
            device_utilisation=utilisation,
            resilience=resilience,
            tenant_waits=tenant_waits,
        )
