"""SLO-aware admission control: shed load *before* the hard backstop.

The runtime's ``max_pending`` bound is a blunt instrument — by the time it
fires, the queue is already deep and every tenant suffers.
:class:`AdmissionController` is the soft layer in front of it, fed by the
same live p99-wait signal :meth:`QRIOService.wait_report` reports:

* **Quota enforcement** (always on): a tenant's ``max_pending`` /
  ``max_inflight`` / ``shots_per_second`` caps are checked before its batch
  enters the queue, so one tenant's burst can never monopolise queue
  capacity that backpressure would otherwise deny to everyone.
* **SLO pressure states**: the controller keeps a rolling window of observed
  QUEUED→RUNNING waits and compares the window's p99 against the configured
  SLO.  Rising pressure moves tenants ``accept → defer → shed``:

  - **accept** — admit everything within quota;
  - **defer** — admit a tenant's next job only once its own queue drained
    (``queued == 0``), which throttles bursters while leaving trickle
    traffic untouched;
  - **shed** — reject submissions of any tenant with outstanding work
    (queued *or* executing) and every multi-job batch; only a tenant with
    nothing in the system gets one job through, so admission itself stays
    starvation-free.

  Escalation is immediate (overload must be reacted to at once), but
  de-escalation is *hysteretic*: pressure must stay below the recovery
  threshold for ``cooldown`` consecutive observations before a tenant steps
  back one level — the defer↔shed flapping guard the tenancy test-suite
  pins.

Rejections raise the typed
:class:`~repro.utils.exceptions.AdmissionRejectedError` carrying a
retry-after estimate, and subclass ``ServiceOverloadedError`` so existing
overload handlers keep working.

Determinism: the controller is driven entirely by the waits it is shown and
by an injectable clock (the token bucket's refill source), so tests feed
synthetic waits and a fake clock to walk the state machine reproducibly.
"""

from __future__ import annotations

import time
from collections import deque
from enum import Enum
from typing import Callable, Deque, Dict, Optional

from repro.tenancy.api import Tenant
from repro.utils.exceptions import AdmissionRejectedError, ServiceError


class AdmissionState(str, Enum):
    """Per-tenant admission level (ordered by severity)."""

    ACCEPT = "accept"
    DEFER = "defer"
    SHED = "shed"


_LEVELS = (AdmissionState.ACCEPT, AdmissionState.DEFER, AdmissionState.SHED)


class _TokenBucket:
    """Shots-per-second rate limiter with a one-second burst capacity."""

    __slots__ = ("rate", "tokens", "stamp")

    def __init__(self, rate: float, now: float) -> None:
        self.rate = rate
        self.tokens = rate  # start full: the first burst is free
        self.stamp = now

    def consume(self, amount: float, now: float) -> Optional[float]:
        """Take ``amount`` tokens; returns ``None`` on success, else the
        seconds until enough tokens will have refilled."""
        self.tokens = min(self.rate, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if amount <= self.tokens:
            self.tokens -= amount
            return None
        return (amount - self.tokens) / self.rate


class AdmissionController:
    """Accept/defer/shed state machine fed by live p99 waits.

    Args:
        slo_wait_s: The wait-time SLO (seconds on the caller's wait clock).
        defer_ratio: Pressure (p99 / SLO) at which backlogged tenants defer.
        shed_ratio: Pressure at which backlogged tenants shed outright.
        recover_ratio: Pressure below which cooldown ticks accumulate.
        cooldown: Consecutive low-pressure observations required to step a
            tenant's state back one level (the de-escalation hysteresis).
        window: Rolling wait-sample window size for the p99 estimate.
        min_samples: Observations needed before pressure is trusted at all.
        clock: Monotonic-seconds source for the token buckets (injectable
            for deterministic tests).

    Thread-safety: calls are serialized by the service's state lock; the
    controller itself keeps plain state.
    """

    def __init__(
        self,
        *,
        slo_wait_s: float,
        defer_ratio: float = 0.7,
        shed_ratio: float = 1.1,
        recover_ratio: float = 0.5,
        cooldown: int = 4,
        window: int = 256,
        min_samples: int = 5,
        # qrio: allow[QRIO-D002] live-runtime rate limiting needs a real clock
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if slo_wait_s <= 0:
            raise ServiceError("slo_wait_s must be a positive number of seconds")
        if not 0 < recover_ratio <= defer_ratio < shed_ratio:
            raise ServiceError("Admission thresholds need 0 < recover <= defer < shed")
        if cooldown < 1 or window < 1 or min_samples < 1:
            raise ServiceError("cooldown, window and min_samples must be >= 1")
        self.slo_wait_s = float(slo_wait_s)
        self._defer_ratio = float(defer_ratio)
        self._shed_ratio = float(shed_ratio)
        self._recover_ratio = float(recover_ratio)
        self._cooldown = int(cooldown)
        self._min_samples = int(min_samples)
        self._clock = clock
        self._waits: Deque[float] = deque(maxlen=int(window))
        self._states: Dict[str, AdmissionState] = {}
        self._cool: Dict[str, int] = {}
        self._buckets: Dict[str, _TokenBucket] = {}
        self._rejections: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # The live SLO signal
    # ------------------------------------------------------------------ #
    def observe_wait(self, wait_s: float) -> None:
        """Feed one observed QUEUED→RUNNING wait into the rolling window.

        The service calls this for every job that starts executing, which is
        exactly the sample population :meth:`QRIOService.wait_report`'s p99
        summarises — the controller sees the same signal operators do.
        """
        if wait_s >= 0.0:
            self._waits.append(float(wait_s))

    def p99_wait_s(self) -> float:
        """The rolling window's p99 wait (0.0 until ``min_samples`` arrive)."""
        if len(self._waits) < self._min_samples:
            return 0.0
        ordered = sorted(self._waits)
        index = max(0, int(round(0.99 * (len(ordered) - 1))))
        return ordered[index]

    def pressure(self) -> float:
        """Current overload pressure: p99 wait / SLO (0.0 = no signal)."""
        return self.p99_wait_s() / self.slo_wait_s

    # ------------------------------------------------------------------ #
    # Per-tenant state machine
    # ------------------------------------------------------------------ #
    def state(self, tenant_id: str) -> AdmissionState:
        """The tenant's current admission state (ACCEPT when never seen)."""
        return self._states.get(tenant_id, AdmissionState.ACCEPT)

    def _advance(self, tenant_id: str) -> AdmissionState:
        """One state-machine step under the current pressure reading."""
        pressure = self.pressure()
        if pressure >= self._shed_ratio:
            target = AdmissionState.SHED
        elif pressure >= self._defer_ratio:
            target = AdmissionState.DEFER
        else:
            target = AdmissionState.ACCEPT
        current = self.state(tenant_id)
        if _LEVELS.index(target) > _LEVELS.index(current):
            # Escalate immediately; any escalation restarts the cooldown.
            self._states[tenant_id] = target
            self._cool[tenant_id] = 0
            return target
        if current is not AdmissionState.ACCEPT:
            if pressure < self._recover_ratio:
                ticks = self._cool.get(tenant_id, 0) + 1
                if ticks >= self._cooldown:
                    stepped = _LEVELS[_LEVELS.index(current) - 1]
                    self._states[tenant_id] = stepped
                    self._cool[tenant_id] = 0
                    return stepped
                self._cool[tenant_id] = ticks
            else:
                self._cool[tenant_id] = 0
        return self.state(tenant_id)

    # ------------------------------------------------------------------ #
    # The admit decision
    # ------------------------------------------------------------------ #
    def admit(
        self,
        tenant: Tenant,
        *,
        queued: int,
        inflight: int,
        batch_jobs: int = 1,
        batch_shots: int = 0,
    ) -> None:
        """Admit or reject one submission batch for ``tenant``.

        Args:
            tenant: The submitting tenant (its quotas apply).
            queued: The tenant's jobs currently queued, pre-dispatch.
            inflight: The tenant's jobs dispatched but not yet terminal.
            batch_jobs: Jobs in the batch under admission.
            batch_shots: Total shots in the batch (rate-limit accounting).

        Raises:
            AdmissionRejectedError: Quota exceeded, or the tenant's SLO state
                rejects the batch; carries ``retry_after_s``.
        """
        tenant_id = tenant.id
        if tenant.max_pending is not None and queued + batch_jobs > tenant.max_pending:
            self._reject(
                tenant_id,
                "quota",
                f"tenant '{tenant_id}' pending quota exceeded "
                f"({queued} queued + {batch_jobs} > max_pending={tenant.max_pending})",
            )
        if tenant.max_inflight is not None and queued + inflight + batch_jobs > tenant.max_inflight:
            self._reject(
                tenant_id,
                "quota",
                f"tenant '{tenant_id}' inflight quota exceeded "
                f"({queued + inflight} outstanding + {batch_jobs} > max_inflight={tenant.max_inflight})",
            )
        if tenant.shots_per_second is not None and batch_shots > 0:
            now = self._clock()
            bucket = self._buckets.get(tenant_id)
            if bucket is None or bucket.rate != tenant.shots_per_second:
                bucket = _TokenBucket(float(tenant.shots_per_second), now)
                self._buckets[tenant_id] = bucket
            deficit = bucket.consume(float(batch_shots), now)
            if deficit is not None:
                self._reject(
                    tenant_id,
                    "quota",
                    f"tenant '{tenant_id}' shot rate exceeded "
                    f"({batch_shots} shots > {tenant.shots_per_second}/s budget)",
                    retry_after_s=deficit,
                )
        state = self._advance(tenant_id)
        if state is AdmissionState.SHED and (queued + inflight > 0 or batch_jobs > 1):
            self._reject(
                tenant_id,
                "shed",
                f"tenant '{tenant_id}' is shed under SLO pressure "
                f"{self.pressure():.2f} (p99 {self.p99_wait_s():.3f}s vs SLO {self.slo_wait_s:.3f}s)",
            )
        if state is AdmissionState.DEFER and queued > 0:
            self._reject(
                tenant_id,
                "defer",
                f"tenant '{tenant_id}' is deferred under SLO pressure "
                f"{self.pressure():.2f}; retry once its {queued} queued jobs drain",
            )

    def _reject(
        self, tenant_id: str, state: str, message: str, *, retry_after_s: Optional[float] = None
    ) -> None:
        self._rejections[tenant_id] = self._rejections.get(tenant_id, 0) + 1
        if retry_after_s is None:
            # Advisory estimate: half the observed tail wait, floored so
            # callers never busy-spin.
            retry_after_s = max(0.05, 0.5 * self.p99_wait_s())
        raise AdmissionRejectedError(
            message + f" (retry after ~{retry_after_s:.2f}s)",
            tenant=tenant_id,
            state=state,
            retry_after_s=retry_after_s,
        )

    # ------------------------------------------------------------------ #
    def report(self) -> Dict[str, object]:
        """Controller snapshot for ``tenants_report()`` / the CLI listing."""
        return {
            "slo_wait_s": self.slo_wait_s,
            "p99_wait_s": self.p99_wait_s(),
            "pressure": self.pressure(),
            "samples": len(self._waits),
            "states": {tenant: state.value for tenant, state in sorted(self._states.items())},
            "rejections": dict(sorted(self._rejections.items())),
        }
