"""Multi-tenant dispatch: tenants, fair queueing, admission, process shards.

This package is the tenancy layer over the unified job service:

* :class:`Tenant` — the frozen identity + share + quota record every
  submission may carry via ``JobRequirements.tenant`` (absent = the
  ``"default"`` tenant, preserving every pre-tenancy behaviour);
* :class:`WeightedFairQueue` — the virtual-time weighted-fair scheduler the
  :class:`~repro.service.ServiceRuntime` drains instead of a single global
  priority heap (priority/deadline order is preserved *within* a tenant;
  a single active tenant degenerates to the old heap exactly);
* :class:`AdmissionController` — per-tenant quota enforcement plus the
  SLO-pressure ``accept → defer → shed`` state machine, raising the typed
  :class:`~repro.utils.exceptions.AdmissionRejectedError` before the hard
  ``max_pending`` backstop ever fires;
* :class:`ShardedService` — the process-sharded meta-dispatcher: the fleet
  partitioned across N spawn-safe worker processes, tenants routed by
  consistent hash (device pins override), results and wait statistics
  merged back into the one service-shaped API.

Import layering: ``tenancy.api``/``wfq``/``admission`` sit *below*
:mod:`repro.service` (the service imports them), while ``tenancy.sharding``
sits *above* it (it drives whole services in worker processes) — hence the
lazy ``__getattr__`` exports for the sharding names.
"""

from repro.tenancy.admission import AdmissionController, AdmissionState
from repro.tenancy.api import DEFAULT_TENANT, DEFAULT_TENANT_ID, Tenant, coerce_tenant
from repro.tenancy.wfq import WeightedFairQueue

__all__ = [
    "AdmissionController",
    "AdmissionState",
    "DEFAULT_TENANT",
    "DEFAULT_TENANT_ID",
    "EngineSpec",
    "ShardHandle",
    "ShardJob",
    "ShardOutcome",
    "ShardRequest",
    "ShardedService",
    "Tenant",
    "WeightedFairQueue",
    "coerce_tenant",
    "pinned_device_of",
]

_SHARDING_EXPORTS = (
    "EngineSpec",
    "ShardHandle",
    "ShardJob",
    "ShardOutcome",
    "ShardRequest",
    "ShardedService",
    "pinned_device_of",
)


def __getattr__(name: str):
    # Lazy: repro.tenancy.sharding imports repro.service, which imports the
    # eager modules above — resolving shard names on demand breaks the cycle.
    if name in _SHARDING_EXPORTS:
        from repro.tenancy import sharding

        return getattr(sharding, name)
    raise AttributeError(f"module 'repro.tenancy' has no attribute '{name}'")
