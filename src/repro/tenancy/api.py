"""Tenant identity: who is submitting, how much they may submit, at what share.

The service layer was built for "millions of users" but, until this module,
had no notion of *who* a job belongs to — every submission competed in one
anonymous priority queue.  A :class:`Tenant` gives a submission an identity
plus the two knobs multi-tenant schedulers need:

* **weight** — the tenant's share of service capacity under weighted-fair
  queueing (:mod:`repro.tenancy.wfq`).  A weight-2 tenant drains twice as
  fast as a weight-1 tenant while both are backlogged; weights are relative,
  not absolute rates.
* **quotas** — hard per-tenant caps enforced by the
  :class:`~repro.tenancy.AdmissionController` *before* work enters the
  queue: ``max_pending`` bounds jobs waiting for dispatch, ``max_inflight``
  bounds total outstanding work (queued + executing), and
  ``shots_per_second`` rate-limits shot throughput with a one-second-burst
  token bucket.  ``None`` disables the respective cap.

``Tenant`` is frozen and hashable by design: it rides on
:attr:`~repro.service.JobRequirements.tenant` and therefore participates in
``JobSpec.dedup_key()`` (two tenants never share one deduplicated execution
— quotas and fairness accounting would be unattributable otherwise) and in
the QRIO-S001 frozen-picklable contract (tenants cross process boundaries
inside :class:`~repro.tenancy.ShardJob` payloads).

The module is dependency-light on purpose — it must be importable from
``repro.service.api`` without creating a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.exceptions import ServiceError

#: Id of the implicit tenant of every submission that names none.
DEFAULT_TENANT_ID = "default"


@dataclass(frozen=True)
class Tenant:
    """One tenant: identity, fair-share weight, admission quotas."""

    id: str
    #: Relative weighted-fair-queueing share (must be positive).
    weight: float = 1.0
    #: Cap on jobs queued but not yet dispatched (``None`` = uncapped).
    max_pending: Optional[int] = None
    #: Cap on total outstanding jobs, queued + executing (``None`` = uncapped).
    max_inflight: Optional[int] = None
    #: Token-bucket rate limit on submitted shots (``None`` = uncapped).
    shots_per_second: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.id, str) or not self.id.strip():
            raise ServiceError("Tenant.id must be a non-empty string")
        if isinstance(self.weight, bool) or not isinstance(self.weight, (int, float)) or self.weight <= 0:
            raise ServiceError("Tenant.weight must be a positive number")
        for label in ("max_pending", "max_inflight"):
            value = getattr(self, label)
            if value is not None and (isinstance(value, bool) or not isinstance(value, int) or value <= 0):
                raise ServiceError(f"Tenant.{label} must be a positive integer (or None)")
        if self.shots_per_second is not None and (
            not isinstance(self.shots_per_second, (int, float)) or self.shots_per_second <= 0
        ):
            raise ServiceError("Tenant.shots_per_second must be a positive rate (or None)")

    @property
    def is_default(self) -> bool:
        """``True`` for the implicit anonymous tenant."""
        return self.id == DEFAULT_TENANT_ID


#: The implicit tenant: weight 1, no quotas — exactly the pre-tenancy
#: behaviour, so single-tenant services are unaffected by this subsystem.
DEFAULT_TENANT = Tenant(id=DEFAULT_TENANT_ID)


def coerce_tenant(tenant: "Optional[Tenant | str]") -> Optional[Tenant]:
    """Accept a :class:`Tenant`, a bare tenant id, or ``None``.

    A bare string builds an unquota'd weight-1 tenant of that id — the
    common CLI/test shorthand (``submit --tenant alice``).
    """
    if tenant is None or isinstance(tenant, Tenant):
        return tenant
    if isinstance(tenant, str):
        return Tenant(id=tenant)
    raise ServiceError(f"tenant must be a Tenant, a tenant id string or None, not {type(tenant).__name__}")
