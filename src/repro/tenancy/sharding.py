"""Process-sharded dispatch: one fleet, N single-process QRIO services.

:class:`ShardedService` is the meta-dispatcher of the tenancy layer.  It
partitions a device fleet across ``N`` worker *processes* (spawn context, so
the topology is identical on every platform and nothing leaks through fork),
rebuilds the execution engine inside each shard from a picklable
:class:`EngineSpec` recipe, and routes submissions to shards by a
consistent hash of the submitting tenant — jobs pinned to a device (the
``pinned:device=...`` policy) override the hash and go to the shard that
owns the device.

Why processes?  The in-process :class:`~repro.service.ServiceRuntime`
already overlaps device-occupancy windows across threads, but every
simulator in this repo is CPU-bound Python, so the GIL caps the *compute*
overlap a thread pool can deliver.  Sharding moves whole sub-fleets into
separate interpreters: matching, plan compilation and execution of different
shards genuinely run in parallel, which is what the
``BENCH_concurrency.json`` ``sharded`` row measures.

Everything crossing the process boundary is a frozen dataclass the pickle
contract (:mod:`repro.analysis.serialization`) covers:

* :class:`EngineSpec` — the engine *recipe* (engines themselves hold locks
  and sessions, so each shard builds its own and warms its own plan cache);
* :class:`ShardRequest` — one shard's sub-fleet, engine recipe and warmup;
* :class:`ShardJob` / :class:`ShardOutcome` — the per-job request/response
  envelope; outcomes carry the job's full :class:`~repro.service.JobEvent`
  history so the parent can merge wait statistics across shards
  (``time.monotonic`` is system-wide on Linux, so child timestamps are
  directly comparable).

The parent keeps the :class:`~repro.service.QRIOService`-shaped surface —
``submit`` / ``submit_batch`` returning handle objects, ``process()`` as the
drain barrier, ``wait_report()`` / ``tenants_report()`` / ``stats()`` — and
runs the same per-tenant :class:`~repro.tenancy.AdmissionController` gate in
front of routing, fed by the waits shipped back in outcomes.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import threading
from bisect import bisect_right
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.service.api import JobEvent, JobSpec, JobState, ServiceResult
from repro.service.handle import wall_wait_from_events
from repro.tenancy.admission import AdmissionController
from repro.tenancy.api import Tenant
from repro.utils.exceptions import JobFailedError, ServiceError

#: Virtual nodes per shard on the consistent-hash ring.  64 points per shard
#: keeps the tenant->shard assignment within a few percent of uniform while
#: the ring stays tiny (shards x 64 entries).
DEFAULT_VNODES = 64

_ENGINE_KINDS = ("orchestrator", "cluster", "cloud")


def _stable_hash(text: str) -> int:
    """Position of ``text`` on the hash ring.

    sha256, *not* the builtin ``hash``: routing must be identical across
    processes and runs, and ``PYTHONHASHSEED`` randomises ``hash(str)``.
    """
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


# --------------------------------------------------------------------------- #
# The picklable wire dataclasses
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EngineSpec:
    """Picklable recipe for building an execution engine inside a shard.

    Engines cannot be shipped (they hold locks, sessions and caches), so the
    parent sends the recipe and every shard builds — and warms — its own.

    Attributes:
        kind: ``"orchestrator"``, ``"cluster"`` or ``"cloud"``.
        policy: Default placement policy as a registry spec string
            (``"round-robin"``, ``"fidelity:queue_weight=0.3"``...); strings
            only, so the recipe stays picklable.  ``None`` keeps the
            engine's native path.
        seed: Engine base seed (per-shard determinism comes from the fleet
            partition, not from reseeding).
        latency_s: ``> 0`` wraps the engine in a
            :class:`~repro.service.DeviceLatencyEngine` with this occupancy.
        fidelity_report: Cloud engine fidelity mode (ignored elsewhere).
        inter_arrival_s: Cloud engine logical arrival gap (ignored elsewhere).
        canary_shots: Orchestrator/cluster canary budget (ignored by cloud).
    """

    kind: str = "orchestrator"
    policy: Optional[str] = None
    seed: Optional[int] = None
    latency_s: float = 0.0
    fidelity_report: str = "esp"
    inter_arrival_s: float = 1.0
    canary_shots: int = 512

    def __post_init__(self) -> None:
        if self.kind not in _ENGINE_KINDS:
            raise ServiceError(f"EngineSpec.kind must be one of {_ENGINE_KINDS}, not {self.kind!r}")
        if self.policy is not None and not isinstance(self.policy, str):
            raise ServiceError("EngineSpec.policy must be a registry spec string (picklable)")
        if self.latency_s < 0:
            raise ServiceError("EngineSpec.latency_s must be >= 0")

    def build(self):
        """Construct the engine this recipe describes (called per shard)."""
        from repro.service.engines import (
            CloudEngine,
            ClusterEngine,
            DeviceLatencyEngine,
            OrchestratorEngine,
        )

        if self.kind == "orchestrator":
            engine = OrchestratorEngine(
                policy=self.policy, seed=self.seed, canary_shots=self.canary_shots
            )
        elif self.kind == "cluster":
            engine = ClusterEngine(
                policy=self.policy, seed=self.seed, canary_shots=self.canary_shots
            )
        else:
            from repro.cloud.simulation import CloudSimulationConfig

            engine = CloudEngine(
                self.policy,
                config=CloudSimulationConfig(fidelity_report=self.fidelity_report, seed=self.seed),
                inter_arrival_s=self.inter_arrival_s,
            )
        if self.latency_s > 0:
            engine = DeviceLatencyEngine(engine, latency_s=self.latency_s)
        return engine


@dataclass(frozen=True)
class ShardRequest:
    """Everything one worker process needs to stand up its shard service."""

    shard_index: int
    num_shards: int
    fleet: Tuple[Backend, ...]
    engine: EngineSpec
    workers: int = 0
    max_pending: Optional[int] = None
    #: Specs submitted and drained before the shard reports ready — the
    #: per-shard plan-cache warmup (each shard has its own process-wide cache).
    warmup: Tuple[JobSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.shard_index < 0 or self.shard_index >= self.num_shards:
            raise ServiceError("ShardRequest.shard_index must be within [0, num_shards)")
        if not self.fleet:
            raise ServiceError("ShardRequest.fleet must contain at least one device")


@dataclass(frozen=True)
class ShardJob:
    """One job crossing the parent -> shard boundary."""

    job_id: int
    spec: JobSpec

    def __post_init__(self) -> None:
        if self.spec.name is None:
            raise ServiceError("ShardJob specs must carry parent-assigned names")


@dataclass(frozen=True)
class ShardOutcome:
    """One job's terminal report crossing the shard -> parent boundary."""

    job_id: int
    job_name: str
    shard_index: int
    succeeded: bool
    result: Optional[ServiceResult] = None
    error: Optional[str] = None
    events: Tuple[JobEvent, ...] = ()


# --------------------------------------------------------------------------- #
# The worker process
# --------------------------------------------------------------------------- #
def _sanitized_result(result: ServiceResult) -> ServiceResult:
    """Drop detail values that cannot cross the pickle boundary."""
    safe: Dict[str, object] = {}
    for key, value in result.detail.items():
        try:
            pickle.dumps(value)
        except Exception:  # noqa: BLE001 - anything unpicklable degrades to repr
            safe[key] = repr(value)
        else:
            safe[key] = value
    return replace(result, detail=safe)


def _outcome_of(handle, job_id: int, shard_index: int) -> ShardOutcome:
    """Terminal handle -> wire outcome (events ride along for wait merging)."""
    events = tuple(handle.events())
    if handle.state is JobState.DONE:
        return ShardOutcome(
            job_id=job_id,
            job_name=handle.name,
            shard_index=shard_index,
            succeeded=True,
            result=_sanitized_result(handle.result(wait=False)),
            events=events,
        )
    status = handle.status()
    return ShardOutcome(
        job_id=job_id,
        job_name=handle.name,
        shard_index=shard_index,
        succeeded=False,
        error=status.message,
        events=events,
    )


def _shard_main(request: ShardRequest, inbox, outbox) -> None:
    """Worker-process entry point: one shard's submit/execute/report loop.

    Module-level (not a closure) so the spawn start method can import it;
    everything it touches arrives pickled through ``request`` and ``inbox``.
    """
    from repro.service.service import QRIOService

    try:
        engine = request.engine.build()
        service = QRIOService(
            list(request.fleet),
            engine,
            workers=request.workers,
            max_pending=request.max_pending,
        )
        for spec in request.warmup:
            warm = service.submit_specs([spec])
            service.process()
            del warm
    except BaseException as error:  # noqa: BLE001 - startup failure must reach the parent
        outbox.put(("fatal", request.shard_index, f"shard startup failed: {error!r}"))
        return
    outbox.put(("ready", request.shard_index))
    try:
        with service:
            while True:
                item = inbox.get()
                if item is None:
                    service.process()
                    break
                job: ShardJob = item
                try:
                    handle = service.submit_specs([job.spec])[0]
                    service.process(handle)
                    outcome = _outcome_of(handle, job.job_id, request.shard_index)
                except BaseException as error:  # noqa: BLE001 - per-job fault isolation
                    outcome = ShardOutcome(
                        job_id=job.job_id,
                        job_name=job.spec.name or f"job-{job.job_id}",
                        shard_index=request.shard_index,
                        succeeded=False,
                        error=f"shard execution error: {error!r}",
                    )
                outbox.put(("outcome", outcome))
    except BaseException as error:  # noqa: BLE001 - loop failure must reach the parent
        outbox.put(("fatal", request.shard_index, f"shard loop failed: {error!r}"))
        return
    outbox.put(("exit", request.shard_index))


# --------------------------------------------------------------------------- #
# Parent-side handles
# --------------------------------------------------------------------------- #
class ShardHandle:
    """Future-shaped view of one job dispatched to a shard process.

    A deliberately small sibling of :class:`~repro.service.JobHandle`: the
    lifecycle detail lives in the shard; the parent sees QUEUED until the
    terminal outcome (with the full event history) ships back.
    """

    def __init__(self, name: str, spec: JobSpec, shard_index: int) -> None:
        self._name = name
        self._spec = spec
        self._shard_index = shard_index
        self._done = threading.Event()
        self._outcome: Optional[ShardOutcome] = None

    @property
    def name(self) -> str:
        """Parent-assigned unique job name."""
        return self._name

    @property
    def spec(self) -> JobSpec:
        """The submitted spec (tenant rides on its requirements)."""
        return self._spec

    @property
    def shard_index(self) -> int:
        """The shard this job was routed to."""
        return self._shard_index

    @property
    def tenant_id(self) -> str:
        """The owning tenant's id."""
        return self._spec.requirements.tenant_id

    @property
    def state(self) -> JobState:
        """QUEUED until the shard reports, then DONE or FAILED."""
        outcome = self._outcome
        if outcome is None:
            return JobState.QUEUED
        return JobState.DONE if outcome.succeeded else JobState.FAILED

    def done(self) -> bool:
        """``True`` once the shard's terminal outcome arrived."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the outcome arrives; ``False`` on timeout."""
        return self._done.wait(timeout)

    def events(self) -> Tuple[JobEvent, ...]:
        """The job's shard-side event history (empty until done)."""
        outcome = self._outcome
        return outcome.events if outcome is not None else ()

    def error(self) -> Optional[str]:
        """The failure message, or ``None`` (also while still pending)."""
        outcome = self._outcome
        return outcome.error if outcome is not None else None

    def result(self, timeout: Optional[float] = None) -> ServiceResult:
        """Block for and return the job's result.

        Raises:
            ServiceError: Timed out waiting for the shard.
            JobFailedError: The job failed shard-side.
        """
        if not self._done.wait(timeout):
            raise ServiceError(f"Timed out waiting for sharded job '{self._name}'")
        outcome = self._outcome
        assert outcome is not None
        if not outcome.succeeded or outcome.result is None:
            raise JobFailedError(f"Sharded job '{self._name}' failed: {outcome.error}")
        return outcome.result

    def _resolve(self, outcome: ShardOutcome) -> None:
        self._outcome = outcome
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardHandle({self._name!r}, shard={self._shard_index}, state={self.state.value})"


# --------------------------------------------------------------------------- #
# The meta-dispatcher
# --------------------------------------------------------------------------- #
class ShardedService:
    """Partition a fleet across N worker processes behind one submit API.

    Args:
        fleet: The full device fleet; devices are name-sorted and dealt
            round-robin across shards (``sorted[s::shards]``) so every shard
            spans the fleet's size/connectivity spectrum.
        shards: Number of worker processes.
        engine: The :class:`EngineSpec` recipe every shard builds.
        workers: In-shard :class:`~repro.service.QRIOService` worker count
            (``0`` keeps shards synchronous — parallelism comes from the
            processes themselves).
        max_pending: In-shard queue bound (requires ``workers >= 1``).
        admission: Parent-side :class:`~repro.tenancy.AdmissionController`
            gating submissions before routing; fed by the waits shipped back
            in shard outcomes.  ``None`` admits everything.
        warmup: Specs each shard submits and drains before reporting ready
            (per-shard plan-cache warmup).  Names are rewritten per shard.
        vnodes: Virtual nodes per shard on the consistent-hash ring.
        start_timeout_s: Seconds to wait for every shard to report ready.

    Routing: jobs go to ``ring(tenant_id)`` unless their requirements carry
    a ``pinned:device=...`` policy, in which case they go to the shard that
    owns the pinned device — the device-affinity override.
    """

    def __init__(
        self,
        fleet: Sequence[Backend],
        *,
        shards: int = 2,
        engine: Optional[EngineSpec] = None,
        workers: int = 0,
        max_pending: Optional[int] = None,
        admission: Optional[AdmissionController] = None,
        warmup: Sequence[JobSpec] = (),
        vnodes: int = DEFAULT_VNODES,
        start_timeout_s: float = 120.0,
    ) -> None:
        if shards < 1:
            raise ServiceError("shards must be >= 1")
        if len(fleet) < shards:
            raise ServiceError(
                f"Cannot split {len(fleet)} devices across {shards} shards "
                "(every shard needs at least one device)"
            )
        if vnodes < 1:
            raise ServiceError("vnodes must be >= 1")
        engine = engine if engine is not None else EngineSpec()
        ordered = sorted(fleet, key=lambda device: device.name)
        self._shard_fleets: List[Tuple[Backend, ...]] = [
            tuple(ordered[index::shards]) for index in range(shards)
        ]
        self._device_shard: Dict[str, int] = {
            device.name: index
            for index, sub_fleet in enumerate(self._shard_fleets)
            for device in sub_fleet
        }
        self._ring: List[Tuple[int, int]] = sorted(
            (_stable_hash(f"shard-{index}/vnode-{vnode}"), index)
            for index in range(shards)
            for vnode in range(vnodes)
        )
        self._admission = admission
        self._engine_spec = engine
        self._state_lock = threading.Lock()
        self._drained = threading.Condition(self._state_lock)
        self._handles: Dict[str, ShardHandle] = {}
        self._by_job_id: Dict[int, ShardHandle] = {}
        self._names_taken: set = set()
        self._next_name = 1
        self._next_job_id = 1
        self._outstanding = 0
        self._tenant_outstanding: Dict[str, int] = {}
        self._tenants_seen: Dict[str, Tenant] = {}
        self._counters = {
            "submitted": 0,
            "jobs_succeeded": 0,
            "jobs_failed": 0,
        }
        self._shard_jobs: Dict[int, int] = {index: 0 for index in range(shards)}
        self._dead_shards: Dict[int, str] = {}
        self._closed = False

        _ensure_child_importable()
        context = multiprocessing.get_context("spawn")
        self._outbox = context.Queue()
        self._inboxes = [context.Queue() for _ in range(shards)]
        self._processes = []
        for index in range(shards):
            request = ShardRequest(
                shard_index=index,
                num_shards=shards,
                fleet=self._shard_fleets[index],
                engine=engine,
                workers=workers,
                max_pending=max_pending,
                warmup=tuple(
                    replace(spec, name=f"warmup-s{index}-{position:03d}")
                    for position, spec in enumerate(warmup)
                ),
            )
            process = context.Process(
                target=_shard_main,
                args=(request, self._inboxes[index], self._outbox),
                name=f"qrio-shard-{index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        self._await_ready(shards, start_timeout_s)
        self._collector = threading.Thread(
            target=self._collect_loop, name="qrio-shard-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------ #
    # Startup / shutdown
    # ------------------------------------------------------------------ #
    def _await_ready(self, shards: int, timeout_s: float) -> None:
        ready = 0
        while ready < shards:
            try:
                message = self._outbox.get(timeout=timeout_s)
            except Exception:
                self._terminate_all()
                raise ServiceError(
                    f"Sharded service startup timed out ({ready}/{shards} shards ready)"
                )
            if message[0] == "ready":
                ready += 1
            elif message[0] == "fatal":
                self._terminate_all()
                raise ServiceError(f"Shard {message[1]} failed to start: {message[2]}")

    def _terminate_all(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)

    def close(self) -> None:
        """Drain every shard, stop the workers and join the collector.

        Like :meth:`QRIOService.close` this is a drain, not an abort:
        already-dispatched jobs finish and their outcomes are collected
        before the processes exit.  Idempotent.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for inbox in self._inboxes:
            inbox.put(None)
        self._collector.join(timeout=60.0)
        for process in self._processes:
            process.join(timeout=10.0)
        self._terminate_all()
        # Anything still unresolved after shutdown fails loudly.
        with self._state_lock:
            for handle in self._by_job_id.values():
                if not handle.done():
                    self._resolve_locked(
                        handle,
                        ShardOutcome(
                            job_id=-1,
                            job_name=handle.name,
                            shard_index=handle.shard_index,
                            succeeded=False,
                            error="sharded service closed before the job completed",
                        ),
                    )

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The collector thread
    # ------------------------------------------------------------------ #
    def _collect_loop(self) -> None:
        exited = 0
        while exited < len(self._processes):
            message = self._outbox.get()
            kind = message[0]
            if kind == "exit":
                exited += 1
                continue
            if kind == "fatal":
                shard_index, detail = message[1], message[2]
                exited += 1
                with self._state_lock:
                    self._dead_shards[shard_index] = detail
                    for handle in list(self._by_job_id.values()):
                        if handle.shard_index == shard_index and not handle.done():
                            self._resolve_locked(
                                handle,
                                ShardOutcome(
                                    job_id=-1,
                                    job_name=handle.name,
                                    shard_index=shard_index,
                                    succeeded=False,
                                    error=f"shard died: {detail}",
                                ),
                            )
                continue
            outcome: ShardOutcome = message[1]
            with self._state_lock:
                handle = self._by_job_id.get(outcome.job_id)
                if handle is None:
                    continue
                self._resolve_locked(handle, outcome)

    def _resolve_locked(self, handle: ShardHandle, outcome: ShardOutcome) -> None:
        handle._resolve(outcome)
        tenant_id = handle.tenant_id
        count = self._tenant_outstanding.get(tenant_id, 0) - 1
        if count > 0:
            self._tenant_outstanding[tenant_id] = count
        else:
            self._tenant_outstanding.pop(tenant_id, None)
        # qrio: allow[QRIO-C001] every caller holds _state_lock (the _locked suffix contract)
        self._outstanding -= 1
        if outcome.succeeded:
            self._counters["jobs_succeeded"] += 1
        else:
            self._counters["jobs_failed"] += 1
        if self._admission is not None:
            wait = wall_wait_from_events(list(outcome.events))
            if wait is not None:
                self._admission.observe_wait(wait)
        if self._outstanding == 0:
            self._drained.notify_all()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def shard_of_device(self, device_name: str) -> int:
        """The shard owning ``device_name``.

        Raises:
            ServiceError: Unknown device.
        """
        try:
            return self._device_shard[device_name]
        except KeyError:
            raise ServiceError(f"Device '{device_name}' is not part of this sharded fleet")

    def shard_of_tenant(self, tenant_id: str) -> int:
        """Consistent-hash shard for ``tenant_id`` (stable across runs)."""
        point = _stable_hash(tenant_id)
        index = bisect_right(self._ring, (point, len(self._processes)))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def _route(self, spec: JobSpec) -> int:
        pinned = pinned_device_of(spec.requirements.policy)
        if pinned is not None:
            return self.shard_of_device(pinned)
        return self.shard_of_tenant(spec.requirements.tenant_id)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        circuit: QuantumCircuit,
        requirements=None,
        *,
        shots: int = 1024,
        name: Optional[str] = None,
        policy: Optional[object] = None,
    ) -> ShardHandle:
        """Route one job to its shard; returns the parent-side handle."""
        from repro.service.service import _apply_policy, _coerce_requirements

        spec = JobSpec(
            circuit=circuit,
            requirements=_apply_policy(_coerce_requirements(requirements), policy),
            shots=shots,
            name=name,
        )
        return self.submit_specs([spec])[0]

    def submit_batch(
        self,
        circuits: Iterable[QuantumCircuit],
        requirements=None,
        *,
        shots: int = 1024,
        policy: Optional[object] = None,
    ) -> List[ShardHandle]:
        """Route many jobs at once (admission sees them as one batch)."""
        from repro.service.service import _apply_policy, _coerce_requirements

        coerced = _apply_policy(_coerce_requirements(requirements), policy)
        specs = [JobSpec(circuit=circuit, requirements=coerced, shots=shots) for circuit in circuits]
        return self.submit_specs(specs)

    def submit_specs(self, specs: Sequence[JobSpec]) -> List[ShardHandle]:
        """Admit, name, route and dispatch pre-built specs atomically.

        Raises:
            ServiceError: Service closed, duplicate name, or a pinned device
                is unknown.
            AdmissionRejectedError: The admission controller rejected a
                tenant's slice of the batch.
        """
        dispatch: List[Tuple[int, ShardJob]] = []
        handles: List[ShardHandle] = []
        with self._state_lock:
            if self._closed:
                raise ServiceError("ShardedService is closed")
            # Route (and validate pinned devices) before any state changes.
            shard_indices = [self._route(spec) for spec in specs]
            if self._admission is not None:
                batches: Dict[str, List[int]] = {}
                tenants: Dict[str, Tenant] = {}
                for spec in specs:
                    tenant = spec.requirements.effective_tenant
                    tenants[tenant.id] = tenant
                    entry = batches.setdefault(tenant.id, [0, 0])
                    entry[0] += 1
                    entry[1] += spec.shots
                for tenant_id, (jobs, batch_shots) in batches.items():
                    # Parent-side accounting cannot split queued from running
                    # inside a shard, so all outstanding work counts as queued
                    # (the conservative reading for quota purposes).
                    self._admission.admit(
                        tenants[tenant_id],
                        queued=self._tenant_outstanding.get(tenant_id, 0),
                        inflight=0,
                        batch_jobs=jobs,
                        batch_shots=batch_shots,
                    )
            names: List[str] = []
            for spec in specs:
                if spec.name is None:
                    candidate = f"shard-{self._next_name:04d}"
                    while candidate in self._names_taken:
                        self._next_name += 1
                        candidate = f"shard-{self._next_name:04d}"
                    self._next_name += 1
                else:
                    candidate = spec.name
                    if candidate in self._names_taken:
                        raise ServiceError(
                            f"A job named '{candidate}' was already submitted to this service"
                        )
                names.append(candidate)
                self._names_taken.add(candidate)
            for spec, shard_index, job_name in zip(specs, shard_indices, names):
                named = spec if spec.name == job_name else replace(spec, name=job_name)
                job_id = self._next_job_id
                self._next_job_id += 1
                handle = ShardHandle(job_name, named, shard_index)
                self._handles[job_name] = handle
                self._by_job_id[job_id] = handle
                tenant = named.requirements.effective_tenant
                self._tenants_seen[tenant.id] = tenant
                self._tenant_outstanding[tenant.id] = (
                    self._tenant_outstanding.get(tenant.id, 0) + 1
                )
                self._outstanding += 1
                self._counters["submitted"] += 1
                self._shard_jobs[shard_index] += 1
                dispatch.append((shard_index, ShardJob(job_id=job_id, spec=named)))
                handles.append(handle)
        for shard_index, job in dispatch:
            self._inboxes[shard_index].put(job)
        return handles

    # ------------------------------------------------------------------ #
    # Introspection / draining
    # ------------------------------------------------------------------ #
    def job(self, name: str) -> ShardHandle:
        """Look up a handle by job name.

        Raises:
            ServiceError: Unknown name.
        """
        with self._state_lock:
            if name not in self._handles:
                raise ServiceError(f"Unknown sharded job '{name}'")
            return self._handles[name]

    def jobs(self) -> List[ShardHandle]:
        """Every handle, in submission order."""
        with self._state_lock:
            return list(self._by_job_id.values())

    def process(self, handle: Optional[ShardHandle] = None, timeout: Optional[float] = None) -> None:
        """Drain barrier: block until ``handle`` (or everything) completes.

        Raises:
            ServiceError: Timed out.
        """
        if handle is not None:
            if not handle.wait(timeout):
                raise ServiceError(f"Timed out waiting for sharded job '{handle.name}'")
            return
        with self._drained:
            if not self._drained.wait_for(lambda: self._outstanding == 0, timeout=timeout):
                raise ServiceError(
                    f"Timed out draining sharded service ({self._outstanding} outstanding)"
                )

    @property
    def num_shards(self) -> int:
        """Number of worker processes."""
        return len(self._processes)

    @property
    def admission(self) -> Optional[AdmissionController]:
        """The parent-side admission controller, or ``None``."""
        return self._admission

    def shard_fleets(self) -> List[Tuple[str, ...]]:
        """Device names per shard (the partition, for tests and docs)."""
        return [tuple(device.name for device in sub) for sub in self._shard_fleets]

    def stats(self) -> Dict[str, object]:
        """Dispatcher counters plus per-shard job tallies."""
        with self._state_lock:
            return {
                "shards": len(self._processes),
                "outstanding": self._outstanding,
                **dict(self._counters),
                "jobs_per_shard": dict(self._shard_jobs),
                "dead_shards": dict(self._dead_shards),
            }

    def wait_report(self) -> Dict[str, object]:
        """Merged wait/makespan statistics across every shard.

        Same vocabulary as :meth:`QRIOService.wait_report`, computed from
        the event histories shards ship back with each outcome — child
        ``time.monotonic`` stamps are system-wide on Linux, so merging the
        timelines of different processes is sound.
        """
        from repro.scenarios.metrics import summarise_waits

        with self._state_lock:
            handles = list(self._by_job_id.values())
        waits: List[float] = []
        tenant_waits: Dict[str, List[float]] = {}
        first_queued: Optional[float] = None
        last_terminal: Optional[float] = None
        finished = 0
        for handle in handles:
            events = list(handle.events())
            if not events:
                continue
            finished += 1
            queued_at = events[0].timestamp
            first_queued = queued_at if first_queued is None else min(first_queued, queued_at)
            last_terminal = (
                events[-1].timestamp
                if last_terminal is None
                else max(last_terminal, events[-1].timestamp)
            )
            wait = wall_wait_from_events(events)
            if wait is not None:
                waits.append(wait)
                tenant_waits.setdefault(handle.tenant_id, []).append(wait)
        makespan = 0.0
        if first_queued is not None and last_terminal is not None:
            makespan = max(0.0, last_terminal - first_queued)
        return {
            "jobs": len(handles),
            "finished": finished,
            "waits": summarise_waits(waits),
            "makespan_s": makespan,
            "clock": "wall",
            "tenants": {
                tenant: summarise_waits(samples)
                for tenant, samples in sorted(tenant_waits.items())
            },
        }

    def tenants_report(self) -> Dict[str, object]:
        """Per-tenant occupancy, quotas, routing and admission posture."""
        with self._state_lock:
            tenant_ids = sorted(set(self._tenants_seen) | set(self._tenant_outstanding))
            rows: Dict[str, Dict[str, object]] = {}
            for tenant_id in tenant_ids:
                tenant = self._tenants_seen.get(tenant_id) or Tenant(id=tenant_id)
                rows[tenant_id] = {
                    "weight": tenant.weight,
                    "max_pending": tenant.max_pending,
                    "max_inflight": tenant.max_inflight,
                    "shots_per_second": tenant.shots_per_second,
                    "queued": self._tenant_outstanding.get(tenant_id, 0),
                    "inflight": 0,
                    "shard": self.shard_of_tenant(tenant_id),
                    "state": (
                        self._admission.state(tenant_id).value
                        if self._admission is not None
                        else "accept"
                    ),
                }
            report: Dict[str, object] = {"tenants": rows}
            if self._admission is not None:
                report["admission"] = self._admission.report()
            return report


def pinned_device_of(policy: Optional[object]) -> Optional[str]:
    """Extract the device name from a pinned-placement policy, if any.

    Accepts the registry spec string (``"pinned:device=NAME"``) or a
    :class:`~repro.policies.PinnedDevicePolicy` instance; anything else
    (including ``None``) returns ``None``.
    """
    if policy is None:
        return None
    from repro.policies import PinnedDevicePolicy, parse_policy_spec

    if isinstance(policy, PinnedDevicePolicy):
        return policy.device
    if isinstance(policy, str):
        name, params = parse_policy_spec(policy)
        if name == "pinned" and params.get("device"):
            return str(params["device"])
    return None


def _ensure_child_importable() -> None:
    """Make sure spawned children can ``import repro``.

    The benchmark drivers (and ad-hoc scripts) often reach the package via
    ``sys.path`` manipulation rather than an installed distribution or a
    ``PYTHONPATH`` environment variable — state a spawned interpreter does
    *not* inherit.  Prepending the package's source root to ``PYTHONPATH``
    in our own environment closes that gap for every child we spawn.
    """
    import repro

    source_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if source_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([source_root] + parts)
