"""Virtual-time weighted-fair queueing across tenants.

:class:`WeightedFairQueue` replaces the service runtime's single priority
heap with per-tenant sub-queues drained in virtual-time order — the classic
start-time-fair-queueing construction, adapted to one twist: *within* a
tenant, items keep the runtime's original ``(-priority, deadline, FIFO)``
order rather than strict FIFO, so a tenant's urgent job still jumps its own
queue.  Because a later push can overtake the head of its tenant's heap,
virtual finish tags cannot be assigned at enqueue time (as textbook SFQ
does); instead each *tenant* carries a virtual-finish account and tags are
computed at dequeue time from the head's cost:

    start(t)  = max(V, finish(t))
    finish(t) = start(t) + cost(head of t) / weight(t)

``pop`` serves the tenant with the smallest candidate finish tag (ties break
on the smaller start tag — the tenant that has waited longest in virtual
time — then on tenant id, so the drain order is a deterministic function of
the push sequence), then advances the global virtual clock ``V`` to the
served start tag.  The start-tag tie-break matters: under some weight
ratios a backlogged tenant's candidate finish can tie the front-runner's on
every pop, and an id-only tie-break would starve it for as long as the
front-runner stays backlogged.  While only one tenant is active this degenerates to exactly the old
single-heap behaviour — the property that keeps every pre-tenancy runtime
test bit-identical.  When the queue runs empty, all virtual-time state
resets, so long-lived services cannot accumulate unbounded float error.

The structure is deliberately service-agnostic (items are opaque, costs are
caller-supplied), synchronization-free (the runtime already serializes
access under its own lock) and import-light (no service dependencies — the
service imports *us*).
"""

from __future__ import annotations

import heapq
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

from repro.utils.exceptions import ServiceError

T = TypeVar("T")


class _TenantQueue(Generic[T]):
    """One tenant's sub-queue: an intra-tenant priority heap + WFQ account."""

    __slots__ = ("weight", "heap", "finish")

    def __init__(self, weight: float) -> None:
        self.weight = weight
        self.heap: List[Tuple[Tuple, int, float, T]] = []
        #: Virtual time at which this tenant's last dequeue finished.
        self.finish = 0.0


class WeightedFairQueue(Generic[T]):
    """Per-tenant priority heaps drained by virtual-time fair scheduling.

    Not thread-safe — callers (the :class:`~repro.service.ServiceRuntime`
    dispatcher) hold their own lock around every operation.
    """

    def __init__(self) -> None:
        self._tenants: Dict[str, _TenantQueue[T]] = {}
        self._virtual = 0.0
        self._size = 0
        self._tie = 0  # global push counter: intra-tenant FIFO tie-break

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of queued items (across every tenant)."""
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def depths(self) -> Dict[str, int]:
        """Queued-item count per tenant id (active tenants only), sorted."""
        return {
            tenant_id: len(queue.heap)
            for tenant_id, queue in sorted(self._tenants.items())
            if queue.heap
        }

    # ------------------------------------------------------------------ #
    def push(self, tenant_id: str, weight: float, key: Tuple, item: T, *, cost: float = 1.0) -> None:
        """Enqueue ``item`` for ``tenant_id`` under intra-tenant order ``key``.

        Args:
            tenant_id: The owning tenant (its sub-queue is created on first use).
            weight: The tenant's fair share (a re-push may update it; the
                latest submission's tenant definition wins).
            key: Intra-tenant ordering tuple — the runtime passes
                ``(-priority, absolute deadline)``; a FIFO tie-break is
                appended here.
            item: Opaque payload.
            cost: Virtual service cost charged against the tenant's share
                when this item is dequeued (the runtime charges 1 per group).
        """
        if not isinstance(weight, (int, float)) or weight <= 0:
            raise ServiceError("WeightedFairQueue weights must be positive")
        if not isinstance(cost, (int, float)) or cost <= 0:
            raise ServiceError("WeightedFairQueue costs must be positive")
        queue = self._tenants.get(tenant_id)
        if queue is None:
            queue = _TenantQueue(float(weight))
            self._tenants[tenant_id] = queue
        else:
            queue.weight = float(weight)
        self._tie += 1
        heapq.heappush(queue.heap, (key, self._tie, float(cost), item))
        self._size += 1

    def pop(self) -> T:
        """Dequeue the next item in weighted-fair virtual-time order.

        Raises:
            ServiceError: The queue is empty.
        """
        chosen_id: Optional[str] = None
        chosen_start = 0.0
        chosen_finish = 0.0
        for tenant_id, queue in sorted(self._tenants.items()):
            if not queue.heap:
                continue
            cost = queue.heap[0][2]
            start = max(self._virtual, queue.finish)
            finish = start + cost / queue.weight
            # Smallest finish wins; equal finishes go to the smaller start
            # (the tenant furthest behind in virtual time), then — via the
            # sorted iteration — to the smaller tenant id.
            if chosen_id is None or (finish, start) < (chosen_finish, chosen_start):
                chosen_id, chosen_start, chosen_finish = tenant_id, start, finish
        if chosen_id is None:
            raise ServiceError("Cannot pop from an empty WeightedFairQueue")
        queue = self._tenants[chosen_id]
        _, _, _, item = heapq.heappop(queue.heap)
        queue.finish = chosen_finish
        self._virtual = chosen_start
        self._size -= 1
        if self._size == 0:
            # Idle reset: virtual time is only meaningful while work is
            # queued, and resetting bounds float growth on long-lived services.
            self._virtual = 0.0
            self._tenants.clear()
        return item
