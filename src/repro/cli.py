"""Command-line interface for the QRIO reproduction.

The CLI exposes the pieces a new user typically wants without writing Python:

* ``repro-qrio demo`` — run the end-to-end quickstart (register a fleet,
  submit a GHZ job with a fidelity requirement, print the dashboard views);
* ``repro-qrio fleet`` — generate the Table 2 fleet and print its summary;
* ``repro-qrio experiment fig6|fig7|fig8_9|fig10|tables`` — regenerate one of
  the paper's tables/figures and print the same rows the paper reports;
* ``repro-qrio extension cloud-policies|calibration-drift|scalable-matching``
  — run one of the future-work extension experiments;
* ``repro-qrio policies [--json]`` — list the registered placement policies
  (the unified ``repro.policies`` registry) with their tunable parameters;
* ``repro-qrio scenarios list|run|replay|sweep`` — the scenario subsystem:
  list the named workload scenarios (``--json`` for scripts), replay one
  against any engine × policy × workers configuration (``run``; ``--record``
  saves the generated trace as a portable JSONL file), replay a previously
  recorded trace file (``replay``), or run the policy × engine grid over
  named scenarios and print the comparison table (``sweep``);
* ``repro-qrio analyze [--json] [--write-baseline]`` — run the invariant
  analyzer (determinism/concurrency/serialization lint rules of
  :mod:`repro.analysis`) over the source tree and exit non-zero on any
  finding not recorded in the committed baseline;
* ``repro-qrio cache-stats [--json]`` — run a small warm/cold workload
  through the concurrent service and print every shared cache's hit/miss
  counters (the :meth:`~repro.service.QRIOService.cache_stats` view),
  including the ``plan`` execution-plan cache and the ``batch`` merged
  cross-job program cache;
* ``repro-qrio tenants [--json]`` — run a small multi-tenant demo through
  the admission-controlled service and print every tenant's declared
  quotas, live queue depth and admission state (the
  :meth:`~repro.service.QRIOService.tenants_report` view);
* ``repro-qrio submit <circuit.qasm>`` — schedule a QASM file against a
  generated fleet with either a fidelity or a topology requirement, routed
  through the unified job service (``--engine`` picks the execution engine —
  orchestrator, cluster framework or cloud simulator; ``--policy`` picks the
  placement policy by registry name, optionally parameterized, and runs
  under *any* engine; ``--explain`` prints the per-device score/filter
  breakdown; ``--fidelity-report`` controls the cloud engine's fidelity
  mode; ``--workers N`` runs the job through the concurrent service
  runtime; ``--tenant NAME`` submits under a named tenant identity and
  ``--shards N`` dispatches through the process-sharded
  :class:`~repro.tenancy.ShardedService`, routing the job to its shard by
  consistent tenant hash); the job's lifecycle transitions are printed as
  they are recorded.

Every command accepts ``--seed`` and the experiment commands accept
``--scale quick|default|paper`` mirroring the benchmark harness.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.backends import generate_fleet
from repro.circuits import ghz
from repro.cloud.simulation import CloudSimulationConfig
from repro.core import QRIO
from repro.experiments import (
    ExperimentConfig,
    default_config,
    paper_scale_config,
    quick_config,
    render_calibration_drift,
    render_cloud_policy_comparison,
    render_fig10,
    render_fig6,
    render_fig7,
    render_fig8_9,
    render_rows,
    render_scalable_matching,
    run_calibration_drift,
    run_cloud_policy_comparison,
    run_fig10,
    run_fig6,
    run_fig7,
    run_fig8_9,
    run_scalable_matching,
    table1_rows,
    table2_rows,
)
from repro.policies import default_registry, resolve_policy
from repro.qasm import load_qasm_file
from repro.service import CloudEngine, ClusterEngine, JobRequirements, QRIOService
from repro.utils.exceptions import ReproError
from repro.utils.rng import DEFAULT_SEED


def _config_for_scale(scale: str, seed: int) -> ExperimentConfig:
    if scale == "quick":
        base = quick_config()
    elif scale == "paper":
        base = paper_scale_config()
    else:
        base = default_config()
    return ExperimentConfig(
        fleet_limit=base.fleet_limit,
        fig6_repetitions=base.fig6_repetitions,
        fig8_repetitions=base.fig8_repetitions,
        shots=base.shots,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def _cmd_demo(args: argparse.Namespace) -> int:
    qrio = QRIO(cluster_name="cli-demo", canary_shots=256, seed=args.seed)
    qrio.register_devices(generate_fleet(limit=args.devices, seed=args.seed))
    print(qrio.render_dashboard())
    print()
    submitted = qrio.submit_fidelity_job(ghz(4), fidelity_threshold=0.9, job_name="cli-demo-job", shots=512)
    outcome = qrio.run_job(submitted.job.name)
    print(qrio.render_job("cli-demo-job"))
    print()
    print(f"Chosen device: {outcome.device} (score {outcome.score:.4f}, "
          f"{outcome.num_filtered} devices passed filtering)")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    fleet = generate_fleet(limit=args.devices, seed=args.seed)
    print(render_rows("Table 2 — Controllable Backend Parameters", table2_rows()))
    print()
    print(f"{'DEVICE':<18s} {'QUBITS':>6s} {'EDGES':>6s} {'AVG 2Q ERR':>11s} {'AVG RO ERR':>11s}")
    for backend in fleet:
        properties = backend.properties
        print(
            f"{backend.name:<18s} {properties.num_qubits:>6d} {len(properties.coupling_map):>6d} "
            f"{properties.average_two_qubit_error():>11.4f} {properties.average_readout_error():>11.4f}"
        )
    print(f"\n{len(fleet)} devices generated (seed {args.seed}).")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    config = _config_for_scale(args.scale, args.seed)
    name = args.figure
    if name == "tables":
        print(render_rows("Table 1 — Details sent to QRIO Meta Server", table1_rows(),
                          key_header="User Chosen Option", value_header="Details sent"))
        print()
        print(render_rows("Table 2 — Controllable Backend Parameters", table2_rows()))
        return 0
    fleet = config.build_fleet()
    if name == "fig6":
        print(render_fig6(run_fig6(config, fleet=fleet)))
    elif name == "fig7":
        print(render_fig7(run_fig7(config, fleet=fleet)))
    elif name == "fig8_9":
        print(render_fig8_9(run_fig8_9(config)))
    elif name == "fig10":
        print(render_fig10(run_fig10(config, fleet=fleet)))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"Unknown experiment '{name}'")
    return 0


def _cmd_extension(args: argparse.Namespace) -> int:
    config = _config_for_scale(args.scale, args.seed)
    name = args.experiment
    if name == "cloud-policies":
        result = run_cloud_policy_comparison(config, num_jobs=args.jobs, num_devices=args.devices)
        print(render_cloud_policy_comparison(result))
    elif name == "calibration-drift":
        print(render_calibration_drift(run_calibration_drift(config, num_cycles=args.cycles)))
    elif name == "scalable-matching":
        print(render_scalable_matching(run_scalable_matching(config)))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"Unknown extension experiment '{name}'")
    return 0


#: Historical ``--policy`` values that actually select an *engine*, kept for
#: backwards compatibility (see the ``--engine`` flag's deprecation note).
_ENGINE_ALIASES = ("qrio", "cluster")


def _infer_engine(policy: Optional[str]) -> str:
    """Map a legacy ``--policy`` value onto the engine it used to select."""
    if policy is None or policy == "qrio":
        return "qrio"
    if policy == "cluster":
        return "cluster"
    return "cloud"


def _service_for_submit(args: argparse.Namespace):
    """Build the (service, qrio-or-None, policy-or-None) triple for submit."""
    engine_name = args.engine if args.engine is not None else _infer_engine(args.policy)
    policy = None if args.policy in _ENGINE_ALIASES else args.policy
    if policy is not None:
        # Fail fast (and with a did-you-mean) before any fleet is generated.
        resolve_policy(policy, seed=args.seed)
    fleet = generate_fleet(limit=args.devices, seed=args.seed)
    if engine_name == "qrio":
        qrio = QRIO(cluster_name="cli-submit", canary_shots=args.shots, seed=args.seed)
        qrio.register_devices(fleet)
        return qrio.service(workers=args.workers), qrio, policy
    if engine_name == "cluster":
        engine = ClusterEngine(canary_shots=args.shots, seed=args.seed)
    else:
        engine = CloudEngine(
            policy=policy,
            config=CloudSimulationConfig(
                fidelity_report=args.fidelity_report,
                execution_shots=args.shots,
                seed=args.seed,
            ),
        )
        # The cloud engine resolves the policy itself (engine-level), so the
        # per-job requirements need not repeat it.
        policy = None
    return QRIOService(fleet, engine, workers=args.workers), None, policy


def _cmd_policies(args: argparse.Namespace) -> int:
    """List every registered placement policy with its tunable parameters."""
    if args.json:
        payload = [
            {
                "name": entry.name,
                "description": entry.description,
                "parameters": {key: value for key, value in entry.parameters},
            }
            for entry in default_registry.entries()
        ]
        print(json.dumps(payload, indent=2, sort_keys=True, default=repr))
        return 0
    print("Registered placement policies (submit --policy NAME or NAME:key=value,...):")
    for entry in default_registry.entries():
        print(f"  {entry.name:<20s} {entry.description}")
        if entry.parameters:
            print(f"  {'':<20s}   parameters: {entry.signature()}")
    print(
        "\nAny engine (--engine qrio|cluster|cloud) can run any of these; "
        "add --explain to submit to see the per-device breakdown."
    )
    return 0


# --------------------------------------------------------------------------- #
# Scenario subcommands
# --------------------------------------------------------------------------- #
def _print_scenario_report(report, as_json: bool) -> None:
    from repro.scenarios import (
        RESILIENCE_COLUMNS,
        SWEEP_COLUMNS,
        TENANT_COLUMNS,
        render_metric_table,
    )

    if as_json:
        print(report.to_json())
        return
    columns = list(SWEEP_COLUMNS)
    if report.resilience is not None:
        columns += RESILIENCE_COLUMNS
    if report.tenant_waits is not None:
        columns += TENANT_COLUMNS
    print(
        render_metric_table(
            [report.row()],
            columns,
            title=f"Scenario '{report.scenario}' ({report.wait_clock}-clock waits)",
        )
    )
    print("\nJobs per device:", ", ".join(f"{d}={n}" for d, n in report.jobs_per_device.items()))
    if report.device_utilisation:
        print(
            "Device utilisation:",
            ", ".join(f"{d}={u:.2f}" for d, u in report.device_utilisation.items()),
        )
    if report.resilience is not None:
        print(
            f"Resilience (SLO {report.resilience['slo_wait_s']:.0f}s waits): "
            f"{report.resilience['events']} events, "
            f"{report.resilience['jobs_during_outage']} jobs during outages, "
            f"{report.resilience['slo_violations']} SLO violations"
        )
    if report.tenant_waits:
        print(
            "Per-tenant waits:",
            ", ".join(
                f"{tenant} p99={summary['p99']:.2f}s"
                for tenant, summary in report.tenant_waits.items()
            ),
        )


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios import available_scenarios, scenario

    rows = [scenario(name).describe() for name in available_scenarios()]
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    print("Named workload scenarios (scenarios run NAME, scenarios sweep --scenarios a,b):")
    for row in rows:
        print(f"  {row['name']:<16s} {row['description']}")
        print(
            f"  {'':<16s}   process={row['process']}  jobs={row['num_jobs']}  "
            f"users={row['num_users']}  suite={row['suite']}"
        )
        if row["num_events"]:
            print(
                f"  {'':<16s}   faults: {row['num_events']} events "
                f"({', '.join(row['event_kinds'])})"
            )
    return 0


def _scenario_runner(args: argparse.Namespace, fleet):
    from repro.scenarios import ScenarioRunner

    return ScenarioRunner(
        fleet,
        engine=args.engine,
        policy=args.policy,
        workers=args.workers,
        seed=args.seed,
        fidelity_report=args.fidelity_report,
        canary_shots=args.canary_shots,
        slo_wait_s=args.slo_wait_s,
        tenant_aware=args.tenant_aware,
    )


def _scenario_errors(handler):
    """Print library errors as ``error: ...`` + exit 2, like ``submit`` does."""
    def wrapped(args: argparse.Namespace) -> int:
        try:
            return handler(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    return wrapped


@_scenario_errors
def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.scenarios import build_scenario_trace, record

    trace = build_scenario_trace(args.name, seed=args.seed, num_jobs=args.jobs)
    if args.no_faults:
        trace = trace.without_events()
    if args.record:
        path = record(trace, args.record)
        print(f"Trace '{trace.name}' ({len(trace)} jobs) recorded to {path}", file=sys.stderr)
    fleet = generate_fleet(limit=args.devices, seed=args.seed)
    report = _scenario_runner(args, fleet).replay(trace)
    _print_scenario_report(report, args.json)
    return 0


@_scenario_errors
def _cmd_scenarios_replay(args: argparse.Namespace) -> int:
    from repro.scenarios import load_trace

    trace = load_trace(args.trace)
    if args.no_faults:
        trace = trace.without_events()
    fleet = generate_fleet(limit=args.devices, seed=args.seed)
    report = _scenario_runner(args, fleet).replay(trace)
    _print_scenario_report(report, args.json)
    return 0


@_scenario_errors
def _cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios import NATIVE_POLICY, available_scenarios, render_sweep, run_sweep

    scenarios = args.scenarios.split(",") if args.scenarios else available_scenarios()
    engines = args.engines.split(",")
    policies: List[Optional[str]] = [
        None if name in (NATIVE_POLICY, "") else name for name in args.policies.split(",")
    ]
    fleet = generate_fleet(limit=args.devices, seed=args.seed)
    result = run_sweep(
        fleet,
        scenarios,
        engines=engines,
        policies=policies,
        workers=args.workers,
        seed=args.seed,
        num_jobs=args.jobs,
        fidelity_report=args.fidelity_report,
        canary_shots=args.canary_shots,
        slo_wait_s=args.slo_wait_s,
        tenant_aware=args.tenant_aware,
    )
    if args.json:
        print(result.to_json())
    else:
        print(render_sweep(result, title=f"Scenario sweep ({len(result.reports)} cells)"))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Run the invariant analyzer; exit 1 on non-baselined findings."""
    from pathlib import Path

    from repro.analysis import Baseline, analyze_tree

    root = Path(args.root) if args.root else None
    baseline_path = Path(args.baseline) if args.baseline else None
    report = analyze_tree(root, baseline_path=baseline_path)
    new, baselined = report["new"], report["baselined"]
    if args.write_baseline:
        Baseline.from_findings(list(new) + list(baselined)).save(Path(report["baseline_path"]))
        print(f"baseline written to {report['baseline_path']} ({len(new) + len(baselined)} findings)")
        return 0
    if args.json:
        payload = {
            "root": str(report["root"]),
            "baseline": str(report["baseline_path"]),
            "new": [finding.as_dict() for finding in new],
            "baselined": [finding.as_dict() for finding in baselined],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(str(finding))
        print(f"{len(new)} new finding(s); {len(baselined)} baselined")
    return 1 if new else 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    """Run a small warm/cold workload and print every shared cache's counters."""
    from repro.circuits import random_clifford_circuit
    from repro.core.cache import clear_all_caches

    clear_all_caches()
    fleet = [b for b in generate_fleet(limit=12, seed=args.seed) if b.num_qubits >= 20][:3]
    circuits = [
        random_clifford_circuit(14, 8, seed=args.seed + i, measure=True, name=f"cache-demo-{i}")
        for i in range(6)
    ]
    with QRIOService(fleet, seed=args.seed, workers=2, merge_batch_size=8) as service:
        # Cold pass compiles plans; warm pass replays them and lets the
        # runtime coalesce same-device submissions into merged batches.
        for round_index in range(2):
            for index, circuit in enumerate(circuits):
                service.submit(circuit, shots=256, name=f"demo-{round_index}-{index}")
            service.process()
        stats = service.cache_stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"{'cache':<20} {'hits':>8} {'misses':>8} {'evictions':>10} {'hit_rate':>9}")
    for name, row in sorted(stats.items()):
        print(
            f"{name:<20} {int(row['hits']):>8} {int(row['misses']):>8} "
            f"{int(row['evictions']):>10} {row['hit_rate']:>9.2f}"
        )
    return 0


def _cmd_tenants(args: argparse.Namespace) -> int:
    """Run a small multi-tenant demo and list per-tenant quotas + admission state."""
    from repro.tenancy import AdmissionController, Tenant
    from repro.utils.exceptions import AdmissionRejectedError

    tenants = (
        Tenant(id="alpha", weight=3.0),
        Tenant(id="bravo", weight=1.0),
        Tenant(id="carol", weight=1.0, max_pending=max(1, args.jobs // 2)),
    )
    fleet = generate_fleet(limit=args.devices, seed=args.seed)
    engine = CloudEngine(
        config=CloudSimulationConfig(
            fidelity_report="none", execution_shots=256, seed=args.seed
        )
    )
    admission = AdmissionController(slo_wait_s=args.slo_wait_s)
    service = QRIOService(fleet, engine, workers=args.workers, admission=admission)
    rejected: dict = {}
    try:
        for tenant in tenants:
            requirements = JobRequirements(tenant=tenant)
            for index in range(args.jobs):
                try:
                    service.submit(
                        ghz(3), requirements, shots=128, name=f"{tenant.id}-{index:02d}"
                    )
                except AdmissionRejectedError as rejection:
                    entry = rejected.setdefault(tenant.id, {"count": 0, "reason": ""})
                    entry["count"] += 1
                    entry["reason"] = str(rejection)
        # Snapshot *before* draining: this is the live queue-depth view.
        live = service.tenants_report()
        service.process()
        waits = service.wait_report()
        final = service.tenants_report()
    finally:
        service.close()
    if args.json:
        payload = {
            "live": live,
            "final": final,
            "rejected": rejected,
            "tenant_waits": waits["tenants"],
        }
        print(json.dumps(payload, indent=2, sort_keys=True, default=repr))
        return 0
    mode = f"{args.workers} workers" if args.workers else "synchronous"
    print(
        f"Multi-tenant demo: {len(tenants)} tenants x {args.jobs} jobs on "
        f"{len(fleet)} devices (cloud engine, {mode}, SLO {args.slo_wait_s:.0f}s)\n"
    )
    header = (
        f"{'TENANT':<10s} {'WEIGHT':>6s} {'MAX_PEND':>8s} {'MAX_INFL':>8s} "
        f"{'SHOTS/S':>8s} {'QUEUED':>6s} {'INFLIGHT':>8s} {'STATE':<7s}"
    )
    print("At peak (every accepted job submitted, nothing drained):")
    print(header)

    def quota(value) -> str:
        return "-" if value is None else f"{value:g}"

    for tenant_id, row in live["tenants"].items():
        print(
            f"{tenant_id:<10s} {row['weight']:>6g} {quota(row['max_pending']):>8s} "
            f"{quota(row['max_inflight']):>8s} {quota(row['shots_per_second']):>8s} "
            f"{row['queued']:>6d} {row['inflight']:>8d} {row['state']:<7s}"
        )
    for tenant_id, entry in sorted(rejected.items()):
        print(f"  rejected: {tenant_id} x{entry['count']} ({entry['reason']})")
    print("\nAfter draining:")
    print(f"{'TENANT':<10s} {'JOBS':>5s} {'MEAN_WAIT':>10s} {'P99_WAIT':>10s}")
    for tenant_id, row in final["tenants"].items():
        summary = waits["tenants"].get(tenant_id, {})
        jobs_done = args.jobs - rejected.get(tenant_id, {}).get("count", 0)
        print(
            f"{tenant_id:<10s} {jobs_done:>5d} {summary.get('mean', 0.0):>9.3f}s "
            f"{summary.get('p99', 0.0):>9.3f}s"
        )
    return 0


def _submit_requirements(args: argparse.Namespace, policy) -> JobRequirements:
    """Build the per-job requirements for ``submit`` (tenant included)."""
    tenant = None
    if args.tenant:
        from repro.tenancy import Tenant

        tenant = Tenant(id=args.tenant, weight=args.tenant_weight)
    if args.topology:
        edges = []
        for chunk in args.topology.split(","):
            a, b = chunk.split("-")
            edges.append((int(a), int(b)))
        return JobRequirements(
            topology_edges=tuple(edges),
            max_avg_two_qubit_error=args.max_two_qubit_error,
            policy=policy,
            tenant=tenant,
        )
    return JobRequirements(
        fidelity_threshold=args.fidelity,
        max_avg_two_qubit_error=args.max_two_qubit_error,
        policy=policy,
        tenant=tenant,
    )


def _cmd_submit_sharded(args: argparse.Namespace, circuit) -> int:
    """The ``submit --shards N`` path: dispatch through the process shards."""
    from repro.tenancy import EngineSpec, ShardedService

    engine_name = args.engine if args.engine is not None else _infer_engine(args.policy)
    policy = None if args.policy in _ENGINE_ALIASES else args.policy
    if policy is not None:
        resolve_policy(policy, seed=args.seed)
    kind = "orchestrator" if engine_name == "qrio" else engine_name
    # Mirror _service_for_submit: the cloud engine resolves the policy
    # engine-level, the other engines take it per job.
    spec = EngineSpec(
        kind=kind,
        policy=policy if kind == "cloud" else None,
        seed=args.seed,
        fidelity_report=args.fidelity_report,
        canary_shots=args.shots,
    )
    job_policy = None if kind == "cloud" else policy
    fleet = generate_fleet(limit=args.devices, seed=args.seed)
    requirements = _submit_requirements(args, job_policy)
    with ShardedService(fleet, shards=args.shards, engine=spec, workers=args.workers) as service:
        handle = service.submit(circuit, requirements, shots=args.shots, name="cli-submitted-job")
        print(
            f"Sharded dispatch ({kind} engine, {service.num_shards} shard processes over "
            f"{len(fleet)} devices): tenant '{handle.tenant_id}' routed to shard "
            f"{handle.shard_index}"
        )
        service.process(handle)
        print("Job lifecycle (as recorded inside the shard):")
        for event in handle.events():
            print(f"  {event.state.value:<9s} {event.message}")
        print()
        if args.explain:
            print("(--explain is unavailable with --shards: placement decisions stay "
                  "inside the worker process)\n")
        if handle.error() is not None:
            print("The job could not be scheduled with the given requirements.")
            return 1
        result = handle.result()
        summary = f"Device: {result.device}"
        if result.score is not None:
            summary += f"  score {result.score:.4f}"
        if result.fidelity is not None:
            summary += f"  reported fidelity {result.fidelity:.4f}"
        summary += f"  ({result.num_feasible} devices passed filtering)"
        print(summary)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    circuit = load_qasm_file(args.circuit)
    if args.shards:
        try:
            return _cmd_submit_sharded(args, circuit)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        service, qrio, policy = _service_for_submit(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    requirements = _submit_requirements(args, policy)
    handle = service.submit(circuit, requirements, shots=args.shots, name="cli-submitted-job")
    mode = f"{service.workers} workers" if service.is_concurrent else "synchronous"
    print(f"Job lifecycle ({service.engine.name} engine, {mode}):")
    # follow=True streams transitions as the runtime records them; on a
    # synchronous service it drives the job to completion first.
    for event in handle.events(follow=True):
        print(f"  {event.state.value:<9s} {event.message}")
    service.close()
    print()
    if qrio is not None:
        print(qrio.render_job("cli-submitted-job"))
    if args.explain:
        decision = handle.status().detail.get("decision")
        if decision is not None:
            print("Placement decision:")
            print(decision.explain())
            print()
        else:
            print("(no per-device breakdown: pass --policy to run a registry policy)\n")
    if handle.failed:
        print("\nThe job could not be scheduled with the given requirements.")
        return 1
    result = handle.result()
    summary = f"Device: {result.device}"
    if result.score is not None:
        summary += f"  score {result.score:.4f}"
    if result.fidelity is not None:
        summary += f"  reported fidelity {result.fidelity:.4f}"
    summary += f"  ({result.num_feasible} devices passed filtering)"
    print(summary)
    plan_stats = service.cache_stats().get("plan", {})
    print(
        f"Plan cache: {int(plan_stats.get('hits', 0))} hits / "
        f"{int(plan_stats.get('misses', 0))} misses "
        f"(hit rate {plan_stats.get('hit_rate', 0.0):.0%})"
    )
    return 0


# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-qrio",
        description="QRIO reproduction: quantum cloud resource orchestration on simulated devices.",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="base random seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the end-to-end quickstart demo")
    demo.add_argument("--devices", type=int, default=16, help="number of fleet devices to register")
    demo.set_defaults(handler=_cmd_demo)

    fleet = subparsers.add_parser("fleet", help="generate and summarise the Table 2 fleet")
    fleet.add_argument("--devices", type=int, default=None, help="truncate the fleet to this many devices")
    fleet.set_defaults(handler=_cmd_fleet)

    experiment = subparsers.add_parser("experiment", help="regenerate one of the paper's tables/figures")
    experiment.add_argument("figure", choices=["fig6", "fig7", "fig8_9", "fig10", "tables"])
    experiment.add_argument("--scale", choices=["quick", "default", "paper"], default="default")
    experiment.set_defaults(handler=_cmd_experiment)

    extension = subparsers.add_parser(
        "extension", help="run one of the future-work extension experiments"
    )
    extension.add_argument(
        "experiment", choices=["cloud-policies", "calibration-drift", "scalable-matching"]
    )
    extension.add_argument("--scale", choices=["quick", "default", "paper"], default="default")
    extension.add_argument("--jobs", type=int, default=60, help="trace length for cloud-policies")
    extension.add_argument("--devices", type=int, default=8, help="fleet size for cloud-policies")
    extension.add_argument("--cycles", type=int, default=8, help="calibration cycles for calibration-drift")
    extension.set_defaults(handler=_cmd_extension)

    policies = subparsers.add_parser(
        "policies", help="list the registered placement policies and their parameters"
    )
    policies.add_argument(
        "--json", action="store_true",
        help="emit the registry as JSON (name, description, parameter defaults) for scripts",
    )
    policies.set_defaults(handler=_cmd_policies)

    scenarios = subparsers.add_parser(
        "scenarios", help="named workload scenarios: list, run, replay a trace file, or sweep"
    )
    scenario_sub = scenarios.add_subparsers(dest="scenario_command", required=True)

    def _add_replay_options(sub, *, single_cell: bool = True, workers_default: int = 0) -> None:
        sub.add_argument("--devices", type=int, default=6, help="fleet size to schedule onto")
        if single_cell:
            sub.add_argument(
                "--engine", choices=["orchestrator", "cluster", "cloud"], default="cloud",
                help="execution engine the trace replays against (default: cloud)",
            )
            sub.add_argument(
                "--policy", default=None,
                help="placement policy by registry name (optionally parameterized); "
                     "default: the engine's native path",
            )
            sub.add_argument(
                "--no-faults", action="store_true", dest="no_faults",
                help="strip the trace's fault events and replay fault-free",
            )
        sub.add_argument("--slo-wait", type=float, default=600.0, dest="slo_wait_s",
                         help="wait-time SLO (seconds) of the resilience metrics "
                              "computed for fault-augmented traces")
        sub.add_argument("--workers", type=int, default=workers_default,
                         help="service worker-pool size (0 = synchronous)")
        sub.add_argument("--fidelity-report", choices=["none", "esp", "execute"],
                         default="esp", dest="fidelity_report",
                         help="cloud engine's per-job fidelity mode")
        sub.add_argument("--canary-shots", type=int, default=128, dest="canary_shots",
                         help="Clifford-canary shots of the orchestrator/cluster engines")
        sub.add_argument("--tenant-aware", action="store_true", dest="tenant_aware",
                         help="replay trace users as tenant identities (weighted-fair "
                              "queueing, per-tenant wait columns); TenantBurst events "
                              "declare weights/quotas")
        sub.add_argument("--json", action="store_true", help="emit the report as JSON")

    scenarios_list = scenario_sub.add_parser("list", help="list the named scenarios")
    scenarios_list.add_argument("--json", action="store_true",
                                help="emit the catalogue as JSON for scripts")
    scenarios_list.set_defaults(handler=_cmd_scenarios_list)

    scenarios_run = scenario_sub.add_parser(
        "run", help="build a named scenario's trace and replay it against an engine"
    )
    scenarios_run.add_argument("name", help="scenario name (see 'scenarios list')")
    scenarios_run.add_argument("--jobs", type=int, default=None,
                               help="override the scenario's trace length")
    scenarios_run.add_argument("--record", default=None, metavar="PATH",
                               help="also save the generated trace as a JSONL file")
    _add_replay_options(scenarios_run)
    scenarios_run.set_defaults(handler=_cmd_scenarios_run)

    scenarios_replay = scenario_sub.add_parser(
        "replay", help="replay a previously recorded JSONL trace file"
    )
    scenarios_replay.add_argument("trace", help="path to a qrio-trace JSONL file")
    _add_replay_options(scenarios_replay)
    scenarios_replay.set_defaults(handler=_cmd_scenarios_replay)

    scenarios_sweep = scenario_sub.add_parser(
        "sweep", help="replay scenarios over a policy × engine grid and compare"
    )
    scenarios_sweep.add_argument("--scenarios", default=None,
                                 help="comma-separated scenario names (default: all)")
    scenarios_sweep.add_argument("--engines", default="cloud",
                                 help="comma-separated engines (orchestrator,cluster,cloud)")
    scenarios_sweep.add_argument("--policies", default="native,least-loaded,fidelity",
                                 help="comma-separated policy names; 'native' = no policy")
    scenarios_sweep.add_argument("--jobs", type=int, default=None,
                                 help="override every scenario's trace length")
    _add_replay_options(scenarios_sweep, single_cell=False)
    scenarios_sweep.set_defaults(handler=_cmd_scenarios_sweep)

    analyze = subparsers.add_parser(
        "analyze", help="run the determinism/concurrency invariant analyzer over the source tree"
    )
    analyze.add_argument("--json", action="store_true",
                         help="emit findings (new and baselined) as JSON for scripts/CI")
    analyze.add_argument("--write-baseline", action="store_true", dest="write_baseline",
                         help="record the current findings as the accepted baseline and exit 0")
    analyze.add_argument("--root", default=None,
                         help="source tree to analyze (default: the installed repro package)")
    analyze.add_argument("--baseline", default=None,
                         help="baseline file path (default: analysis-baseline.json at the repo root)")
    analyze.set_defaults(handler=_cmd_analyze)

    tenants = subparsers.add_parser(
        "tenants",
        help="run a small multi-tenant demo and list per-tenant quotas, "
             "queue depth and admission state",
    )
    tenants.add_argument("--devices", type=int, default=6, help="fleet size to schedule onto")
    tenants.add_argument("--jobs", type=int, default=4, help="jobs submitted per tenant")
    tenants.add_argument("--workers", type=int, default=0,
                         help="service worker-pool size (0 = synchronous)")
    tenants.add_argument("--slo-wait", type=float, default=30.0, dest="slo_wait_s",
                         help="per-tenant p99 wait SLO driving the admission state machine")
    tenants.add_argument("--json", action="store_true",
                         help="emit the live/final tenant reports as JSON for scripts")
    tenants.set_defaults(handler=_cmd_tenants)

    cache_stats = subparsers.add_parser(
        "cache-stats",
        help="run a small warm/cold workload and print every shared cache's "
             "hit/miss counters (plan, batch, embedding, ideal_distribution)",
    )
    cache_stats.add_argument("--json", action="store_true",
                             help="emit the cache statistics as JSON for scripts")
    cache_stats.set_defaults(handler=_cmd_cache_stats)

    submit = subparsers.add_parser("submit", help="schedule a QASM circuit against a generated fleet")
    submit.add_argument("circuit", help="path to an OpenQASM 2.0 file")
    submit.add_argument("--fidelity", type=float, default=1.0, help="requested fidelity (default 1.0)")
    submit.add_argument("--topology", default=None,
                        help="topology request as edge list, e.g. '0-1,1-2,2-3' (overrides --fidelity)")
    submit.add_argument("--max-two-qubit-error", type=float, default=None, dest="max_two_qubit_error",
                        help="maximum tolerable average two-qubit error")
    submit.add_argument("--shots", type=int, default=512)
    submit.add_argument("--devices", type=int, default=20)
    submit.add_argument(
        "--engine",
        choices=["qrio", "cluster", "cloud"],
        default=None,
        help="execution engine: 'qrio' (full orchestrator cycle), 'cluster' (bare "
             "scheduling framework) or 'cloud' (discrete-event simulator).  Default: "
             "inferred from --policy for backward compatibility ('qrio'/'cluster' "
             "select that engine, any other policy name selects 'cloud')",
    )
    submit.add_argument(
        "--policy",
        default=None,
        help="placement policy by registry name, optionally parameterized, e.g. "
             "'fidelity' or 'fidelity:queue_weight=0.3' (see 'repro-qrio policies'); "
             "runs under whichever --engine is selected.  Passing 'qrio' or 'cluster' "
             "here is DEPRECATED — those are engines, not policies; use --engine",
    )
    submit.add_argument(
        "--explain",
        action="store_true",
        help="print the policy's per-device score/filter breakdown (why a device won)",
    )
    submit.add_argument(
        "--fidelity-report",
        choices=["none", "esp", "execute"],
        default="esp",
        dest="fidelity_report",
        help="how the cloud engine reports per-job fidelity (cloud engine only)",
    )
    submit.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker-pool size for the service runtime: 0 (default) executes synchronously "
             "on this thread, N >= 1 dispatches through the concurrent runtime (priority "
             "queue + per-device lanes) and streams lifecycle events as they happen",
    )
    submit.add_argument(
        "--tenant",
        default=None,
        help="tenant identity the job is submitted under (weighted-fair queueing and "
             "admission account per tenant); default: the implicit 'default' tenant",
    )
    submit.add_argument(
        "--tenant-weight",
        type=float,
        default=1.0,
        dest="tenant_weight",
        help="fair-share weight of --tenant (ignored without --tenant)",
    )
    submit.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition the fleet across N spawn-safe worker processes and route the "
             "job by consistent tenant hash (0 = in-process service; implies "
             "--engine qrio maps to the orchestrator engine recipe)",
    )
    submit.set_defaults(handler=_cmd_submit)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
