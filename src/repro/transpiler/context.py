"""Shared state threaded through a transpiler pass pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.backends.properties import BackendProperties
from repro.transpiler.layout import Layout
from repro.utils.rng import SeedLike, ensure_generator


@dataclass
class TranspileContext:
    """Mutable context object passed to every pass in a pipeline.

    Attributes
    ----------
    target:
        Calibration properties of the device being compiled for (``None`` for
        device-independent optimisation pipelines).
    initial_layout:
        Layout chosen by the layout-selection pass (virtual -> physical).
    final_layout:
        Layout after routing; records where each virtual qubit ended up once
        all inserted SWAPs are accounted for.
    rng:
        Random generator shared by stochastic passes (SABRE tie-breaking).
    properties:
        Free-form scratch space for passes to communicate (e.g. the routing
        pass records how many SWAPs it inserted).
    """

    target: Optional[BackendProperties] = None
    initial_layout: Optional[Layout] = None
    final_layout: Optional[Layout] = None
    rng: np.random.Generator = field(default_factory=lambda: ensure_generator(None))
    properties: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def for_target(cls, target: Optional[BackendProperties], seed: SeedLike = None) -> "TranspileContext":
        """Build a context for compiling towards ``target``."""
        return cls(target=target, rng=ensure_generator(seed))

    def require_target(self) -> BackendProperties:
        """Return the target properties, raising if the pipeline has none."""
        if self.target is None:
            raise ValueError("This pass requires a target backend")
        return self.target
