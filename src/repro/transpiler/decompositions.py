"""Gate decomposition rules and single-qubit resynthesis.

Two jobs live here:

* rewriting multi-qubit gates that are outside a device's basis into CX plus
  single-qubit gates (the paper's transpilation step "3+ Qubit Gate
  Decomposition" and part of "Translation to Basis Gates"), and
* resynthesising an arbitrary single-qubit unitary into the ``u1``/``u2``/
  ``u3`` gates of the fleet's basis (ZYZ Euler decomposition).
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.circuits.gates import gate_matrix
from repro.circuits.instruction import Instruction
from repro.utils.exceptions import TranspilerError

_ATOL = 1e-9


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Euler angles ``(theta, phi, lam)`` with ``u3(theta, phi, lam) ~ matrix``.

    The equivalence is up to global phase, which is irrelevant for circuit
    execution.  Raises :class:`TranspilerError` for non-2x2 input.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise TranspilerError("zyz_angles expects a single-qubit (2x2) matrix")
    # Normalise to unit determinant to stabilise the angle extraction.
    determinant = np.linalg.det(matrix)
    matrix = matrix / np.sqrt(determinant)
    magnitude_00 = abs(matrix[0, 0])
    magnitude_10 = abs(matrix[1, 0])
    theta = 2.0 * math.atan2(magnitude_10, magnitude_00)
    if magnitude_10 < _ATOL:
        # Diagonal gate: only the phase difference matters.
        phi = 0.0
        lam = cmath.phase(matrix[1, 1]) - cmath.phase(matrix[0, 0])
        return theta, phi, lam
    if magnitude_00 < _ATOL:
        # Anti-diagonal gate: only phi + global-phase and lam + global-phase
        # are determined; fix the global phase to zero.
        phi = cmath.phase(matrix[1, 0])
        lam = cmath.phase(-matrix[0, 1])
        return theta, phi, lam
    global_phase = cmath.phase(matrix[0, 0])
    phi = cmath.phase(matrix[1, 0]) - global_phase
    lam = cmath.phase(-matrix[0, 1]) - global_phase
    return theta, phi, lam


def resynthesise_single_qubit(instruction: Instruction, basis_gates: Sequence[str]) -> List[Instruction]:
    """Rewrite a single-qubit gate into the target basis.

    Prefers ``u1`` for diagonal gates (virtual-Z style, free on hardware) and
    ``u2`` for theta = pi/2 rotations, falling back to a full ``u3``.
    """
    basis = {gate.lower() for gate in basis_gates}
    qubit = instruction.qubits[0]
    theta, phi, lam = zyz_angles(instruction.matrix())
    if abs(theta) < _ATOL and "u1" in basis:
        angle = _wrap_angle(phi + lam)
        if abs(angle) < _ATOL:
            return []
        return [Instruction("u1", (qubit,), params=(angle,))]
    if abs(theta - math.pi / 2.0) < _ATOL and "u2" in basis:
        return [Instruction("u2", (qubit,), params=(_wrap_angle(phi), _wrap_angle(lam)))]
    if "u3" in basis:
        return [Instruction("u3", (qubit,), params=(theta, _wrap_angle(phi), _wrap_angle(lam)))]
    if "u" in basis:
        return [Instruction("u", (qubit,), params=(theta, _wrap_angle(phi), _wrap_angle(lam)))]
    raise TranspilerError(
        f"Cannot express single-qubit gate '{instruction.name}' in basis {sorted(basis)}"
    )


def _wrap_angle(angle: float) -> float:
    """Wrap an angle into ``(-pi, pi]`` for tidy output."""
    wrapped = math.fmod(angle, 2.0 * math.pi)
    if wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    elif wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    return wrapped


# --------------------------------------------------------------------------- #
# Multi-qubit decomposition rules (into CX + single-qubit gates)
# --------------------------------------------------------------------------- #
def _decompose_swap(qubits: Tuple[int, ...], params: Tuple[float, ...]) -> List[Instruction]:
    a, b = qubits
    return [Instruction("cx", (a, b)), Instruction("cx", (b, a)), Instruction("cx", (a, b))]


def _decompose_cz(qubits: Tuple[int, ...], params: Tuple[float, ...]) -> List[Instruction]:
    a, b = qubits
    return [Instruction("h", (b,)), Instruction("cx", (a, b)), Instruction("h", (b,))]


def _decompose_cy(qubits: Tuple[int, ...], params: Tuple[float, ...]) -> List[Instruction]:
    a, b = qubits
    return [Instruction("sdg", (b,)), Instruction("cx", (a, b)), Instruction("s", (b,))]


def _decompose_ch(qubits: Tuple[int, ...], params: Tuple[float, ...]) -> List[Instruction]:
    # qelib1.inc definition of the controlled-Hadamard.
    a, b = qubits
    return [
        Instruction("h", (b,)),
        Instruction("sdg", (b,)),
        Instruction("cx", (a, b)),
        Instruction("h", (b,)),
        Instruction("t", (b,)),
        Instruction("cx", (a, b)),
        Instruction("t", (b,)),
        Instruction("h", (b,)),
        Instruction("s", (b,)),
        Instruction("x", (b,)),
        Instruction("s", (a,)),
    ]


def _decompose_crz(qubits: Tuple[int, ...], params: Tuple[float, ...]) -> List[Instruction]:
    a, b = qubits
    (theta,) = params
    return [
        Instruction("rz", (b,), params=(theta / 2.0,)),
        Instruction("cx", (a, b)),
        Instruction("rz", (b,), params=(-theta / 2.0,)),
        Instruction("cx", (a, b)),
    ]


def _decompose_cu1(qubits: Tuple[int, ...], params: Tuple[float, ...]) -> List[Instruction]:
    a, b = qubits
    (lam,) = params
    return [
        Instruction("u1", (a,), params=(lam / 2.0,)),
        Instruction("cx", (a, b)),
        Instruction("u1", (b,), params=(-lam / 2.0,)),
        Instruction("cx", (a, b)),
        Instruction("u1", (b,), params=(lam / 2.0,)),
    ]


def _decompose_rzz(qubits: Tuple[int, ...], params: Tuple[float, ...]) -> List[Instruction]:
    a, b = qubits
    (theta,) = params
    return [
        Instruction("cx", (a, b)),
        Instruction("rz", (b,), params=(theta,)),
        Instruction("cx", (a, b)),
    ]


def _decompose_ccx(qubits: Tuple[int, ...], params: Tuple[float, ...]) -> List[Instruction]:
    # Standard 6-CX Toffoli decomposition (qelib1.inc).
    a, b, c = qubits
    return [
        Instruction("h", (c,)),
        Instruction("cx", (b, c)),
        Instruction("tdg", (c,)),
        Instruction("cx", (a, c)),
        Instruction("t", (c,)),
        Instruction("cx", (b, c)),
        Instruction("tdg", (c,)),
        Instruction("cx", (a, c)),
        Instruction("t", (b,)),
        Instruction("t", (c,)),
        Instruction("h", (c,)),
        Instruction("cx", (a, b)),
        Instruction("t", (a,)),
        Instruction("tdg", (b,)),
        Instruction("cx", (a, b)),
    ]


def _decompose_ccz(qubits: Tuple[int, ...], params: Tuple[float, ...]) -> List[Instruction]:
    a, b, c = qubits
    return (
        [Instruction("h", (c,))]
        + _decompose_ccx((a, b, c), ())
        + [Instruction("h", (c,))]
    )


#: Rewrite rules for gates that are not single-qubit and not ``cx``.
DECOMPOSITION_RULES: Dict[str, Callable[[Tuple[int, ...], Tuple[float, ...]], List[Instruction]]] = {
    "swap": _decompose_swap,
    "cz": _decompose_cz,
    "cy": _decompose_cy,
    "ch": _decompose_ch,
    "crz": _decompose_crz,
    "cu1": _decompose_cu1,
    "cp": _decompose_cu1,
    "rzz": _decompose_rzz,
    "ccx": _decompose_ccx,
    "ccz": _decompose_ccz,
}


def decompose_instruction(instruction: Instruction, basis_gates: Sequence[str]) -> List[Instruction]:
    """Recursively rewrite ``instruction`` into gates from ``basis_gates``.

    Single-qubit gates outside the basis are resynthesised with
    :func:`resynthesise_single_qubit`; multi-qubit gates are expanded via the
    rule table (and their products rewritten recursively).  ``cx`` must be in
    the basis — every backend in the paper's fleet provides it.
    """
    basis = {gate.lower() for gate in basis_gates}
    name = instruction.name
    if name in ("measure", "reset", "barrier"):
        return [instruction]
    if name in basis:
        return [instruction]
    if len(instruction.qubits) == 1:
        return resynthesise_single_qubit(instruction, basis_gates)
    if name == "cx":
        raise TranspilerError(
            f"Target basis {sorted(basis)} does not include 'cx'; this library "
            "requires a CX-based basis (as in the paper's device fleet)"
        )
    if name not in DECOMPOSITION_RULES:
        raise TranspilerError(f"No decomposition rule for gate '{name}'")
    expansion = DECOMPOSITION_RULES[name](instruction.qubits, instruction.params)
    result: List[Instruction] = []
    for piece in expansion:
        result.extend(decompose_instruction(piece, basis_gates))
    return result
