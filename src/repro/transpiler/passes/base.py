"""Base classes for transpiler passes and the pass manager."""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.context import TranspileContext
from repro.utils.exceptions import TranspilerError


class TranspilerPass(abc.ABC):
    """A single circuit-to-circuit transformation.

    Passes receive the shared :class:`TranspileContext` so that layout and
    routing information flows between them, mirroring the staged pipeline the
    paper describes for the Qiskit transpiler (virtual optimisation,
    decomposition, placement, routing, basis translation, physical
    optimisation).
    """

    @property
    def name(self) -> str:
        """Human-readable pass name (class name by default)."""
        return type(self).__name__

    @abc.abstractmethod
    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        """Transform ``circuit`` and return the result."""


class AnalysisPass(TranspilerPass):
    """A pass that only inspects the circuit and annotates the context."""

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        self.analyse(circuit, context)
        return circuit

    @abc.abstractmethod
    def analyse(self, circuit: QuantumCircuit, context: TranspileContext) -> None:
        """Inspect ``circuit`` and record findings in ``context``."""


class PassManager:
    """Runs an ordered list of passes over a circuit."""

    def __init__(self, passes: Optional[Sequence[TranspilerPass]] = None) -> None:
        self._passes: List[TranspilerPass] = list(passes or [])

    def append(self, transpiler_pass: TranspilerPass) -> "PassManager":
        """Add a pass to the end of the pipeline."""
        if not isinstance(transpiler_pass, TranspilerPass):
            raise TranspilerError("PassManager only accepts TranspilerPass instances")
        self._passes.append(transpiler_pass)
        return self

    @property
    def passes(self) -> List[TranspilerPass]:
        """The ordered list of passes."""
        return list(self._passes)

    def run(self, circuit: QuantumCircuit, context: Optional[TranspileContext] = None) -> QuantumCircuit:
        """Run every pass in order and return the final circuit."""
        context = context or TranspileContext()
        current = circuit
        for transpiler_pass in self._passes:
            current = transpiler_pass.run(current, context)
            context.properties.setdefault("pass_trace", []).append(  # type: ignore[union-attr]
                {"pass": transpiler_pass.name, "size": current.size(), "depth": current.depth()}
            )
        return current
