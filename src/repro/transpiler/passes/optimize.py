"""Circuit optimisation passes: gate cancellation and 1-qubit resynthesis."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.transpiler.context import TranspileContext
from repro.transpiler.decompositions import resynthesise_single_qubit, zyz_angles
from repro.transpiler.passes.base import TranspilerPass

#: Pairs of gates that cancel when adjacent on identical operands.
_SELF_INVERSE = {"x", "y", "z", "h", "cx", "cz", "cy", "swap", "ccx", "ccz", "id"}
_INVERSE_PAIRS = {("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t")}


class CancelAdjacentInverses(TranspilerPass):
    """Remove adjacent gate pairs that multiply to the identity.

    Runs repeatedly until a fixed point: cancelling one pair can expose
    another (e.g. ``h x x h``).  This is the core of the paper's "Virtual
    Circuit Optimization" and "Physical Circuit Optimization" stages.
    """

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        instructions = list(circuit)
        changed = True
        while changed:
            instructions, changed = self._single_sweep(instructions)
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        for instruction in instructions:
            result.append(instruction)
        return result

    @staticmethod
    def _cancels(first: Instruction, second: Instruction) -> bool:
        if first.qubits != second.qubits:
            return False
        if first.name in _SELF_INVERSE and first.name == second.name:
            return True
        if (first.name, second.name) in _INVERSE_PAIRS:
            return True
        if first.name == second.name and first.name in ("rz", "rx", "ry", "u1", "p", "crz", "cu1", "cp", "rzz"):
            return abs(first.params[0] + second.params[0]) < 1e-12
        return False

    def _single_sweep(self, instructions: List[Instruction]):
        result: List[Instruction] = []
        changed = False
        index = 0
        while index < len(instructions):
            current = instructions[index]
            if current.is_directive:
                result.append(current)
                index += 1
                continue
            partner_index = self._find_adjacent_partner(instructions, index)
            if partner_index is not None and self._cancels(current, instructions[partner_index]):
                del instructions[partner_index]
                del instructions[index]
                changed = True
                continue
            result.append(current)
            index += 1
        return (instructions if changed else result), changed

    @staticmethod
    def _find_adjacent_partner(instructions: List[Instruction], index: int) -> Optional[int]:
        """Find the next instruction touching the same qubits with nothing in between."""
        current = instructions[index]
        blocked = set(current.qubits)
        for later in range(index + 1, len(instructions)):
            candidate = instructions[later]
            if candidate.is_directive and candidate.name == "barrier":
                if blocked.intersection(candidate.qubits):
                    return None
                continue
            overlap = blocked.intersection(candidate.qubits)
            if overlap:
                if set(candidate.qubits) == blocked:
                    return later
                return None
        return None


class Optimize1QubitGates(TranspilerPass):
    """Merge runs of adjacent single-qubit gates into a single ``u``-gate.

    Consecutive one-qubit gates on the same wire are multiplied together and
    resynthesised via ZYZ decomposition; runs that multiply to (a phase times)
    the identity disappear entirely.
    """

    def __init__(self, basis_gates: Sequence[str] = ("u1", "u2", "u3")) -> None:
        self._basis_gates = tuple(basis_gates)

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        basis = self._basis_gates
        if context.target is not None:
            target_basis = tuple(g for g in context.target.basis_gates if g not in ("cx",))
            if target_basis:
                basis = target_basis
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        pending: Dict[int, List[Instruction]] = {}

        def flush(qubit: int) -> None:
            run = pending.pop(qubit, [])
            if not run:
                return
            if len(run) == 1 and run[0].name in basis:
                result.append(run[0])
                return
            matrix = np.eye(2, dtype=complex)
            for gate in run:
                matrix = gate.matrix() @ matrix
            if _is_identity(matrix):
                return
            merged = Instruction("u3", (qubit,), params=zyz_angles(matrix))
            for piece in resynthesise_single_qubit(merged, self._basis_gates_for(basis)):
                result.append(piece)

        def flush_all() -> None:
            for qubit in list(pending):
                flush(qubit)

        for instruction in circuit:
            if not instruction.is_directive and len(instruction.qubits) == 1:
                pending.setdefault(instruction.qubits[0], []).append(instruction)
                continue
            for qubit in instruction.qubits:
                flush(qubit)
            if instruction.name == "barrier":
                flush_all()
            result.append(instruction)
        flush_all()
        return result

    @staticmethod
    def _basis_gates_for(basis: Sequence[str]) -> Sequence[str]:
        allowed = {"u1", "u2", "u3", "u"}
        filtered = [gate for gate in basis if gate in allowed]
        return filtered or ("u3",)


def _is_identity(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """``True`` when ``matrix`` is the identity up to global phase."""
    phase = matrix[0, 0]
    if abs(abs(phase) - 1.0) > atol:
        return False
    return bool(np.allclose(matrix, phase * np.eye(2), atol=atol))


class RemoveBarriers(TranspilerPass):
    """Strip barrier directives (used before executing on the simulators)."""

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        for instruction in circuit:
            if instruction.name == "barrier":
                continue
            result.append(instruction)
        return result
