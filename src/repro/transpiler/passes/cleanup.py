"""Additional physical-optimisation passes: rotation merging and pre-measure cleanup.

These passes complement :mod:`repro.transpiler.passes.optimize`: where
``CancelAdjacentInverses`` only removes pairs that multiply to the identity,
``MergeAdjacentRotations`` folds runs of same-axis rotations into a single
gate, and ``RemoveDiagonalGatesBeforeMeasure`` drops phase-only gates that
cannot influence a computational-basis measurement.  Both reduce the gate
count the noise channel charges without changing measured distributions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.transpiler.context import TranspileContext
from repro.transpiler.passes.base import TranspilerPass

#: Rotation gates that merge by summing their single angle parameter.
_MERGEABLE_ROTATIONS = {"rx", "ry", "rz", "u1", "p"}
#: Angle below which a merged rotation is dropped entirely.
_ANGLE_ATOL = 1e-10
#: Gates that are diagonal in the computational basis (phase-only).
_DIAGONAL_GATES = {"z", "s", "sdg", "t", "tdg", "rz", "u1", "p", "id"}


def _wrap_angle(angle: float) -> float:
    wrapped = math.fmod(angle, 4.0 * math.pi)
    return wrapped


class MergeAdjacentRotations(TranspilerPass):
    """Fold consecutive same-axis rotations on the same qubit into one gate.

    Runs until a fixed point so that chains like ``rz(a) rz(b) rz(-a-b)``
    collapse completely.  Rotations whose merged angle is (numerically) zero
    are removed.
    """

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        instructions = list(circuit)
        changed = True
        while changed:
            instructions, changed = self._single_sweep(instructions)
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        for instruction in instructions:
            result.append(instruction)
        return result

    def _single_sweep(self, instructions: List[Instruction]):
        result: List[Instruction] = []
        changed = False
        #: Index in ``result`` of the last pending rotation per (gate, qubit).
        pending: Dict[int, int] = {}
        for instruction in instructions:
            if instruction.name in _MERGEABLE_ROTATIONS and len(instruction.qubits) == 1:
                qubit = instruction.qubits[0]
                partner_index = pending.get(qubit)
                partner = result[partner_index] if partner_index is not None else None
                if partner is not None and partner.name == instruction.name:
                    merged_angle = _wrap_angle(partner.params[0] + instruction.params[0])
                    changed = True
                    if abs(merged_angle) < _ANGLE_ATOL:
                        result.pop(partner_index)
                        pending = {q: (i if i < partner_index else i - 1) for q, i in pending.items() if i != partner_index}
                    else:
                        result[partner_index] = Instruction(
                            instruction.name, instruction.qubits, params=(merged_angle,)
                        )
                    continue
                result.append(instruction)
                pending[qubit] = len(result) - 1
                continue
            # Any other operation touching a qubit (gate, measure, reset or
            # barrier) invalidates that qubit's pending rotation: merging
            # across it would not be a legal rewrite in general.
            for qubit in instruction.qubits:
                pending.pop(qubit, None)
            if instruction.name == "barrier" and not instruction.qubits:
                pending.clear()
            result.append(instruction)
        return result, changed


class RemoveDiagonalGatesBeforeMeasure(TranspilerPass):
    """Drop phase-only gates whose qubit is measured before any further gate.

    A gate diagonal in the computational basis commutes with the measurement
    projector, so removing it cannot change the counts — but it does remove
    one noise-channel application, which is why real transpilers perform the
    same cleanup.
    """

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        instructions = list(circuit)
        keep = [True] * len(instructions)
        #: For each qubit, what the *next* non-directive operation is.
        for index, instruction in enumerate(instructions):
            if instruction.name not in _DIAGONAL_GATES or len(instruction.qubits) != 1:
                continue
            qubit = instruction.qubits[0]
            next_use = self._next_operation(instructions, index + 1, qubit)
            if next_use is not None and next_use.is_measurement:
                keep[index] = False
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        for index, instruction in enumerate(instructions):
            if keep[index]:
                result.append(instruction)
        return result

    @staticmethod
    def _next_operation(instructions: List[Instruction], start: int, qubit: int) -> Optional[Instruction]:
        for instruction in instructions[start:]:
            if instruction.name == "barrier":
                continue
            if qubit in instruction.qubits:
                return instruction
        return None
