"""Routing passes: making every two-qubit gate respect the coupling map.

The paper's transpilation pipeline lists "Placement on Physical Qubits" and
"Routing on Restricted Topology" as distinct stages; here the routing pass
also materialises the placement (it rewrites the virtual circuit onto the
device's physical qubits), inserting SWAP gates whenever a two-qubit gate
acts on uncoupled qubits.

Two routers are provided:

* :class:`BasicRoutingPass` — processes the program in order and walks each
  blocked gate's operands together along the cheapest shortest path;
* :class:`SabreRoutingPass` — a front-layer/heuristic router in the spirit of
  SABRE [Li, Ding, Xie 2019], which the paper cites as the state-of-the-art
  initial compilation used underneath Mapomatic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.backends.properties import BackendProperties
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.transpiler.context import TranspileContext
from repro.transpiler.layout import Layout
from repro.transpiler.passes.base import TranspilerPass
from repro.utils.exceptions import TranspilerError


def _distance_matrix(target: BackendProperties, context: TranspileContext) -> Dict[int, Dict[int, int]]:
    """All-pairs shortest-path distances over the coupling graph (cached)."""
    cache_key = f"distance_matrix::{target.name}"
    cached = context.properties.get(cache_key)
    if cached is not None:
        return cached
    graph = target.graph()
    distances = {source: dict(lengths) for source, lengths in nx.all_pairs_shortest_path_length(graph)}
    context.properties[cache_key] = distances
    return distances


def _cheapest_path(target: BackendProperties, start: int, goal: int) -> List[int]:
    """Shortest path from ``start`` to ``goal`` weighted by edge error."""
    graph = target.graph()
    for a, b in graph.edges():
        graph[a][b]["weight"] = 0.001 + target.edge_error(a, b)
    try:
        return nx.shortest_path(graph, start, goal, weight="weight")
    except nx.NetworkXNoPath as exc:
        raise TranspilerError(
            f"Physical qubits {start} and {goal} are disconnected on '{target.name}'"
        ) from exc


def _split_final_measurements(circuit: QuantumCircuit) -> Tuple[List[Instruction], List[Instruction]]:
    """Separate a circuit's final measurements from its unitary body.

    Routing may keep inserting SWAPs after a qubit has been measured (to move
    *other* virtual qubits through it), which would turn an end-of-circuit
    measurement into a mid-circuit one.  Because measurement outcomes are
    latched into classical bits, it is safe to defer all *final* measurements
    until routing has finished and emit them at each virtual qubit's final
    physical location.  True mid-circuit measurement (gates on a qubit after
    it was measured) is rejected.
    """
    measured: Set[int] = set()
    body: List[Instruction] = []
    measurements: List[Instruction] = []
    for instruction in circuit:
        if instruction.is_measurement:
            measured.add(instruction.qubits[0])
            measurements.append(instruction)
            continue
        if instruction.name == "barrier":
            body.append(instruction)
            continue
        overlap = measured.intersection(instruction.qubits)
        if overlap:
            raise TranspilerError(
                "Mid-circuit measurement is not supported by the routing passes "
                f"(qubit(s) {sorted(overlap)} are used after being measured)"
            )
        body.append(instruction)
    return body, measurements


class _RoutingState:
    """Bookkeeping shared by both routers."""

    def __init__(self, circuit: QuantumCircuit, target: BackendProperties, layout: Layout) -> None:
        if circuit.num_qubits > target.num_qubits:
            raise TranspilerError(
                f"Circuit '{circuit.name}' needs {circuit.num_qubits} qubits but device "
                f"'{target.name}' has {target.num_qubits}"
            )
        self.target = target
        self.layout = layout.copy()
        self.output = QuantumCircuit(target.num_qubits, circuit.num_clbits, circuit.name)
        self.output.metadata = dict(circuit.metadata)
        self.coupled: Set[Tuple[int, int]] = {tuple(sorted(edge)) for edge in target.coupling_map}
        self.swaps_inserted = 0

    def physical(self, virtual: int) -> int:
        return self.layout.physical(virtual)

    def adjacent(self, virtual_a: int, virtual_b: int) -> bool:
        edge = tuple(sorted((self.physical(virtual_a), self.physical(virtual_b))))
        return edge in self.coupled

    def emit(self, instruction: Instruction) -> None:
        """Emit ``instruction`` translated onto physical qubits."""
        physical_qubits = tuple(self.physical(q) for q in instruction.qubits)
        self.output.append(
            Instruction(instruction.name, physical_qubits, instruction.clbits, instruction.params)
        )

    def emit_swap(self, physical_a: int, physical_b: int) -> None:
        """Insert a SWAP on two *physical* qubits and update the layout."""
        self.output.append(Instruction("swap", (physical_a, physical_b)))
        self.layout.swap_physical(physical_a, physical_b)
        self.swaps_inserted += 1


class BasicRoutingPass(TranspilerPass):
    """In-order router that resolves each blocked gate with path SWAPs."""

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        target = context.require_target()
        layout = context.initial_layout or Layout.trivial(circuit.num_qubits)
        state = _RoutingState(circuit, target, layout)
        body, measurements = _split_final_measurements(circuit)
        for instruction in body:
            if instruction.is_two_qubit_gate and not state.adjacent(*instruction.qubits):
                self._bring_together(state, instruction.qubits[0], instruction.qubits[1])
            state.emit(instruction)
        for measurement in measurements:
            state.emit(measurement)
        context.initial_layout = layout
        context.final_layout = state.layout
        context.properties["swaps_inserted"] = state.swaps_inserted
        return state.output

    @staticmethod
    def _bring_together(state: _RoutingState, virtual_a: int, virtual_b: int) -> None:
        start = state.physical(virtual_a)
        goal = state.physical(virtual_b)
        path = _cheapest_path(state.target, start, goal)
        # Swap virtual_a's qubit along the path until it neighbours the goal.
        for step in range(len(path) - 2):
            state.emit_swap(path[step], path[step + 1])


class SabreRoutingPass(TranspilerPass):
    """Front-layer heuristic router (SABRE-style).

    The circuit is viewed as a dependency DAG; gates whose predecessors have
    all been emitted form the *front layer*.  Whenever nothing in the front
    layer is executable, the router scores every SWAP adjacent to a front
    gate by the change in summed physical distance of the front layer (with a
    small look-ahead bonus for the following layer) and applies the best one.
    """

    #: Weight of the look-ahead (extended set) term in the swap score.
    LOOKAHEAD_WEIGHT = 0.5
    #: Size of the extended set considered by the look-ahead term.
    EXTENDED_SET_SIZE = 20

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        target = context.require_target()
        layout = context.initial_layout or Layout.trivial(circuit.num_qubits)
        state = _RoutingState(circuit, target, layout)
        distances = _distance_matrix(target, context)

        instructions, deferred_measurements = _split_final_measurements(circuit)
        successors: Dict[int, List[int]] = {i: [] for i in range(len(instructions))}
        in_degree: Dict[int, int] = {i: 0 for i in range(len(instructions))}
        last_on_wire: Dict[Tuple[str, int], int] = {}
        for index, instruction in enumerate(instructions):
            wires = [("q", q) for q in instruction.qubits] + [("c", c) for c in instruction.clbits]
            for wire in wires:
                previous = last_on_wire.get(wire)
                if previous is not None:
                    successors[previous].append(index)
                    in_degree[index] += 1
                last_on_wire[wire] = index

        front: List[int] = [i for i, degree in in_degree.items() if degree == 0]
        emitted: Set[int] = set()
        stall_counter = 0

        while front:
            executable = [
                index
                for index in front
                if not instructions[index].is_two_qubit_gate
                or state.adjacent(*instructions[index].qubits)
            ]
            if executable:
                stall_counter = 0
                for index in sorted(executable):
                    state.emit(instructions[index])
                    emitted.add(index)
                    front.remove(index)
                    for successor in successors[index]:
                        in_degree[successor] -= 1
                        if in_degree[successor] == 0:
                            front.append(successor)
                continue

            blocked = [instructions[index] for index in front if instructions[index].is_two_qubit_gate]
            if not blocked:
                raise TranspilerError("Routing dead-lock: front layer has no executable gate")
            stall_counter += 1
            if stall_counter > 2 * state.target.num_qubits + 10:
                # Safety valve: resolve the first blocked gate directly.
                gate = blocked[0]
                path = _cheapest_path(state.target, state.physical(gate.qubits[0]), state.physical(gate.qubits[1]))
                for step in range(len(path) - 2):
                    state.emit_swap(path[step], path[step + 1])
                stall_counter = 0
                continue
            extended = self._extended_set(instructions, successors, in_degree, front)
            best_swap = self._choose_swap(state, blocked, extended, distances)
            state.emit_swap(*best_swap)

        for measurement in deferred_measurements:
            state.emit(measurement)
        context.initial_layout = layout
        context.final_layout = state.layout
        context.properties["swaps_inserted"] = state.swaps_inserted
        return state.output

    # ------------------------------------------------------------------ #
    def _extended_set(
        self,
        instructions: List[Instruction],
        successors: Dict[int, List[int]],
        in_degree: Dict[int, int],
        front: List[int],
    ) -> List[Instruction]:
        """Two-qubit gates just behind the front layer (look-ahead window)."""
        extended: List[Instruction] = []
        seen: Set[int] = set()
        queue = list(front)
        while queue and len(extended) < self.EXTENDED_SET_SIZE:
            index = queue.pop(0)
            for successor in successors[index]:
                if successor in seen:
                    continue
                seen.add(successor)
                queue.append(successor)
                if instructions[successor].is_two_qubit_gate:
                    extended.append(instructions[successor])
        return extended

    def _choose_swap(
        self,
        state: _RoutingState,
        blocked: List[Instruction],
        extended: List[Instruction],
        distances: Dict[int, Dict[int, int]],
    ) -> Tuple[int, int]:
        involved_physicals = {
            state.physical(q) for gate in blocked for q in gate.qubits
        }
        candidates = [
            edge
            for edge in state.coupled
            if edge[0] in involved_physicals or edge[1] in involved_physicals
        ]
        if not candidates:
            raise TranspilerError("No candidate SWAPs adjacent to the front layer")

        def score(edge: Tuple[int, int]) -> Tuple[float, float]:
            trial = state.layout.copy()
            trial.swap_physical(edge[0], edge[1])
            front_cost = 0.0
            for gate in blocked:
                a = trial.physical(gate.qubits[0])
                b = trial.physical(gate.qubits[1])
                front_cost += distances[a][b]
            lookahead_cost = 0.0
            for gate in extended:
                a = trial.physical(gate.qubits[0])
                b = trial.physical(gate.qubits[1])
                lookahead_cost += distances[a][b]
            if extended:
                lookahead_cost /= len(extended)
            error_bias = state.target.edge_error(edge[0], edge[1])
            return (front_cost + self.LOOKAHEAD_WEIGHT * lookahead_cost, error_bias)

        return min(candidates, key=score)


class CheckMapPass(TranspilerPass):
    """Verify that every two-qubit gate acts on a coupled physical pair."""

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        target = context.require_target()
        coupled = {tuple(sorted(edge)) for edge in target.coupling_map}
        for instruction in circuit:
            if not instruction.is_two_qubit_gate:
                continue
            edge = tuple(sorted(instruction.qubits))
            if edge not in coupled:
                raise TranspilerError(
                    f"Two-qubit gate '{instruction.name}' on {edge} violates the "
                    f"coupling map of '{target.name}'"
                )
        return circuit


class GatesInBasisPass(TranspilerPass):
    """Verify that every gate belongs to the target's basis gate set."""

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        target = context.require_target()
        basis = set(target.basis_gates) | {"measure", "reset", "barrier"}
        for instruction in circuit:
            if instruction.name not in basis:
                raise TranspilerError(
                    f"Gate '{instruction.name}' is not in the basis {sorted(basis)} of '{target.name}'"
                )
        return circuit
