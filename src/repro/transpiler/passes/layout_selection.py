"""Layout-selection passes: placing virtual qubits onto physical qubits.

Three strategies are provided, mirroring the usual progression in production
transpilers:

* :class:`TrivialLayoutPass` — identity placement (useful for tests and for
  circuits already expressed on physical qubits);
* :class:`VF2PerfectLayoutPass` — find a placement under which every
  two-qubit gate is already on a coupled pair (subgraph isomorphism), scored
  by calibration errors;
* :class:`DenseLayoutPass` — error-aware greedy placement used as a fallback
  when no perfect placement exists.

The selected layout is stored in ``context.initial_layout``; the routing pass
then materialises it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.context import TranspileContext
from repro.transpiler.layout import Layout
from repro.transpiler.passes.base import TranspilerPass
from repro.utils.exceptions import LayoutError, TranspilerError


class SetLayoutPass(TranspilerPass):
    """Install a caller-provided layout without any search."""

    def __init__(self, layout: Layout) -> None:
        self._layout = layout

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        target = context.require_target()
        for physical in self._layout.physical_qubits():
            if physical >= target.num_qubits:
                raise LayoutError(
                    f"Layout places a qubit on physical index {physical}, but the "
                    f"target only has {target.num_qubits} qubits"
                )
        context.initial_layout = self._layout.copy()
        return circuit


class TrivialLayoutPass(TranspilerPass):
    """Map virtual qubit ``i`` to physical qubit ``i``."""

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        target = context.require_target()
        if circuit.num_qubits > target.num_qubits:
            raise LayoutError(
                f"Circuit needs {circuit.num_qubits} qubits but target "
                f"'{target.name}' has only {target.num_qubits}"
            )
        context.initial_layout = Layout.trivial(circuit.num_qubits)
        return circuit


def _interaction_graph(circuit: QuantumCircuit) -> nx.Graph:
    """Weighted interaction graph of the circuit's two-qubit gates."""
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for (a, b), weight in circuit.interaction_pairs().items():
        graph.add_edge(a, b, weight=weight)
    return graph


class VF2PerfectLayoutPass(TranspilerPass):
    """Search for a placement where every interaction sits on a coupled pair.

    Uses VF2 subgraph-monomorphism via networkx.  Among all embeddings found
    (capped for tractability) the one with the lowest summed two-qubit error
    over the mapped interactions is chosen.  When no embedding exists the
    pass leaves the context untouched so a fallback layout pass can run.
    """

    def __init__(self, max_embeddings: int = 16) -> None:
        self._max_embeddings = max_embeddings

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        target = context.require_target()
        if circuit.num_qubits > target.num_qubits:
            raise LayoutError(
                f"Circuit needs {circuit.num_qubits} qubits but target "
                f"'{target.name}' has only {target.num_qubits}"
            )
        if context.initial_layout is not None:
            return circuit
        interaction = _interaction_graph(circuit)
        active = [node for node in interaction.nodes if interaction.degree(node) > 0]
        if not active:
            context.initial_layout = Layout.trivial(circuit.num_qubits)
            return circuit
        pattern = interaction.subgraph(active)
        device_graph = target.graph()
        pattern_degrees = sorted((d for _, d in pattern.degree()), reverse=True)
        device_degrees = sorted((d for _, d in device_graph.degree()), reverse=True)
        degree_feasible = len(device_degrees) >= len(pattern_degrees) and all(
            pd <= device_degrees[i] for i, pd in enumerate(pattern_degrees)
        )
        if not degree_feasible:
            # No perfect placement can exist; let the dense-layout fallback run.
            return circuit
        matcher = nx.algorithms.isomorphism.GraphMatcher(device_graph, pattern)
        best_layout: Optional[Dict[int, int]] = None
        best_cost = float("inf")
        for count, mapping in enumerate(matcher.subgraph_monomorphisms_iter()):
            if count >= self._max_embeddings:
                break
            placement = {virtual: physical for physical, virtual in mapping.items()}
            cost = _placement_error_cost(circuit, placement, target)
            if cost < best_cost:
                best_cost = cost
                best_layout = placement
        if best_layout is None:
            return circuit
        layout = _complete_layout(best_layout, circuit.num_qubits, target.num_qubits)
        context.initial_layout = layout
        context.properties["perfect_layout"] = True
        context.properties["layout_error_cost"] = best_cost
        return circuit


class DenseLayoutPass(TranspilerPass):
    """Error-aware greedy placement onto a connected low-error region.

    Starting from each candidate seed qubit, grow a connected region one
    qubit at a time, always absorbing the neighbour with the cheapest
    connection to the region; keep the region whose internal edges have the
    lowest mean two-qubit error.  Virtual qubits are then assigned to the
    region in descending order of interaction degree.
    """

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        target = context.require_target()
        if context.initial_layout is not None:
            return circuit
        if circuit.num_qubits > target.num_qubits:
            raise LayoutError(
                f"Circuit needs {circuit.num_qubits} qubits but target "
                f"'{target.name}' has only {target.num_qubits}"
            )
        region = self._best_region(target, circuit.num_qubits)
        interaction = _interaction_graph(circuit)
        virtual_order = sorted(
            range(circuit.num_qubits), key=lambda q: -interaction.degree(q, weight="weight")
        )
        physical_order = self._order_region(target, region)
        mapping = {virtual: physical_order[index] for index, virtual in enumerate(virtual_order)}
        context.initial_layout = Layout(mapping)
        context.properties["perfect_layout"] = False
        return circuit

    # ------------------------------------------------------------------ #
    def _best_region(self, target, size: int) -> List[int]:
        graph = target.graph()
        best_region: Optional[List[int]] = None
        best_cost = float("inf")
        for seed in range(target.num_qubits):
            region = [seed]
            frontier_cost: Dict[int, float] = {}
            while len(region) < size:
                frontier_cost.clear()
                for member in region:
                    for neighbour in graph.neighbors(member):
                        if neighbour in region:
                            continue
                        cost = target.edge_error(member, neighbour)
                        frontier_cost[neighbour] = min(cost, frontier_cost.get(neighbour, float("inf")))
                if not frontier_cost:
                    break
                best_neighbour = min(frontier_cost, key=frontier_cost.get)
                region.append(best_neighbour)
            if len(region) < size:
                continue
            cost = self._region_cost(target, region)
            if cost < best_cost:
                best_cost = cost
                best_region = region
        if best_region is None:
            raise LayoutError(
                f"Target '{target.name}' has no connected region of {size} qubits"
            )
        return best_region

    @staticmethod
    def _region_cost(target, region: Sequence[int]) -> float:
        members = set(region)
        total = 0.0
        count = 0
        for a, b in target.coupling_map:
            if a in members and b in members:
                total += target.two_qubit_error.get((a, b), 0.0)
                count += 1
        if count == 0:
            return float("inf")
        return total / count

    @staticmethod
    def _order_region(target, region: Sequence[int]) -> List[int]:
        """Order region qubits by connectivity within the region (densest first)."""
        members = set(region)
        graph = target.graph()
        return sorted(
            region,
            key=lambda q: -sum(1 for n in graph.neighbors(q) if n in members),
        )


def _placement_error_cost(circuit: QuantumCircuit, placement: Dict[int, int], target) -> float:
    """Summed two-qubit error over the circuit's interactions under ``placement``."""
    cost = 0.0
    for (a, b), multiplicity in circuit.interaction_pairs().items():
        if a not in placement or b not in placement:
            continue
        cost += multiplicity * target.edge_error(placement[a], placement[b])
    return cost


def _complete_layout(partial: Dict[int, int], num_virtual: int, num_physical: int) -> Layout:
    """Extend a partial placement to cover every virtual qubit."""
    used_physical = set(partial.values())
    free_physical = [p for p in range(num_physical) if p not in used_physical]
    mapping = dict(partial)
    for virtual in range(num_virtual):
        if virtual in mapping:
            continue
        if not free_physical:
            raise LayoutError("Not enough physical qubits to complete the layout")
        mapping[virtual] = free_physical.pop(0)
    return Layout(mapping)
