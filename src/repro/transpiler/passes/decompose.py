"""Decomposition and basis-translation passes."""

from __future__ import annotations

from typing import Sequence

from repro.backends.properties import DEFAULT_BASIS_GATES
from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.context import TranspileContext
from repro.transpiler.decompositions import DECOMPOSITION_RULES, decompose_instruction
from repro.transpiler.passes.base import TranspilerPass


class DecomposeMultiQubitGates(TranspilerPass):
    """Expand gates acting on three or more qubits into 1- and 2-qubit gates.

    This is the "3+ Qubit Gate Decomposition" stage of the paper's transpiler
    description; it must run before placement/routing because coupling maps
    only describe pairwise connectivity.
    """

    #: Two-qubit gates the router understands natively; everything else with
    #: arity >= 2 that has a rule is expanded here as well when requested.
    def __init__(self, expand_two_qubit: bool = False) -> None:
        self._expand_two_qubit = expand_two_qubit

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        intermediate_basis = ("cx", "h", "s", "sdg", "t", "tdg", "x", "y", "z", "id",
                              "rx", "ry", "rz", "u1", "u2", "u3", "u", "p", "sx",
                              "cz", "cy", "swap", "crz", "cu1", "cp", "rzz")
        for instruction in circuit:
            if instruction.is_directive or len(instruction.qubits) <= 2:
                result.append(instruction)
                continue
            for piece in decompose_instruction(instruction, intermediate_basis):
                result.append(piece)
        return result


class BasisTranslation(TranspilerPass):
    """Rewrite every gate into the target device's basis gate set.

    Combines the paper's "Translation to Basis Gates" stage with single-qubit
    resynthesis: arbitrary one-qubit gates become ``u1``/``u2``/``u3`` and
    two-qubit gates become CX sandwiches.
    """

    def __init__(self, basis_gates: Sequence[str] = DEFAULT_BASIS_GATES) -> None:
        self._basis_gates = tuple(gate.lower() for gate in basis_gates)

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        basis = self._basis_gates
        if context.target is not None:
            basis = tuple(context.target.basis_gates)
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        for instruction in circuit:
            for piece in decompose_instruction(instruction, basis):
                result.append(piece)
        return result
