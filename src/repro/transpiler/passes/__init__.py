"""Individual transpiler passes."""

from repro.transpiler.passes.base import AnalysisPass, PassManager, TranspilerPass
from repro.transpiler.passes.cleanup import MergeAdjacentRotations, RemoveDiagonalGatesBeforeMeasure
from repro.transpiler.passes.decompose import BasisTranslation, DecomposeMultiQubitGates
from repro.transpiler.passes.layout_selection import (
    DenseLayoutPass,
    SetLayoutPass,
    TrivialLayoutPass,
    VF2PerfectLayoutPass,
)
from repro.transpiler.passes.optimize import (
    CancelAdjacentInverses,
    Optimize1QubitGates,
    RemoveBarriers,
)
from repro.transpiler.passes.routing import (
    BasicRoutingPass,
    CheckMapPass,
    GatesInBasisPass,
    SabreRoutingPass,
)

__all__ = [
    "AnalysisPass",
    "BasicRoutingPass",
    "BasisTranslation",
    "CancelAdjacentInverses",
    "CheckMapPass",
    "DecomposeMultiQubitGates",
    "DenseLayoutPass",
    "GatesInBasisPass",
    "MergeAdjacentRotations",
    "Optimize1QubitGates",
    "PassManager",
    "RemoveBarriers",
    "RemoveDiagonalGatesBeforeMeasure",
    "SabreRoutingPass",
    "SetLayoutPass",
    "TranspilerPass",
    "TrivialLayoutPass",
    "VF2PerfectLayoutPass",
]
