"""Layouts: mappings from a circuit's virtual qubits to device physical qubits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.utils.exceptions import LayoutError


@dataclass
class Layout:
    """A (partial) injective mapping ``virtual qubit -> physical qubit``."""

    mapping: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        physicals = list(self.mapping.values())
        if len(set(physicals)) != len(physicals):
            raise LayoutError(f"Layout maps two virtual qubits to the same physical qubit: {self.mapping}")

    # ------------------------------------------------------------------ #
    @classmethod
    def trivial(cls, num_qubits: int) -> "Layout":
        """The identity layout ``i -> i``."""
        return cls({i: i for i in range(num_qubits)})

    @classmethod
    def from_sequence(cls, physical_qubits: Sequence[int]) -> "Layout":
        """Layout mapping virtual qubit ``i`` to ``physical_qubits[i]``."""
        return cls({virtual: int(physical) for virtual, physical in enumerate(physical_qubits)})

    # ------------------------------------------------------------------ #
    def physical(self, virtual: int) -> int:
        """Physical qubit assigned to ``virtual`` (raises if unassigned)."""
        if virtual not in self.mapping:
            raise LayoutError(f"Virtual qubit {virtual} has no physical assignment")
        return self.mapping[virtual]

    def virtual(self, physical: int) -> Optional[int]:
        """Virtual qubit mapped to ``physical`` or ``None``."""
        for virtual, assigned in self.mapping.items():
            if assigned == physical:
                return virtual
        return None

    def physical_qubits(self) -> List[int]:
        """All physical qubits used by the layout, sorted."""
        return sorted(self.mapping.values())

    def as_list(self, num_virtual: Optional[int] = None) -> List[int]:
        """Dense list form ``[physical of v0, physical of v1, ...]``."""
        size = num_virtual if num_virtual is not None else (max(self.mapping) + 1 if self.mapping else 0)
        result = []
        for virtual in range(size):
            result.append(self.physical(virtual))
        return result

    def copy(self) -> "Layout":
        """Independent copy of the layout."""
        return Layout(dict(self.mapping))

    def swap_physical(self, physical_a: int, physical_b: int) -> None:
        """Exchange whatever virtual qubits sit on two physical qubits.

        This is the layout update performed when the router inserts a SWAP
        gate between ``physical_a`` and ``physical_b``.
        """
        virtual_a = self.virtual(physical_a)
        virtual_b = self.virtual(physical_b)
        if virtual_a is not None:
            self.mapping[virtual_a] = physical_b
        if virtual_b is not None:
            self.mapping[virtual_b] = physical_a

    def compose_onto(self, other: "Layout") -> "Layout":
        """Return the layout obtained by applying ``self`` then ``other``.

        ``other`` must map the physical qubits produced by ``self``.
        """
        return Layout({virtual: other.physical(physical) for virtual, physical in self.mapping.items()})

    def __len__(self) -> int:
        return len(self.mapping)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self.mapping == other.mapping

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        entries = ", ".join(f"{v}->{p}" for v, p in sorted(self.mapping.items()))
        return f"Layout({entries})"
