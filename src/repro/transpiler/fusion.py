"""Single-qubit Clifford fusion: collapse adjacent Clifford runs into one gate.

The plan compiler's *compile once* side (see :mod:`repro.plans`) wants the
logical circuit in a canonical, minimal form before it is bundled into an
:class:`~repro.plans.ExecutionPlan`: every run of adjacent single-qubit
Clifford gates on the same wire is a single element of the 24-element
single-qubit Clifford group, so the run can be replaced by that element's
shortest primitive-gate sequence (1–3 native gates) from
:func:`repro.circuits.clifford_utils.single_qubit_clifford_library`.

Unlike :class:`~repro.transpiler.passes.optimize.Optimize1QubitGates` — which
resynthesises runs into parameterised ``u``-gates for a device basis — this
pass stays inside the stabilizer-native gate set, so the fused circuit remains
directly executable on the tableau engines.  Tableau evolution conjugates by
the gate's Clifford and is therefore invariant under global phase, hence a
fused circuit produces *bit-identical* ideal stabilizer statistics to its
unfused original under the same seed (asserted by ``tests/plans/`` and the
``BENCH_plans.json`` fusion-equivalence check).

Non-Clifford gates, measurements, resets and multi-qubit gates act as run
boundaries and pass through untouched, so fusion is safe on arbitrary input
circuits — it simply finds fewer runs to collapse.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.clifford_utils import clifford_sequence_for, closest_single_qubit_clifford
from repro.circuits.instruction import Instruction
from repro.transpiler.context import TranspileContext
from repro.transpiler.passes.base import TranspilerPass

__all__ = ["FuseCliffordRuns", "fuse_clifford_runs"]

#: Overlap below which a composed run is *not* snapped (kept verbatim).  For
#: exact Clifford inputs the composition is exactly Clifford, so this only
#: triggers on accumulated float error far beyond double precision.
_SNAP_TOLERANCE = 1e-6


def _is_fusable(instruction: Instruction) -> bool:
    """Whether an instruction may join a single-qubit Clifford run."""
    if instruction.is_directive or instruction.is_measurement:
        return False
    if instruction.name == "reset" or instruction.clbits:
        return False
    if len(instruction.qubits) != 1:
        return False
    return clifford_sequence_for(instruction) is not None


def fuse_clifford_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Collapse every adjacent single-qubit Clifford run of ``circuit``.

    Each run is composed into one 2x2 matrix, snapped to its element of the
    Clifford group and re-emitted as that element's shortest native gate
    sequence; runs composing to the identity disappear entirely.  Everything
    else (multi-qubit gates, measurements, resets, barriers, non-Clifford
    gates) is copied through unchanged and terminates the runs it touches.
    """
    result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    result.metadata = dict(circuit.metadata)
    pending: Dict[int, List[Instruction]] = {}

    def flush(qubit: int) -> None:
        run = pending.pop(qubit, [])
        if not run:
            return
        if len(run) == 1:
            # A lone gate is already minimal; keep it verbatim so circuits
            # with nothing to fuse round-trip with an unchanged gate stream.
            result.append(run[0])
            return
        matrix = np.eye(2, dtype=complex)
        for gate in run:
            matrix = gate.matrix() @ matrix
        sequence, overlap = closest_single_qubit_clifford(matrix)
        if overlap < 1.0 - _SNAP_TOLERANCE:
            for gate in run:
                result.append(gate)
            return
        for name in sequence:
            if name == "id":
                continue
            result.append(Instruction(name, (qubit,)))

    def flush_all() -> None:
        for qubit in list(pending):
            flush(qubit)

    for instruction in circuit:
        if _is_fusable(instruction):
            pending.setdefault(instruction.qubits[0], []).append(instruction)
            continue
        for qubit in instruction.qubits:
            flush(qubit)
        if instruction.name == "barrier":
            flush_all()
        result.append(instruction)
    flush_all()
    return result


class FuseCliffordRuns(TranspilerPass):
    """Pass-manager wrapper around :func:`fuse_clifford_runs`."""

    def run(self, circuit: QuantumCircuit, context: TranspileContext) -> QuantumCircuit:
        return fuse_clifford_runs(circuit)
