"""Quantum circuit transpiler: layout, routing, basis translation, optimisation."""

from repro.transpiler.context import TranspileContext
from repro.transpiler.decompositions import decompose_instruction, resynthesise_single_qubit, zyz_angles
from repro.transpiler.fusion import FuseCliffordRuns, fuse_clifford_runs
from repro.transpiler.layout import Layout
from repro.transpiler.passes.base import PassManager, TranspilerPass
from repro.transpiler.preset import TranspileResult, build_preset_pass_manager, transpile

__all__ = [
    "FuseCliffordRuns",
    "Layout",
    "PassManager",
    "TranspileContext",
    "TranspileResult",
    "TranspilerPass",
    "build_preset_pass_manager",
    "decompose_instruction",
    "fuse_clifford_runs",
    "resynthesise_single_qubit",
    "transpile",
    "zyz_angles",
]
