"""The preset transpilation pipeline and the public :func:`transpile` entry.

The stage order follows the paper's description of the Qiskit transpiler
(Section 2.3): virtual circuit optimisation, 3+ qubit gate decomposition,
placement on physical qubits, routing on the restricted topology, translation
to basis gates and physical circuit optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.backends.backend import Backend
from repro.backends.properties import BackendProperties
from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.context import TranspileContext
from repro.transpiler.layout import Layout
from repro.transpiler.passes.base import PassManager, TranspilerPass
from repro.transpiler.passes.decompose import BasisTranslation, DecomposeMultiQubitGates
from repro.transpiler.passes.layout_selection import (
    DenseLayoutPass,
    SetLayoutPass,
    TrivialLayoutPass,
    VF2PerfectLayoutPass,
)
from repro.transpiler.passes.cleanup import MergeAdjacentRotations, RemoveDiagonalGatesBeforeMeasure
from repro.transpiler.passes.optimize import CancelAdjacentInverses, Optimize1QubitGates
from repro.transpiler.passes.routing import (
    BasicRoutingPass,
    CheckMapPass,
    GatesInBasisPass,
    SabreRoutingPass,
)
from repro.utils.exceptions import TranspilerError
from repro.utils.rng import SeedLike


@dataclass
class TranspileResult:
    """A transpiled circuit together with its compilation metadata."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    swaps_inserted: int
    target_name: str
    properties: Dict[str, object] = field(default_factory=dict)

    def two_qubit_gate_count(self) -> int:
        """Number of two-qubit gates in the compiled circuit."""
        return self.circuit.num_two_qubit_gates()


def build_preset_pass_manager(
    target: BackendProperties,
    optimization_level: int = 2,
    initial_layout: Optional[Layout] = None,
    routing_method: str = "sabre",
) -> PassManager:
    """Construct the preset pipeline for ``target``.

    Optimisation levels:

    * ``0`` — trivial layout, basic routing, basis translation only;
    * ``1`` — adds inverse-cancellation and 1-qubit resynthesis;
    * ``2`` (default) — adds VF2 perfect-layout search before the dense
      fallback and a final physical optimisation sweep;
    * ``3`` — adds rotation merging and removal of diagonal gates before
      measurements to the physical optimisation sweep.
    """
    if optimization_level not in (0, 1, 2, 3):
        raise TranspilerError("optimization_level must be 0, 1, 2 or 3")
    if routing_method not in ("sabre", "basic"):
        raise TranspilerError("routing_method must be 'sabre' or 'basic'")

    passes: List[TranspilerPass] = []
    if optimization_level >= 1:
        passes.append(CancelAdjacentInverses())
        passes.append(Optimize1QubitGates())
    passes.append(DecomposeMultiQubitGates())

    if initial_layout is not None:
        passes.append(SetLayoutPass(initial_layout))
    elif optimization_level == 0:
        passes.append(TrivialLayoutPass())
    else:
        if optimization_level >= 2:
            passes.append(VF2PerfectLayoutPass())
        passes.append(DenseLayoutPass())

    passes.append(SabreRoutingPass() if routing_method == "sabre" else BasicRoutingPass())
    passes.append(BasisTranslation())
    if optimization_level >= 1:
        passes.append(CancelAdjacentInverses())
    if optimization_level >= 2:
        passes.append(Optimize1QubitGates())
    if optimization_level >= 3:
        passes.append(MergeAdjacentRotations())
        passes.append(RemoveDiagonalGatesBeforeMeasure())
    passes.append(CheckMapPass())
    passes.append(GatesInBasisPass())
    return PassManager(passes)


def transpile(
    circuit: QuantumCircuit,
    target,
    optimization_level: int = 2,
    initial_layout: Optional[Layout] = None,
    routing_method: str = "sabre",
    seed: SeedLike = None,
) -> TranspileResult:
    """Compile ``circuit`` for ``target`` (a :class:`Backend` or properties).

    Returns a :class:`TranspileResult` whose circuit acts on the device's
    physical qubits, respects its coupling map and uses only its basis gates.
    """
    properties = target.properties if isinstance(target, Backend) else target
    if not isinstance(properties, BackendProperties):
        raise TranspilerError("target must be a Backend or BackendProperties")
    context = TranspileContext.for_target(properties, seed=seed)
    manager = build_preset_pass_manager(
        properties,
        optimization_level=optimization_level,
        initial_layout=initial_layout,
        routing_method=routing_method,
    )
    compiled = manager.run(circuit, context)
    initial = context.initial_layout or Layout.trivial(circuit.num_qubits)
    final = context.final_layout or initial
    return TranspileResult(
        circuit=compiled,
        initial_layout=initial,
        final_layout=final,
        swaps_inserted=int(context.properties.get("swaps_inserted", 0)),
        target_name=properties.name,
        properties=dict(context.properties),
    )
