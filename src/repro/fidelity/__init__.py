"""Fidelity estimation: Clifford canaries and the analytic ESP baselines."""

from repro.fidelity.analytic import DecoherenceAwareESPEstimator, DecoherenceAwareReport
from repro.fidelity.canary import (
    DEFAULT_CANARY_SHOTS,
    CanaryReport,
    CliffordCanaryEstimator,
    achieved_fidelity,
)
from repro.fidelity.clifford import (
    cliffordize,
    closest_single_qubit_clifford,
    is_clifford_circuit,
    is_clifford_instruction,
)
from repro.fidelity.estimator import ESPEstimator, ESPReport

__all__ = [
    "DEFAULT_CANARY_SHOTS",
    "CanaryReport",
    "CliffordCanaryEstimator",
    "DecoherenceAwareESPEstimator",
    "DecoherenceAwareReport",
    "ESPEstimator",
    "ESPReport",
    "achieved_fidelity",
    "cliffordize",
    "closest_single_qubit_clifford",
    "is_clifford_circuit",
    "is_clifford_instruction",
]
