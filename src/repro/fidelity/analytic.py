"""Decoherence-aware analytic fidelity estimation.

:class:`repro.fidelity.estimator.ESPEstimator` multiplies ``(1 - error)``
over gates and measurements but ignores the time qubits spend idling while
other qubits are busy — exactly the regime in which the T1/T2 columns of
Table 2 matter.  :class:`DecoherenceAwareESPEstimator` extends the product
formula with a per-qubit thermal-relaxation survival factor computed from the
compiled circuit's schedule.  It remains an *analytic* method (no execution),
so it slots into the paper's "simplistic analytical methods" family and gives
the Clifford-canary ablation a second, stronger baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.simulators.channels import ThermalRelaxation
from repro.simulators.durations import GateDurations, qubit_busy_times, qubit_idle_times
from repro.transpiler.preset import transpile
from repro.utils.exceptions import FidelityEstimationError
from repro.utils.rng import SeedLike, derive_seed


@dataclass(frozen=True)
class DecoherenceAwareReport:
    """Breakdown of the decoherence-aware analytic estimate on one device."""

    device: str
    circuit_name: str
    #: The plain gate/measurement ESP product.
    gate_esp: float
    #: The product of per-qubit thermal-relaxation survival probabilities.
    decoherence_factor: float
    #: ``gate_esp * decoherence_factor`` — the ranking score.
    estimate: float
    circuit_duration_ns: float
    two_qubit_gates: int


class DecoherenceAwareESPEstimator:
    """Analytic ESP extended with idle-time thermal relaxation.

    Parameters
    ----------
    durations:
        Gate-duration model used to schedule the compiled circuit.
    include_busy_time:
        When set, the relaxation window for each qubit covers its entire
        on-device lifetime (busy + idle); otherwise only idle time is
        charged, the assumption being that gate errors already account for
        decoherence during the gates themselves.
    """

    def __init__(
        self,
        durations: Optional[GateDurations] = None,
        include_busy_time: bool = False,
        optimization_level: int = 2,
        seed: SeedLike = None,
    ) -> None:
        self._durations = durations or GateDurations()
        self._include_busy_time = include_busy_time
        self._optimization_level = optimization_level
        self._seed = seed

    # ------------------------------------------------------------------ #
    def estimate(self, circuit: QuantumCircuit, backend: Backend) -> DecoherenceAwareReport:
        """Estimate the fidelity ``circuit`` would achieve on ``backend``."""
        if backend.num_qubits < circuit.num_qubits:
            raise FidelityEstimationError(
                f"Device '{backend.name}' has {backend.num_qubits} qubits; circuit "
                f"'{circuit.name}' needs {circuit.num_qubits}"
            )
        compiled = transpile(
            circuit,
            backend,
            optimization_level=self._optimization_level,
            seed=derive_seed(self._seed, "decoherence-esp", backend.name, circuit.name),
        )
        noise_model = backend.noise_model()
        gate_esp = noise_model.expected_success_probability(compiled.circuit)
        decoherence = self._decoherence_factor(compiled.circuit, backend)
        duration = max(qubit_busy_times(compiled.circuit, self._durations).values(), default=0.0)
        return DecoherenceAwareReport(
            device=backend.name,
            circuit_name=circuit.name,
            gate_esp=gate_esp,
            decoherence_factor=decoherence,
            estimate=gate_esp * decoherence,
            circuit_duration_ns=duration,
            two_qubit_gates=compiled.two_qubit_gate_count(),
        )

    def rank_backends(self, circuit: QuantumCircuit, backends: Iterable[Backend]) -> List[DecoherenceAwareReport]:
        """Rank feasible backends by the decoherence-aware estimate, best first."""
        reports = [
            self.estimate(circuit, backend)
            for backend in backends
            if backend.num_qubits >= circuit.num_qubits
        ]
        return sorted(reports, key=lambda report: (-report.estimate, report.device))

    # ------------------------------------------------------------------ #
    def _decoherence_factor(self, compiled: QuantumCircuit, backend: Backend) -> float:
        """Product of per-qubit survival probabilities over the circuit schedule."""
        properties = backend.properties
        idle = qubit_idle_times(compiled, self._durations)
        busy = qubit_busy_times(compiled, self._durations)
        factor = 1.0
        for qubit, idle_time in idle.items():
            if busy.get(qubit, 0.0) <= 0.0:
                continue
            window = idle_time + (busy[qubit] if self._include_busy_time else 0.0)
            if window <= 0.0:
                continue
            t1 = properties.t1.get(qubit)
            t2 = properties.t2.get(qubit)
            if not t1 or not t2:
                continue
            relaxation = ThermalRelaxation(t1=float(t1), t2=min(float(t2), 2.0 * float(t1)), duration=window)
            factor *= relaxation.survival_probability()
        return max(0.0, min(1.0, factor))
