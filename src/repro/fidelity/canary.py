"""The Clifford-canary fidelity estimation protocol (Section 3.4.1).

For a user circuit and a candidate device the protocol is:

1. build the Clifford canary of the circuit (:func:`repro.fidelity.cliffordize`);
2. compute the canary's *ideal* outcome distribution classically — the
   Gottesman-Knill theorem makes this polynomial even for 100-qubit devices
   (we use the stabilizer simulator);
3. transpile the canary to the candidate device and execute it under the
   device's noise model;
4. report the Hellinger fidelity between the noisy and ideal distributions.

Because the canary shares the original circuit's structure (especially its
two-qubit gates), its fidelity on a device is a good proxy for the fidelity
the user's real circuit would achieve there — which is exactly the signal
QRIO's fidelity-ranking scheduler needs, without ever knowing the correct
output of the (generally unsimulable) user circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.fidelity.clifford import cliffordize, is_clifford_circuit
from repro.simulators.noisy import ExecutionRequest, execute_many_with_noise, execute_with_noise
from repro.simulators.result import SimulationResult, hellinger_fidelity
from repro.simulators.stabilizer import StabilizerSimulator
from repro.simulators.statevector import StatevectorSimulator, compact_circuit
from repro.transpiler.preset import transpile
from repro.utils.exceptions import FidelityEstimationError
from repro.utils.rng import SeedLike, derive_seed, ensure_generator

#: Default shot budget used for canary executions.
DEFAULT_CANARY_SHOTS = 512


@dataclass
class CanaryReport:
    """Outcome of estimating a circuit's fidelity on one device."""

    device: str
    circuit_name: str
    canary_fidelity: float
    swaps_inserted: int
    two_qubit_gates: int
    shots: int
    details: Dict[str, object] = field(default_factory=dict)


class CliffordCanaryEstimator:
    """Estimates execution fidelity on candidate devices via Clifford canaries."""

    def __init__(
        self,
        shots: int = DEFAULT_CANARY_SHOTS,
        optimization_level: int = 2,
        seed: SeedLike = None,
    ) -> None:
        if shots <= 0:
            raise FidelityEstimationError("shots must be positive")
        self._shots = shots
        self._optimization_level = optimization_level
        self._seed = seed
        # Per-(canary structure, device, calibration) compiled canaries for
        # the batched tick path — estimator-local so the solo estimate()
        # protocol (which recompiles per call) is left untouched.
        self._device_plans: Optional[object] = None

    # ------------------------------------------------------------------ #
    def build_canary(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Return the measured Clifford canary of ``circuit``."""
        prepared = circuit if circuit.has_measurements() else _with_full_measurement(circuit)
        return cliffordize(prepared)

    def ideal_distribution(self, canary: QuantumCircuit) -> Dict[str, int]:
        """Classically simulate the canary's noise-free outcome counts.

        Distributions are memoized in the process-wide cache of
        :mod:`repro.core.cache`, keyed by the canary's *structural* hash plus
        the shot budget — so every estimator instance (meta server, cloud
        policies, experiment drivers) reuses each other's stabilizer runs,
        and two canaries that merely share a name, gate count and width can
        never collide.  The estimator's seed is deliberately *not* part of
        the key: the ideal distribution is a reference quantity, so any
        seed's sample is an equally valid estimate and sharing one across
        instances trades shot-for-shot seeded reproducibility for an
        order-of-magnitude fewer stabilizer runs per fleet ranking.
        """
        # Imported lazily: repro.core's package init imports this module.
        from repro.core.cache import IdealDistributionCache, ideal_distribution_cache, structural_circuit_hash

        cache = ideal_distribution_cache()
        cache_key = IdealDistributionCache.key(structural_circuit_hash(canary), self._shots)
        cached = cache.get(cache_key)
        if cached is not None:
            return dict(cached)
        simulator = StabilizerSimulator(seed=derive_seed(self._seed, "canary-ideal", canary.name))
        counts = simulator.run(canary, shots=self._shots).counts
        cache.put(cache_key, dict(counts))
        return counts

    def estimate(self, circuit: QuantumCircuit, backend: Backend) -> CanaryReport:
        """Estimate the fidelity ``circuit`` would achieve on ``backend``."""
        if backend.num_qubits < circuit.num_qubits:
            raise FidelityEstimationError(
                f"Device '{backend.name}' has {backend.num_qubits} qubits; circuit "
                f"'{circuit.name}' needs {circuit.num_qubits}"
            )
        canary = self.build_canary(circuit)
        ideal_counts = self.ideal_distribution(canary)
        compiled = transpile(
            canary,
            backend,
            optimization_level=self._optimization_level,
            seed=derive_seed(self._seed, "canary-transpile", backend.name, circuit.name),
        )
        noisy = execute_with_noise(
            compiled.circuit,
            backend.noise_model(),
            shots=self._shots,
            seed=derive_seed(self._seed, "canary-execute", backend.name, circuit.name),
        )
        fidelity = hellinger_fidelity(noisy.counts, ideal_counts)
        return CanaryReport(
            device=backend.name,
            circuit_name=circuit.name,
            canary_fidelity=fidelity,
            swaps_inserted=compiled.swaps_inserted,
            two_qubit_gates=compiled.two_qubit_gate_count(),
            shots=self._shots,
            details={
                "canary_gates": canary.size(),
                "non_clifford_replaced": canary.metadata.get("non_clifford_replaced", 0),
            },
        )

    def _compiled_canary(self, canary: QuantumCircuit, circuit: QuantumCircuit, backend: Backend):
        """Transpiled + precompiled canary for one device, memoized.

        The key covers the canary's structure, the source circuit's name
        (part of the deterministic transpile seed), the device and its
        calibration fingerprint — so a memoized entry is exactly what
        :meth:`estimate` would recompile, and calibration drift invalidates
        implicitly.  Memoization is estimator-local and only feeds the
        batched tick path; the solo :meth:`estimate` protocol recompiles
        per call, unchanged.
        """
        # Imported lazily: repro.core's package init imports this module.
        from repro.core.cache import LRUCache, calibration_fingerprint, structural_circuit_hash
        from repro.simulators.noisy import precompile_execution

        if self._device_plans is None:
            self._device_plans = LRUCache(maxsize=512)
        fingerprint = calibration_fingerprint(backend.properties)
        key = (structural_circuit_hash(canary), circuit.name, backend.name, fingerprint)
        entry = self._device_plans.get(key)
        if entry is None:
            compiled = transpile(
                canary,
                backend,
                optimization_level=self._optimization_level,
                seed=derive_seed(self._seed, "canary-transpile", backend.name, circuit.name),
            )
            entry = (compiled, precompile_execution(compiled.circuit), fingerprint)
            self._device_plans.put(key, entry)
        return entry

    def estimate_many(
        self,
        circuit: QuantumCircuit,
        backends: Sequence[Backend],
    ) -> List[CanaryReport]:
        """Estimate ``circuit``'s fidelity on every candidate device at once.

        The scheduling-tick form of :meth:`estimate`: the canary is built
        and its ideal distribution computed once, the per-device transpiles
        are memoized against each device's calibration fingerprint, and the
        noisy canary executions are merged into one cross-job sign-matrix
        evolution (:func:`~repro.simulators.noisy.execute_many_with_noise`).
        Reports are returned in ``backends`` order and are identical —
        fidelities bit-for-bit — to calling :meth:`estimate` per device.
        """
        backends = list(backends)
        for backend in backends:
            if backend.num_qubits < circuit.num_qubits:
                raise FidelityEstimationError(
                    f"Device '{backend.name}' has {backend.num_qubits} qubits; circuit "
                    f"'{circuit.name}' needs {circuit.num_qubits}"
                )
        if not backends:
            return []
        canary = self.build_canary(circuit)
        ideal_counts = self.ideal_distribution(canary)
        compiled_entries = [self._compiled_canary(canary, circuit, backend) for backend in backends]
        requests = [
            ExecutionRequest(
                circuit=compiled.circuit,
                noise_model=backend.noise_model(),
                shots=self._shots,
                seed=derive_seed(self._seed, "canary-execute", backend.name, circuit.name),
                precompiled=precompiled,
                device=backend.name,
                calibration=fingerprint,
            )
            for backend, (compiled, precompiled, fingerprint) in zip(backends, compiled_entries)
        ]
        executions = execute_many_with_noise(requests)
        reports = []
        for backend, (compiled, _precompiled, _fingerprint), noisy in zip(
            backends, compiled_entries, executions
        ):
            reports.append(
                CanaryReport(
                    device=backend.name,
                    circuit_name=circuit.name,
                    canary_fidelity=hellinger_fidelity(noisy.counts, ideal_counts),
                    swaps_inserted=compiled.swaps_inserted,
                    two_qubit_gates=compiled.two_qubit_gate_count(),
                    shots=self._shots,
                    details={
                        "canary_gates": canary.size(),
                        "non_clifford_replaced": canary.metadata.get("non_clifford_replaced", 0),
                    },
                )
            )
        return reports

    def rank_backends(
        self,
        circuit: QuantumCircuit,
        backends: Iterable[Backend],
    ) -> List[CanaryReport]:
        """Estimate fidelity on every feasible backend, highest fidelity first.

        Backends with fewer qubits than the circuit needs are skipped — in
        the full QRIO flow the scheduler's filtering stage removes them
        before any scoring request reaches the meta server.  Feasible
        devices are evaluated through the batched tick path
        (:meth:`estimate_many`): one canary build, memoized per-device
        transpiles and a single merged canary execution per ranking.
        """
        feasible = [backend for backend in backends if backend.num_qubits >= circuit.num_qubits]
        reports = self.estimate_many(circuit, feasible)
        return sorted(reports, key=lambda report: (-report.canary_fidelity, report.device))


def _with_full_measurement(circuit: QuantumCircuit) -> QuantumCircuit:
    """Copy ``circuit`` and measure every qubit (canaries must be sampled)."""
    prepared = circuit.copy()
    prepared.measure_all()
    return prepared


def achieved_fidelity(
    circuit: QuantumCircuit,
    backend: Backend,
    shots: int = DEFAULT_CANARY_SHOTS,
    optimization_level: int = 2,
    seed: SeedLike = None,
) -> float:
    """*True* achieved fidelity of ``circuit`` on ``backend``.

    This is the oracle quantity of the Fig. 7 experiment: the noise-free
    output of the actual user circuit (obtained with the statevector
    simulator, which is only possible because the evaluation workloads are
    small) compared against the device's noisy execution of that circuit.
    """
    prepared = circuit if circuit.has_measurements() else _with_full_measurement(circuit)
    compiled = transpile(
        prepared,
        backend,
        optimization_level=optimization_level,
        seed=derive_seed(seed, "oracle-transpile", backend.name, circuit.name),
    )
    noisy = execute_with_noise(
        compiled.circuit,
        backend.noise_model(),
        shots=shots,
        seed=derive_seed(seed, "oracle-execute", backend.name, circuit.name),
    )
    if is_clifford_circuit(prepared):
        ideal_counts = StabilizerSimulator(seed=derive_seed(seed, "oracle-ideal", circuit.name)).run(
            prepared, shots=shots
        ).counts
    else:
        compacted, _ = compact_circuit(prepared)
        ideal_counts = StatevectorSimulator(seed=derive_seed(seed, "oracle-ideal", circuit.name)).run(
            compacted, shots=shots
        ).counts
    return hellinger_fidelity(noisy.counts, ideal_counts)
