"""Analytic fidelity estimation (the baseline the canary method outperforms).

The paper motivates Clifford canaries by noting that "as circuit complexity
continues to increase, simplistic analytical methods of fidelity estimation
fail".  The classic analytical method is the Estimated Success Probability
(ESP): a product of ``(1 - error)`` over every gate and measurement of the
compiled circuit.  It is cheap — no simulation at all — but ignores error
cancellation, error propagation and the structure of the output distribution.
It is provided here both as a fast pre-filter and as the comparison point for
the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.preset import transpile
from repro.utils.exceptions import FidelityEstimationError
from repro.utils.rng import SeedLike, derive_seed


@dataclass(frozen=True)
class ESPReport:
    """Analytic estimate of a circuit's success probability on one device."""

    device: str
    circuit_name: str
    esp: float
    two_qubit_gates: int
    swaps_inserted: int


class ESPEstimator:
    """Estimated-success-probability calculator over transpiled circuits."""

    def __init__(self, optimization_level: int = 2, seed: SeedLike = None) -> None:
        self._optimization_level = optimization_level
        self._seed = seed

    def estimate(self, circuit: QuantumCircuit, backend: Backend) -> ESPReport:
        """Transpile ``circuit`` for ``backend`` and compute its analytic ESP."""
        compiled = transpile(
            circuit,
            backend,
            optimization_level=self._optimization_level,
            seed=derive_seed(self._seed, "esp-transpile", backend.name, circuit.name),
        )
        esp = backend.noise_model().expected_success_probability(compiled.circuit)
        return ESPReport(
            device=backend.name,
            circuit_name=circuit.name,
            esp=esp,
            two_qubit_gates=compiled.two_qubit_gate_count(),
            swaps_inserted=compiled.swaps_inserted,
        )

    def rank_backends(self, circuit: QuantumCircuit, backends: Iterable[Backend]) -> List[ESPReport]:
        """Rank ``backends`` by analytic ESP, best first."""
        reports = [self.estimate(circuit, backend) for backend in backends]
        return sorted(reports, key=lambda report: (-report.esp, report.device))
