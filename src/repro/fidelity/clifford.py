"""Cliffordization: turning an arbitrary circuit into its Clifford canary.

The Clifford canary (Section 3.4.1, following Quancorde and Clifford-assisted
pass selection) is "the original circuit without its non-Clifford gates": the
circuit structure — in particular every noisy two-qubit gate — is preserved
while each non-Clifford gate is snapped to its closest Clifford replacement,
so the canary stays classically simulable yet representative of how the real
circuit degrades on a given device.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.clifford_utils import closest_single_qubit_clifford
from repro.circuits.gates import CLIFFORD_GATE_NAMES, gate_matrix
from repro.circuits.instruction import Instruction
from repro.transpiler.decompositions import DECOMPOSITION_RULES
from repro.utils.exceptions import FidelityEstimationError


def is_clifford_instruction(instruction: Instruction, atol: float = 1e-9) -> bool:
    """``True`` when ``instruction`` implements a Clifford operation.

    Named Clifford gates are recognised directly; parameterised single-qubit
    gates are checked against the 24-element Clifford library; two-qubit
    controlled-phase style gates are Clifford when their angle is a multiple
    of pi (cu1/cp) or of pi (rzz/crz at the +-pi points used in practice).
    """
    if instruction.name in ("measure", "reset", "barrier"):
        return True
    if instruction.name in CLIFFORD_GATE_NAMES and not instruction.params:
        return True
    if len(instruction.qubits) == 1:
        _, overlap = closest_single_qubit_clifford(instruction.matrix())
        return overlap > 1.0 - atol
    if instruction.name in ("cu1", "cp"):
        lam = instruction.params[0] % (2.0 * math.pi)
        return min(abs(lam), abs(lam - math.pi), abs(lam - 2.0 * math.pi)) < atol
    if instruction.name in ("crz", "rzz"):
        theta = instruction.params[0] % (2.0 * math.pi)
        return min(abs(theta - k * math.pi) for k in range(3)) < atol
    return False


def is_clifford_circuit(circuit: QuantumCircuit) -> bool:
    """``True`` when every instruction of ``circuit`` is Clifford."""
    return all(is_clifford_instruction(instruction) for instruction in circuit)


def _cliffordize_instruction(instruction: Instruction) -> List[Instruction]:
    """Replace one instruction with its Clifford counterpart(s)."""
    if instruction.name in ("measure", "reset", "barrier"):
        return [instruction]
    if instruction.name in CLIFFORD_GATE_NAMES and not instruction.params:
        return [instruction]
    qubits = instruction.qubits
    if len(qubits) == 1:
        sequence, overlap = closest_single_qubit_clifford(instruction.matrix())
        if overlap > 1.0 - 1e-9 and len(sequence) == 1:
            return [Instruction(sequence[0], qubits)]
        return [Instruction(name, qubits) for name in sequence if name != "id"] or [Instruction("id", qubits)]
    if instruction.name in ("cu1", "cp", "crz", "rzz"):
        # Phase-style interactions snap to CZ: the canary must keep the noisy
        # two-qubit structure of the original circuit, so the interaction is
        # preserved even when the angle is closer to zero than to pi.
        return [Instruction("cz", qubits)]
    if instruction.name == "ch":
        return [Instruction("cx", qubits)]
    if instruction.name in DECOMPOSITION_RULES:
        # Multi-qubit non-Clifford gates (ccx, ccz, ...) are expanded exactly
        # as the transpiler would expand them, then each piece is snapped.
        pieces = DECOMPOSITION_RULES[instruction.name](instruction.qubits, instruction.params)
        result: List[Instruction] = []
        for piece in pieces:
            result.extend(_cliffordize_instruction(piece))
        return result
    raise FidelityEstimationError(f"Cannot cliffordize gate '{instruction.name}'")


def cliffordize(circuit: QuantumCircuit, name: Optional[str] = None) -> QuantumCircuit:
    """Build the Clifford canary version of ``circuit``.

    Clifford gates (including measurements and barriers) are kept verbatim;
    every non-Clifford gate is replaced by its nearest Clifford while
    preserving which qubits interact, so the canary accumulates noise on the
    same device edges as the original circuit.
    """
    canary = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, name or f"{circuit.name}_canary")
    canary.metadata = dict(circuit.metadata)
    canary.metadata["canary_of"] = circuit.name
    # Gates the stabilizer simulator executes natively; everything else is
    # rewritten, even if it is formally Clifford (e.g. cu1 at angle pi).
    stabilizer_native = {"id", "x", "y", "z", "h", "s", "sdg", "sx", "cx", "cz", "cy", "swap"}
    replaced = 0
    for instruction in circuit:
        if instruction.name in ("measure", "reset", "barrier"):
            canary.append(instruction)
            continue
        if instruction.name in stabilizer_native and not instruction.params:
            canary.append(instruction)
            continue
        pieces = _cliffordize_instruction(instruction)
        for piece in pieces:
            canary.append(piece)
        if not (is_clifford_instruction(instruction) and len(pieces) == 1 and pieces[0].name == instruction.name):
            replaced += 1
    canary.metadata["non_clifford_replaced"] = replaced
    return canary
