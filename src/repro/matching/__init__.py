"""Subgraph-isomorphism based topology matching (Mapomatic-style)."""

from repro.matching.interaction import (
    graph_summary,
    interaction_edge_list,
    interaction_graph,
    topology_as_graph,
)
from repro.matching.mapomatic import DeviceMatch, best_overall_device, match_device, rank_devices
from repro.matching.scalable import (
    MatchBudget,
    anneal_embedding,
    best_device_scalable,
    rank_devices_scalable,
    scalable_match_device,
)
from repro.matching.scoring import ScoredEmbedding, best_embedding, embedding_cost, evaluate_embeddings
from repro.matching.subgraph import (
    DEFAULT_MAX_EMBEDDINGS,
    Embedding,
    find_embeddings,
    find_exact_embeddings,
    greedy_embedding,
    has_exact_embedding,
)

__all__ = [
    "DEFAULT_MAX_EMBEDDINGS",
    "DeviceMatch",
    "Embedding",
    "MatchBudget",
    "ScoredEmbedding",
    "anneal_embedding",
    "best_device_scalable",
    "best_embedding",
    "best_overall_device",
    "embedding_cost",
    "evaluate_embeddings",
    "find_embeddings",
    "find_exact_embeddings",
    "graph_summary",
    "greedy_embedding",
    "has_exact_embedding",
    "interaction_edge_list",
    "interaction_graph",
    "match_device",
    "rank_devices",
    "rank_devices_scalable",
    "scalable_match_device",
    "topology_as_graph",
]
