"""Subgraph matching between circuit interaction graphs and device topologies.

This is the reproduction of Mapomatic's first step ("device subgraphs are
identified by traversing the device topology and outlining areas of the
devices that are the best fit for the qubit circuit").  Exact embeddings are
found with VF2 subgraph monomorphism; when no exact embedding exists a greedy
best-effort placement is produced instead so the scorer can still charge the
device a penalty for the missing couplings (this is what makes the
fully-connected topology request of Fig. 6 discriminate sharply between
sparse and dense devices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.backends.properties import BackendProperties
from repro.utils.exceptions import MatchingError
from repro.utils.rng import SeedLike, ensure_generator

#: Default cap on the number of exact embeddings enumerated per device.
DEFAULT_MAX_EMBEDDINGS = 100


@dataclass(frozen=True)
class Embedding:
    """A placement of pattern (circuit/topology) nodes onto device qubits."""

    mapping: Dict[int, int]
    exact: bool

    def physical(self, pattern_node: int) -> int:
        """Device qubit hosting ``pattern_node``."""
        return self.mapping[pattern_node]

    def physical_qubits(self) -> List[int]:
        """All device qubits used by the embedding."""
        return sorted(self.mapping.values())


def find_exact_embeddings(
    pattern: nx.Graph,
    device_graph: nx.Graph,
    max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
) -> List[Embedding]:
    """Enumerate subgraph-monomorphism embeddings of ``pattern`` into the device.

    A monomorphism (rather than induced-subgraph isomorphism) is the right
    notion here: the device may have extra couplings between the chosen
    qubits, which never hurts execution.
    """
    if pattern.number_of_nodes() == 0:
        return [Embedding(mapping={}, exact=True)]
    if pattern.number_of_nodes() > device_graph.number_of_nodes():
        return []
    if not _degree_compatible(pattern, device_graph):
        # A pattern node needs more neighbours than any device qubit offers;
        # VF2 would exhaustively prove infeasibility, so short-circuit.
        return []
    matcher = nx.algorithms.isomorphism.GraphMatcher(device_graph, pattern)
    embeddings: List[Embedding] = []
    for count, mapping in enumerate(matcher.subgraph_monomorphisms_iter()):
        if count >= max_embeddings:
            break
        embeddings.append(
            Embedding(mapping={pattern_node: device_node for device_node, pattern_node in mapping.items()}, exact=True)
        )
    return embeddings


def _degree_compatible(pattern: nx.Graph, device_graph: nx.Graph) -> bool:
    """Cheap necessary condition for a monomorphism to exist.

    Every pattern node of degree ``d`` must map onto a device qubit of degree
    at least ``d``; comparing the sorted degree sequences rejects hopeless
    cases (e.g. a 9-leaf star onto a degree-4-capped device) in microseconds.
    """
    pattern_degrees = sorted((degree for _, degree in pattern.degree()), reverse=True)
    device_degrees = sorted((degree for _, degree in device_graph.degree()), reverse=True)
    if not pattern_degrees:
        return True
    if len(device_degrees) < len(pattern_degrees):
        return False
    return all(
        pattern_degree <= device_degrees[index]
        for index, pattern_degree in enumerate(pattern_degrees)
    )


def greedy_embedding(
    pattern: nx.Graph,
    properties: BackendProperties,
    seed: SeedLike = None,
) -> Embedding:
    """Best-effort placement when no exact embedding exists.

    Pattern nodes are placed in descending degree order; each node goes to
    the free device qubit that is adjacent to the largest number of its
    already-placed neighbours, breaking ties by summed distance to those
    neighbours and then by local two-qubit error.
    """
    if pattern.number_of_nodes() > properties.num_qubits:
        raise MatchingError(
            f"Pattern needs {pattern.number_of_nodes()} qubits but device "
            f"'{properties.name}' has only {properties.num_qubits}"
        )
    rng = ensure_generator(seed)
    device_graph = properties.graph()
    distances = dict(nx.all_pairs_shortest_path_length(device_graph))
    order = sorted(pattern.nodes, key=lambda node: -pattern.degree(node))
    mapping: Dict[int, int] = {}
    used: set = set()

    for pattern_node in order:
        placed_neighbours = [
            mapping[neighbour] for neighbour in pattern.neighbors(pattern_node) if neighbour in mapping
        ]
        best_candidate: Optional[int] = None
        best_key: Optional[Tuple[float, float, float]] = None
        candidates = [q for q in range(properties.num_qubits) if q not in used]
        rng.shuffle(candidates)
        for candidate in candidates:
            adjacency = sum(
                1 for neighbour in placed_neighbours if device_graph.has_edge(candidate, neighbour)
            )
            distance = sum(
                distances[candidate].get(neighbour, properties.num_qubits)
                for neighbour in placed_neighbours
            )
            local_error = sum(
                properties.edge_error(candidate, other)
                for other in device_graph.neighbors(candidate)
            ) / max(1, device_graph.degree(candidate))
            key = (-adjacency, float(distance), local_error)
            if best_key is None or key < best_key:
                best_key = key
                best_candidate = candidate
        if best_candidate is None:
            raise MatchingError("Ran out of device qubits during greedy embedding")
        mapping[pattern_node] = best_candidate
        used.add(best_candidate)
    return Embedding(mapping=mapping, exact=False)


def find_embeddings(
    pattern: nx.Graph,
    properties: BackendProperties,
    max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
    seed: SeedLike = None,
) -> List[Embedding]:
    """Exact embeddings when they exist, otherwise one greedy fallback."""
    exact = find_exact_embeddings(pattern, properties.graph(), max_embeddings=max_embeddings)
    if exact:
        return exact
    if pattern.number_of_nodes() > properties.num_qubits:
        return []
    return [greedy_embedding(pattern, properties, seed=seed)]


def has_exact_embedding(pattern: nx.Graph, properties: BackendProperties) -> bool:
    """``True`` when the device can host ``pattern`` without any routing."""
    if pattern.number_of_nodes() > properties.num_qubits:
        return False
    device_graph = properties.graph()
    if not _degree_compatible(pattern, device_graph):
        return False
    matcher = nx.algorithms.isomorphism.GraphMatcher(device_graph, pattern)
    return matcher.subgraph_is_monomorphic()
