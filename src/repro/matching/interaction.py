"""Interaction graphs: the circuit-side object topology matching works on."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.circuits.circuit import QuantumCircuit


def interaction_graph(circuit: QuantumCircuit, include_isolated: bool = False) -> nx.Graph:
    """Undirected graph whose edges are the circuit's two-qubit interactions.

    Edge weights carry the interaction multiplicity (how many two-qubit gates
    act on that pair), which the scorer uses so that heavily used pairs land
    on the lowest-error device edges.

    Parameters
    ----------
    circuit:
        Circuit to analyse.
    include_isolated:
        When ``True`` the graph also contains qubits that never participate
        in a two-qubit gate; matching normally ignores them because they can
        be placed anywhere.
    """
    graph = nx.Graph()
    if include_isolated:
        graph.add_nodes_from(range(circuit.num_qubits))
    for (a, b), multiplicity in circuit.interaction_pairs().items():
        graph.add_edge(a, b, weight=multiplicity)
    return graph


def interaction_edge_list(circuit: QuantumCircuit) -> List[Tuple[int, int, int]]:
    """The interaction graph as ``(qubit_a, qubit_b, multiplicity)`` triples."""
    return [
        (a, b, multiplicity)
        for (a, b), multiplicity in sorted(circuit.interaction_pairs().items())
    ]


def topology_as_graph(num_qubits: int, edges: Iterable[Tuple[int, int]]) -> nx.Graph:
    """Build a graph directly from a user-specified topology (canvas edges)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_qubits))
    for a, b in edges:
        if a == b:
            continue
        graph.add_edge(int(a), int(b), weight=graph.get_edge_data(int(a), int(b), {}).get("weight", 0) + 1)
    return graph


def graph_summary(graph: nx.Graph) -> Dict[str, float]:
    """Small structural summary used in experiment reports and logs."""
    num_nodes = graph.number_of_nodes()
    num_edges = graph.number_of_edges()
    degrees = [degree for _, degree in graph.degree()]
    return {
        "nodes": float(num_nodes),
        "edges": float(num_edges),
        "max_degree": float(max(degrees) if degrees else 0),
        "avg_degree": float(sum(degrees) / num_nodes) if num_nodes else 0.0,
    }
