"""Scalable topology scoring (the paper's future-work item 3).

Section 5 of the paper reports that Mapomatic-style exact subgraph scoring
"takes up to 45 minutes" on densely connected devices and degrades further
once the requested topology exceeds 12-15 qubits.  The culprit is exhaustive
VF2 subgraph enumeration: dense device graphs contain combinatorially many
embeddings of a dense pattern.

This module provides the long-term answer the paper sketches — "a scalable
methodology that can handle many 1000s of qubits" — as a budgeted matcher:

1. cheap feasibility pruning (size and degree-sequence checks);
2. a *capped* VF2 search that stops after a configurable number of
   embeddings instead of enumerating all of them;
3. a greedy seed placement refined by simulated annealing over the same
   error-aware cost function the exact scorer uses, so the result remains
   directly comparable (and interchangeable) with
   :func:`repro.matching.mapomatic.match_device`.

The annealer only ever *improves* on the greedy placement it starts from and
the VF2 stage only ever narrows the candidate set, so the scalable matcher
trades optimality for a hard bound on work — the trade the paper asks for.
"""

from __future__ import annotations

import math
from dataclasses import astuple, dataclass, replace
from typing import Dict, Iterable, List, Optional

import networkx as nx

from repro.backends.properties import BackendProperties
from repro.matching.mapomatic import DeviceMatch, PatternLike, TargetLike, _as_pattern, _as_properties
from repro.matching.scoring import _cache_key_for, embedding_cost
from repro.matching.subgraph import Embedding, find_exact_embeddings, greedy_embedding
from repro.utils.exceptions import MatchingError
from repro.utils.rng import SeedLike, ensure_generator


@dataclass(frozen=True)
class MatchBudget:
    """Work limits for the scalable matcher.

    Attributes
    ----------
    exact_embedding_cap:
        Maximum number of exact VF2 embeddings to enumerate before falling
        back to the heuristic path.  Zero disables the exact stage entirely.
    exact_pattern_limit:
        Largest pattern (in nodes) for which the exact stage is attempted;
        bigger requests go straight to greedy + annealing.
    exact_density_limit:
        Densest pattern (edges / possible edges) for which the exact stage is
        attempted — dense patterns are what make VF2 explode.
    anneal_iterations:
        Number of simulated-annealing proposals applied to the greedy seed.
    anneal_initial_temperature / anneal_cooling:
        Metropolis temperature schedule (geometric cooling).
    restarts:
        Independent greedy + annealing restarts; the best result wins.
    """

    exact_embedding_cap: int = 32
    exact_pattern_limit: int = 12
    exact_density_limit: float = 0.5
    anneal_iterations: int = 400
    anneal_initial_temperature: float = 1.0
    anneal_cooling: float = 0.995
    restarts: int = 2

    def __post_init__(self) -> None:
        if self.exact_embedding_cap < 0:
            raise MatchingError("exact_embedding_cap must be non-negative")
        if self.anneal_iterations < 0:
            raise MatchingError("anneal_iterations must be non-negative")
        if self.restarts < 1:
            raise MatchingError("restarts must be at least 1")
        if not 0.0 < self.anneal_cooling <= 1.0:
            raise MatchingError("anneal_cooling must lie in (0, 1]")


def _pattern_density(pattern: nx.Graph) -> float:
    nodes = pattern.number_of_nodes()
    if nodes < 2:
        return 0.0
    return pattern.number_of_edges() / (nodes * (nodes - 1) / 2.0)


def _is_exact(pattern: nx.Graph, mapping: Dict[int, int], device_graph: nx.Graph) -> bool:
    return all(
        device_graph.has_edge(mapping[a], mapping[b]) for a, b in pattern.edges if a in mapping and b in mapping
    )


def anneal_embedding(
    pattern: nx.Graph,
    properties: BackendProperties,
    initial: Embedding,
    iterations: int = 400,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
    include_readout: bool = True,
    seed: SeedLike = None,
) -> Embedding:
    """Refine ``initial`` by simulated annealing over the embedding cost.

    Two move types are proposed with equal probability: swapping the physical
    qubits of two pattern nodes, and relocating one pattern node to a
    currently unused physical qubit.  Moves are accepted with the Metropolis
    criterion; the best placement ever visited is returned.
    """
    if iterations <= 0:
        return initial
    rng = ensure_generator(seed)
    device_graph = properties.graph()
    pattern_nodes = list(pattern.nodes)
    if not pattern_nodes:
        return initial

    current = dict(initial.mapping)
    current_cost = embedding_cost(pattern, Embedding(current, _is_exact(pattern, current, device_graph)), properties, include_readout)
    best = dict(current)
    best_cost = current_cost
    temperature = max(initial_temperature, 1e-9)

    for _ in range(iterations):
        proposal = dict(current)
        if len(pattern_nodes) >= 2 and rng.random() < 0.5:
            node_a, node_b = rng.choice(len(pattern_nodes), size=2, replace=False)
            a, b = pattern_nodes[int(node_a)], pattern_nodes[int(node_b)]
            proposal[a], proposal[b] = proposal[b], proposal[a]
        else:
            used = set(proposal.values())
            free = [q for q in range(properties.num_qubits) if q not in used]
            if not free:
                if len(pattern_nodes) < 2:
                    break
                node_a, node_b = rng.choice(len(pattern_nodes), size=2, replace=False)
                a, b = pattern_nodes[int(node_a)], pattern_nodes[int(node_b)]
                proposal[a], proposal[b] = proposal[b], proposal[a]
            else:
                node = pattern_nodes[int(rng.integers(0, len(pattern_nodes)))]
                proposal[node] = int(free[int(rng.integers(0, len(free)))])
        proposal_cost = embedding_cost(
            pattern,
            Embedding(proposal, _is_exact(pattern, proposal, device_graph)),
            properties,
            include_readout,
        )
        delta = proposal_cost - current_cost
        if delta <= 0.0 or rng.random() < math.exp(-delta / temperature):
            current = proposal
            current_cost = proposal_cost
            if current_cost < best_cost:
                best = dict(current)
                best_cost = current_cost
        temperature *= cooling

    return Embedding(mapping=best, exact=_is_exact(pattern, best, device_graph))


def scalable_match_device(
    pattern: PatternLike,
    target: TargetLike,
    budget: Optional[MatchBudget] = None,
    include_readout: bool = True,
    seed: SeedLike = None,
    use_cache: bool = True,
) -> Optional[DeviceMatch]:
    """Budgeted counterpart of :func:`repro.matching.mapomatic.match_device`.

    Returns ``None`` when the device cannot host the pattern at all (fewer
    qubits than pattern nodes), exactly like the exact matcher.

    Matches are memoized in the fleet-wide embedding cache keyed by pattern
    hash, device, calibration fingerprint, budget knobs and seed — repeated
    scheduling requests skip both the VF2 stage and the annealing restarts
    until the device's calibration drifts.  ``use_cache=False`` forces a
    fresh search.
    """
    budget = budget or MatchBudget()
    graph = _as_pattern(pattern)
    properties = _as_properties(target)
    if graph.number_of_nodes() > properties.num_qubits:
        return None
    if graph.number_of_nodes() == 0:
        return DeviceMatch(device=properties.name, score=0.0, exact=True, layout={})

    key = (
        _cache_key_for(graph, properties, seed, "scalable", astuple(budget), include_readout)
        if use_cache
        else None
    )
    if key is not None:
        from repro.core.cache import embedding_cache

        hit = embedding_cache().get(key)
        if hit is not None:
            # Fresh layout dict so a caller mutating it cannot poison the cache.
            return replace(hit, layout=dict(hit.layout))

    device_graph = properties.graph()
    rng = ensure_generator(seed)

    candidates: List[Embedding] = []
    exact_stage_allowed = (
        budget.exact_embedding_cap > 0
        and graph.number_of_nodes() <= budget.exact_pattern_limit
        and _pattern_density(graph) <= budget.exact_density_limit
    )
    if exact_stage_allowed:
        candidates = find_exact_embeddings(graph, device_graph, max_embeddings=budget.exact_embedding_cap)

    if not candidates:
        for _ in range(budget.restarts):
            restart_seed = int(rng.integers(0, 2**31 - 1))
            seedling = greedy_embedding(graph, properties, seed=restart_seed)
            refined = anneal_embedding(
                graph,
                properties,
                seedling,
                iterations=budget.anneal_iterations,
                initial_temperature=budget.anneal_initial_temperature,
                cooling=budget.anneal_cooling,
                include_readout=include_readout,
                seed=restart_seed + 1,
            )
            candidates.append(refined)

    scored = [
        (embedding_cost(graph, candidate, properties, include_readout=include_readout), candidate)
        for candidate in candidates
    ]
    best_cost, best_embedding = min(scored, key=lambda item: item[0])
    match = DeviceMatch(
        device=properties.name,
        score=best_cost,
        exact=best_embedding.exact,
        layout=dict(best_embedding.mapping),
    )
    if key is not None:
        from repro.core.cache import embedding_cache

        embedding_cache().put(key, match)
    return match


def rank_devices_scalable(
    pattern: PatternLike,
    targets: Iterable[TargetLike],
    budget: Optional[MatchBudget] = None,
    include_readout: bool = True,
    seed: SeedLike = None,
    use_cache: bool = True,
) -> List[DeviceMatch]:
    """Rank every feasible device using the budgeted matcher, best first."""
    matches: List[DeviceMatch] = []
    for target in targets:
        match = scalable_match_device(
            pattern,
            target,
            budget=budget,
            include_readout=include_readout,
            seed=seed,
            use_cache=use_cache,
        )
        if match is not None:
            matches.append(match)
    return sorted(matches, key=lambda match: (match.score, not match.exact, match.device))


def best_device_scalable(
    pattern: PatternLike,
    targets: Iterable[TargetLike],
    budget: Optional[MatchBudget] = None,
    seed: SeedLike = None,
    use_cache: bool = True,
) -> DeviceMatch:
    """The single best device under the budgeted matcher."""
    ranking = rank_devices_scalable(pattern, targets, budget=budget, seed=seed, use_cache=use_cache)
    if not ranking:
        raise MatchingError("No device in the candidate set can host the requested topology")
    return ranking[0]
