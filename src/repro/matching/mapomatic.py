"""Cross-device layout/topology matching (the Mapomatic-equivalent front end).

QRIO's topology ranking strategy asks: *which device in the shortlisted set
most resembles the user's requested topology?*  The answer is obtained by
treating the user's topology circuit as a pattern, enumerating embeddings of
that pattern on every candidate device and returning the device whose best
embedding has the lowest error cost (Section 3.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

import networkx as nx

from repro.backends.backend import Backend
from repro.backends.properties import BackendProperties
from repro.circuits.circuit import QuantumCircuit
from repro.matching.interaction import interaction_graph
from repro.matching.scoring import ScoredEmbedding, best_embedding
from repro.matching.subgraph import DEFAULT_MAX_EMBEDDINGS
from repro.utils.exceptions import MatchingError
from repro.utils.rng import SeedLike

PatternLike = Union[QuantumCircuit, nx.Graph]
TargetLike = Union[Backend, BackendProperties]


@dataclass(frozen=True)
class DeviceMatch:
    """Result of matching a pattern against one device."""

    device: str
    score: float
    exact: bool
    layout: Dict[int, int]


def _as_pattern(pattern: PatternLike) -> nx.Graph:
    if isinstance(pattern, QuantumCircuit):
        return interaction_graph(pattern)
    if isinstance(pattern, nx.Graph):
        return pattern
    raise MatchingError("pattern must be a QuantumCircuit or a networkx Graph")


def _as_properties(target: TargetLike) -> BackendProperties:
    if isinstance(target, Backend):
        return target.properties
    if isinstance(target, BackendProperties):
        return target
    raise MatchingError("target must be a Backend or BackendProperties")


def match_device(
    pattern: PatternLike,
    target: TargetLike,
    max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
    include_readout: bool = True,
    seed: SeedLike = None,
    use_cache: bool = True,
) -> Optional[DeviceMatch]:
    """Score ``pattern`` against one device; ``None`` if it cannot fit at all.

    Embedding searches are memoized per (pattern, device, calibration epoch)
    in the fleet-wide embedding cache; see
    :func:`repro.matching.scoring.evaluate_embeddings`.
    """
    graph = _as_pattern(pattern)
    properties = _as_properties(target)
    if graph.number_of_nodes() > properties.num_qubits:
        return None
    scored = best_embedding(
        graph,
        properties,
        max_embeddings=max_embeddings,
        include_readout=include_readout,
        seed=seed,
        use_cache=use_cache,
    )
    if scored is None:
        return None
    return DeviceMatch(
        device=properties.name,
        score=scored.score,
        exact=scored.exact,
        layout=dict(scored.embedding.mapping),
    )


def rank_devices(
    pattern: PatternLike,
    targets: Iterable[TargetLike],
    max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
    include_readout: bool = True,
    seed: SeedLike = None,
    use_cache: bool = True,
) -> List[DeviceMatch]:
    """Score ``pattern`` on every device and return matches sorted best-first.

    Devices that cannot host the pattern (fewer qubits than pattern nodes)
    are omitted; exact embeddings rank ahead of penalised greedy embeddings
    with equal scores.
    """
    matches: List[DeviceMatch] = []
    for target in targets:
        match = match_device(
            pattern,
            target,
            max_embeddings=max_embeddings,
            include_readout=include_readout,
            seed=seed,
            use_cache=use_cache,
        )
        if match is not None:
            matches.append(match)
    return sorted(matches, key=lambda match: (match.score, not match.exact, match.device))


def best_overall_device(
    pattern: PatternLike,
    targets: Iterable[TargetLike],
    max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
    seed: SeedLike = None,
) -> DeviceMatch:
    """The single best device for ``pattern`` across ``targets``."""
    ranking = rank_devices(pattern, targets, max_embeddings=max_embeddings, seed=seed)
    if not ranking:
        raise MatchingError("No device in the candidate set can host the requested topology")
    return ranking[0]
