"""Error-aware scoring of embeddings (Mapomatic's second step).

"each identified subgraph is scored using a cost function that incorporates
device error characteristics to estimate the amount of error the circuit
might suffer if it is mapped to that particular subgraph.  Finally, the
subgraph for which the score is the lowest is considered the most suitable
location for the target quantum circuit."  — paper, Section 3.4.2

The cost of an embedding is the expected accumulated error of running the
pattern on the chosen qubits:

* each two-qubit interaction contributes the calibrated error of the device
  edge it lands on, weighted by its multiplicity;
* interactions that land on *uncoupled* qubits (greedy fallback embeddings)
  are charged the error of the cheapest connecting path plus a SWAP overhead
  of three CX per missing hop — this is what routing would actually cost;
* every mapped qubit contributes its readout error once (the pattern is
  assumed to be measured, as QRIO jobs always are).

Lower scores are better.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.backends.properties import BackendProperties
from repro.matching.subgraph import DEFAULT_MAX_EMBEDDINGS, Embedding, find_embeddings
from repro.utils.exceptions import MatchingError
from repro.utils.rng import SeedLike


def _cache_key_for(
    pattern: nx.Graph,
    properties: BackendProperties,
    seed: SeedLike,
    *extra: Hashable,
) -> Optional[Tuple[Hashable, ...]]:
    """Embedding-cache key for one (pattern, device, calibration) query.

    Returns ``None`` when the query is not cacheable: only integer seeds are
    memoized.  ``None`` means fresh entropy per call and a generator seed has
    hidden mutable state — caching either would silently replace independent
    random searches (e.g. best-of-K restarts) with the first draw.  The cache
    module is imported lazily because ``repro.core``'s package init pulls in
    the strategies, which import this module.
    """
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        return None
    from repro.core.cache import EmbeddingCache, calibration_fingerprint, pattern_hash

    return EmbeddingCache.key(
        pattern_hash(pattern),
        properties.name,
        calibration_fingerprint(properties),
        *extra,
        int(seed),
    )

#: Number of CX gates needed to bridge one missing hop between uncoupled qubits.
SWAPS_CX_OVERHEAD = 3.0


@dataclass(frozen=True)
class ScoredEmbedding:
    """An embedding together with its error score (lower is better)."""

    embedding: Embedding
    score: float
    device: str

    @property
    def exact(self) -> bool:
        """``True`` when every pattern edge landed on a device coupling."""
        return self.embedding.exact


def embedding_cost(
    pattern: nx.Graph,
    embedding: Embedding,
    properties: BackendProperties,
    include_readout: bool = True,
) -> float:
    """Error cost of running ``pattern`` under ``embedding`` on the device."""
    device_graph = properties.graph()
    distances: Optional[Dict[int, Dict[int, int]]] = None
    cost = 0.0
    for a, b, data in pattern.edges(data=True):
        multiplicity = float(data.get("weight", 1))
        physical_a = embedding.physical(a)
        physical_b = embedding.physical(b)
        if device_graph.has_edge(physical_a, physical_b):
            cost += multiplicity * properties.edge_error(physical_a, physical_b)
            continue
        if distances is None:
            distances = dict(nx.all_pairs_shortest_path_length(device_graph))
        hops = distances[physical_a].get(physical_b)
        if hops is None:
            raise MatchingError(
                f"Device '{properties.name}' cannot connect qubits {physical_a} and {physical_b}"
            )
        worst_edge = max(properties.two_qubit_error.values()) if properties.two_qubit_error else 0.0
        # One direct CX plus three CX per extra hop, charged at the device's
        # worst edge error (pessimistic, as routing paths are not yet known).
        cost += multiplicity * worst_edge * (1.0 + SWAPS_CX_OVERHEAD * (hops - 1))
    if include_readout:
        for pattern_node in pattern.nodes:
            if pattern_node in embedding.mapping:
                physical = embedding.physical(pattern_node)
                cost += properties.readout_error.get(physical, 0.0)
    return cost


def evaluate_embeddings(
    pattern: nx.Graph,
    properties: BackendProperties,
    max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
    include_readout: bool = True,
    seed: SeedLike = None,
    use_cache: bool = True,
) -> List[ScoredEmbedding]:
    """Score every candidate embedding of ``pattern`` on one device, best first.

    Results are memoized in the fleet-wide embedding cache, keyed by the
    canonical pattern hash, the device and its calibration fingerprint (plus
    the search parameters), so repeated scheduling requests for the same
    pattern skip VF2 enumeration entirely until the device recalibrates.
    Pass ``use_cache=False`` to force a fresh search.
    """
    key = (
        _cache_key_for(pattern, properties, seed, "scored", max_embeddings, include_readout)
        if use_cache
        else None
    )
    if key is not None:
        from repro.core.cache import embedding_cache

        hit = embedding_cache().get(key)
        if hit is not None:
            return _copy_scored(hit)
    embeddings = find_embeddings(pattern, properties, max_embeddings=max_embeddings, seed=seed)
    scored = [
        ScoredEmbedding(
            embedding=embedding,
            score=embedding_cost(pattern, embedding, properties, include_readout=include_readout),
            device=properties.name,
        )
        for embedding in embeddings
    ]
    scored = sorted(scored, key=lambda item: item.score)
    if key is not None:
        from repro.core.cache import embedding_cache

        # Store (and later serve) copies: Embedding.mapping is a mutable
        # dict, and neither the cold caller nor a warm caller may be able to
        # poison the shared cache by mutating their result.
        embedding_cache().put(key, _copy_scored(scored))
    return scored


def _copy_scored(items: Sequence[ScoredEmbedding]) -> List[ScoredEmbedding]:
    """Defensive copies of scored embeddings (fresh mapping dicts)."""
    return [
        ScoredEmbedding(
            embedding=Embedding(mapping=dict(item.embedding.mapping), exact=item.embedding.exact),
            score=item.score,
            device=item.device,
        )
        for item in items
    ]


def best_embedding(
    pattern: nx.Graph,
    properties: BackendProperties,
    max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
    include_readout: bool = True,
    seed: SeedLike = None,
    use_cache: bool = True,
) -> Optional[ScoredEmbedding]:
    """The lowest-cost embedding of ``pattern`` on one device (or ``None``)."""
    scored = evaluate_embeddings(
        pattern,
        properties,
        max_embeddings=max_embeddings,
        include_readout=include_readout,
        seed=seed,
        use_cache=use_cache,
    )
    return scored[0] if scored else None
