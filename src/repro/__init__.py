"""repro — a reproduction of "Empowering the Quantum Cloud User with QRIO".

The package is organised in layers:

* ``repro.circuits`` / ``repro.qasm`` / ``repro.simulators`` / ``repro.backends``
  / ``repro.transpiler`` — a self-contained quantum software substrate
  (circuit IR, OpenQASM 2 front end, statevector/stabilizer/noisy simulators,
  simulated devices, transpiler);
* ``repro.matching`` / ``repro.fidelity`` — the scoring engines QRIO relies
  on (Mapomatic-style subgraph matching and Clifford-canary fidelity
  estimation);
* ``repro.cluster`` — a Kubernetes-like cluster substrate (nodes, labels,
  jobs, scheduling framework, simulated containers);
* ``repro.core`` — QRIO itself (visualizer, meta server, master server,
  scheduler, baselines, the :class:`~repro.core.QRIO` facade);
* ``repro.cloud`` — the discrete-event quantum-cloud simulator (arrival
  traces, per-device queues, allocation policies, calibration drift);
* ``repro.policies`` — the unified placement-policy API: one
  :class:`~repro.policies.PlacementPolicy` protocol (filter → score →
  select), a string-keyed registry with parameterized lookup
  (``resolve_policy("fidelity:queue_weight=0.3")``), a :class:`Pipeline`
  composition combinator, and thin adapters so the same policy routes jobs
  identically under the orchestrator, cluster and cloud engines;
* ``repro.service`` — the unified job service: one
  :class:`~repro.service.QRIOService` submission API with an explicit
  ``QUEUED → MATCHING → RUNNING → DONE/FAILED`` lifecycle, structural batch
  deduplication, one :class:`~repro.service.ExecutionEngine` protocol
  adapting the orchestrator, cloud and cluster layers, and an optional
  concurrent runtime (``workers=N``: priority scheduling, per-device lanes,
  backpressure, futures-style handles);
* ``repro.workloads`` / ``repro.experiments`` — the paper's evaluation
  workloads and the drivers regenerating every table and figure.
"""

from repro.backends import Backend, BackendProperties, FleetSpec, generate_fleet, three_device_testbed
from repro.circuits import QuantumCircuit
from repro.core import QRIO, JobOutcome, UserRequirements
from repro.policies import (
    Pipeline,
    PlacementContext,
    PlacementDecision,
    PlacementPolicy,
    register_policy,
    resolve_policy,
)
from repro.qasm import dump_qasm, parse_qasm
from repro.service import (
    CloudEngine,
    ClusterEngine,
    ExecutionEngine,
    JobHandle,
    JobRequirements,
    JobSpec,
    JobState,
    JobStatus,
    OrchestratorEngine,
    QRIOService,
    ServiceResult,
)
from repro.simulators import NoiseModel, SimulationResult, hellinger_fidelity
from repro.transpiler import transpile

__version__ = "1.2.0"

__all__ = [
    "Backend",
    "BackendProperties",
    "CloudEngine",
    "ClusterEngine",
    "ExecutionEngine",
    "FleetSpec",
    "JobHandle",
    "JobOutcome",
    "JobRequirements",
    "JobSpec",
    "JobState",
    "JobStatus",
    "NoiseModel",
    "OrchestratorEngine",
    "Pipeline",
    "PlacementContext",
    "PlacementDecision",
    "PlacementPolicy",
    "QRIO",
    "QRIOService",
    "QuantumCircuit",
    "ServiceResult",
    "SimulationResult",
    "UserRequirements",
    "__version__",
    "dump_qasm",
    "generate_fleet",
    "hellinger_fidelity",
    "parse_qasm",
    "register_policy",
    "resolve_policy",
    "three_device_testbed",
    "transpile",
]
