"""Quantum-cloud load simulation: arrivals, queues, policies and drift.

The paper motivates QRIO with the state of today's quantum cloud — thousands
of queued jobs, multi-day wait times and calibration data that drifts by 2-3x
between calibration cycles (Sections 1 and 2.2, citing the IISWC'21 cloud
characterisation study) — but its prototype schedules a single job at a time.
This subpackage supplies the missing substrate so the multi-job future-work
direction can be evaluated end to end:

* :mod:`repro.scenarios.arrivals` — job-arrival traces drawn from the
  workload suites (``repro.cloud.arrivals`` remains a deprecation shim);
* :mod:`repro.cloud.queueing` — per-device queues and a service-time model;
* :mod:`repro.cloud.policies` — allocation policies from random through
  queue-aware fidelity scheduling;
* :mod:`repro.cloud.calibration` — calibration-cycle drift models;
* :mod:`repro.cloud.simulation` — the discrete-event simulator tying the
  pieces together;
* :mod:`repro.scenarios.metrics` — wait/fairness/utilisation metrics
  (``repro.cloud.metrics`` remains a deprecation shim).
"""

from repro.cloud.calibration import CalibrationDriftModel, drift_fleet, drift_history
from repro.scenarios.arrivals import ArrivalSpec, JobRequest, generate_trace, trace_summary
from repro.scenarios.metrics import jain_fairness_index, summarise_waits, wait_fairness
from repro.cloud.policies import (
    AllocationContext,
    AllocationPolicy,
    FidelityPolicy,
    LeastLoadedPolicy,
    QueueAwareFidelityPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    builtin_policies,
)
from repro.cloud.queueing import DeviceQueue, ExecutionTimeModel, QueueSlot, build_queues
from repro.cloud.simulation import (
    CloudSession,
    CloudSimulationConfig,
    CloudSimulationResult,
    CloudSimulator,
    JobRecord,
    compare_policies,
    render_policy_comparison,
)

__all__ = [
    "AllocationContext",
    "AllocationPolicy",
    "ArrivalSpec",
    "CalibrationDriftModel",
    "CloudSession",
    "CloudSimulationConfig",
    "CloudSimulationResult",
    "CloudSimulator",
    "DeviceQueue",
    "ExecutionTimeModel",
    "FidelityPolicy",
    "JobRecord",
    "JobRequest",
    "LeastLoadedPolicy",
    "QueueAwareFidelityPolicy",
    "QueueSlot",
    "RandomPolicy",
    "RoundRobinPolicy",
    "build_queues",
    "builtin_policies",
    "compare_policies",
    "drift_fleet",
    "drift_history",
    "generate_trace",
    "jain_fairness_index",
    "render_policy_comparison",
    "summarise_waits",
    "trace_summary",
    "wait_fairness",
]
