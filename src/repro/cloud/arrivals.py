"""Deprecated shim — the arrival machinery moved to :mod:`repro.scenarios.arrivals`.

The Poisson/diurnal trace generator started life inside the cloud simulator;
it is now the engine-neutral scenario layer's :class:`ArrivalProcess`
protocol (with MMPP, Pareto, flash-crowd and closed-loop siblings).  This
module re-exports the legacy surface unchanged — ``generate_trace`` still
produces draw-for-draw identical traces — so existing imports keep working,
but new code should import from :mod:`repro.scenarios` directly.
"""

from __future__ import annotations

import warnings

from repro.scenarios.arrivals import (  # noqa: F401 - re-exported legacy surface
    ArrivalSpec,
    JobRequest,
    PoissonProcess,
    generate_requests,
    generate_trace,
    trace_summary,
)

warnings.warn(
    "repro.cloud.arrivals is deprecated; import from repro.scenarios (e.g. "
    "repro.scenarios.arrivals) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "ArrivalSpec",
    "JobRequest",
    "PoissonProcess",
    "generate_requests",
    "generate_trace",
    "trace_summary",
]
