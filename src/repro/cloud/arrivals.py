"""Job-arrival traces for the multi-job cloud simulation.

Real quantum-cloud measurement studies (the IISWC'21 characterisation the
paper cites) observe bursty streams of mostly-small jobs from many users.
This module generates synthetic traces with the same coarse structure: a
Poisson arrival process (optionally modulated by a day/night load factor)
whose jobs are drawn from a weighted :class:`~repro.workloads.WorkloadSuite`
and attributed to a fixed population of users.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.utils.exceptions import CloudError
from repro.utils.rng import SeedLike, ensure_generator
from repro.utils.validation import require_positive_int
from repro.workloads.suites import WorkloadSuite, nisq_mix_suite


@dataclass(frozen=True)
class JobRequest:
    """One job in an arrival trace."""

    #: Monotonically increasing arrival index.
    index: int
    #: Arrival time in seconds from the start of the trace.
    arrival_time: float
    #: Workload-suite entry key the job was drawn from.
    workload_key: str
    #: The job's circuit (already built; traces are reproducible artefacts).
    circuit: QuantumCircuit
    #: ``"fidelity"`` or ``"topology"`` — the strategy the submitting user picks.
    strategy: str
    #: Fidelity requirement carried by fidelity-strategy submissions.
    fidelity_threshold: float
    #: Number of shots requested.
    shots: int
    #: Identifier of the submitting user (for fairness metrics).
    user: str

    @property
    def name(self) -> str:
        """Unique job name within the trace."""
        return f"{self.workload_key}-{self.index:04d}"


@dataclass(frozen=True)
class ArrivalSpec:
    """Parameters of a synthetic arrival trace."""

    #: Mean arrival rate in jobs per hour.
    rate_per_hour: float = 60.0
    #: Number of jobs in the trace.
    num_jobs: int = 100
    #: Number of distinct users submitting jobs.
    num_users: int = 8
    #: Shots requested by every job.
    shots: int = 1024
    #: Relative amplitude of the diurnal modulation (0 disables it); the rate
    #: oscillates between ``rate * (1 - amplitude)`` and ``rate * (1 + amplitude)``
    #: over a 24-hour period.
    diurnal_amplitude: float = 0.0
    #: Workload suite jobs are drawn from; ``None`` uses the NISQ mix.
    suite: Optional[WorkloadSuite] = None

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise CloudError("rate_per_hour must be positive")
        require_positive_int(self.num_jobs, "num_jobs")
        require_positive_int(self.num_users, "num_users")
        require_positive_int(self.shots, "shots")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise CloudError("diurnal_amplitude must lie in [0, 1)")

    def workload_suite(self) -> WorkloadSuite:
        """The suite the trace samples from."""
        return self.suite if self.suite is not None else nisq_mix_suite()


def _instantaneous_rate(spec: ArrivalSpec, time_s: float) -> float:
    """Arrival rate (jobs per second) at ``time_s`` under the diurnal model."""
    base = spec.rate_per_hour / 3600.0
    if spec.diurnal_amplitude <= 0.0:
        return base
    phase = 2.0 * math.pi * (time_s / 86_400.0)
    return base * (1.0 + spec.diurnal_amplitude * math.sin(phase))


def generate_trace(spec: ArrivalSpec, seed: SeedLike = None) -> List[JobRequest]:
    """Generate a reproducible arrival trace from ``spec``.

    Inter-arrival gaps are exponential with the (possibly time-varying) rate
    evaluated at the previous arrival, jobs are drawn from the suite's
    weighted mix, and users are assigned uniformly at random.
    """
    rng = ensure_generator(seed)
    suite = spec.workload_suite()
    requests: List[JobRequest] = []
    clock = 0.0
    for index in range(spec.num_jobs):
        rate = _instantaneous_rate(spec, clock)
        clock += float(rng.exponential(1.0 / rate))
        entry = suite.sample(rng=rng)
        user = f"user-{int(rng.integers(0, spec.num_users)):02d}"
        requests.append(
            JobRequest(
                index=index,
                arrival_time=clock,
                workload_key=entry.key,
                circuit=entry.circuit(),
                strategy=entry.strategy,
                fidelity_threshold=entry.fidelity_threshold,
                shots=spec.shots,
                user=user,
            )
        )
    return requests


def trace_summary(requests: List[JobRequest]) -> Dict[str, object]:
    """Aggregate description of a trace (used by reports and logs)."""
    if not requests:
        return {"num_jobs": 0, "duration_s": 0.0, "workload_mix": {}, "num_users": 0}
    mix: Dict[str, int] = {}
    users = set()
    for request in requests:
        mix[request.workload_key] = mix.get(request.workload_key, 0) + 1
        users.add(request.user)
    return {
        "num_jobs": len(requests),
        "duration_s": requests[-1].arrival_time,
        "workload_mix": dict(sorted(mix.items())),
        "num_users": len(users),
    }
