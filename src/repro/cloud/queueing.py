"""Per-device queues and the service-time model of the cloud simulation.

Today's quantum cloud serialises jobs per device: each machine works through
its own queue, so a user's wait time is the backlog of the device their job
was routed to.  :class:`DeviceQueue` models exactly that (single server,
first-come-first-served), and :class:`ExecutionTimeModel` supplies the
service times — circuit duration times shots, plus per-job classical
overheads for transpilation and result handling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.simulators.durations import GateDurations, circuit_duration
from repro.utils.exceptions import CloudError


@dataclass(frozen=True)
class ExecutionTimeModel:
    """Deterministic estimate of how long one job occupies a device.

    The service time is::

        overhead + transpile_overhead * num_qubits_device
                 + shots * shot_duration(circuit) + readout margin

    ``shot_duration`` is the scheduled circuit duration under the gate-length
    model, scaled by a routing factor that charges sparse devices for the
    SWAP overhead their topology forces (the simulation selects devices
    before transpiling, so the factor stands in for the real SWAP count).
    """

    durations: GateDurations = field(default_factory=GateDurations)
    #: Fixed per-job overhead in seconds (queue handling, binary upload,
    #: parameter binding, result post-processing).  Cloud measurement studies
    #: put the non-shot part of a job at tens of seconds, which is what makes
    #: device queues back up in the first place.
    job_overhead_s: float = 30.0
    #: Classical transpilation overhead per device qubit, in seconds.
    transpile_overhead_per_qubit_s: float = 0.5
    #: Extra duration multiplier applied per missing unit of average degree
    #: below 3 (sparser devices need more SWAPs, so shots run longer).
    sparse_routing_penalty: float = 0.15

    def __post_init__(self) -> None:
        if self.job_overhead_s < 0 or self.transpile_overhead_per_qubit_s < 0:
            raise CloudError("Execution-time overheads must be non-negative")
        if self.sparse_routing_penalty < 0:
            raise CloudError("sparse_routing_penalty must be non-negative")

    # ------------------------------------------------------------------ #
    def shot_duration_s(self, circuit: QuantumCircuit, backend: Backend) -> float:
        """Duration of one shot of ``circuit`` on ``backend`` in seconds."""
        base_ns = circuit_duration(circuit, self.durations)
        properties = backend.properties
        if properties.num_qubits > 1:
            average_degree = 2.0 * len(properties.coupling_map) / properties.num_qubits
        else:
            average_degree = 0.0
        sparsity_gap = max(0.0, 3.0 - average_degree)
        routing_factor = 1.0 + self.sparse_routing_penalty * sparsity_gap
        return base_ns * routing_factor * 1e-9

    def service_time_s(self, circuit: QuantumCircuit, backend: Backend, shots: int) -> float:
        """Total device occupancy of one job in seconds."""
        if shots <= 0:
            raise CloudError("shots must be positive")
        classical = self.job_overhead_s + self.transpile_overhead_per_qubit_s * backend.num_qubits
        quantum = shots * self.shot_duration_s(circuit, backend)
        return classical + quantum


@dataclass(frozen=True)
class QueueSlot:
    """The scheduled occupancy of one job on one device."""

    job_name: str
    device: str
    arrival_time: float
    start_time: float
    finish_time: float

    @property
    def wait_time(self) -> float:
        """Seconds the job spent queued before its shots started."""
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Seconds the job occupied the device."""
        return self.finish_time - self.start_time

    @property
    def turnaround_time(self) -> float:
        """Seconds from submission to completion."""
        return self.finish_time - self.arrival_time


class DeviceQueue:
    """Single-server FCFS queue in front of one quantum device."""

    def __init__(self, device: str) -> None:
        self.device = device
        self._next_free = 0.0
        self._slots: List[QueueSlot] = []

    # ------------------------------------------------------------------ #
    @property
    def next_free_time(self) -> float:
        """Earliest time a newly routed job could start on this device."""
        return self._next_free

    def backlog(self, now: float) -> float:
        """Seconds of work already committed beyond ``now``."""
        return max(0.0, self._next_free - now)

    def predicted_wait(self, arrival_time: float) -> float:
        """Wait a job arriving at ``arrival_time`` would experience."""
        return max(0.0, self._next_free - arrival_time)

    # ------------------------------------------------------------------ #
    def enqueue(self, job_name: str, arrival_time: float, service_time: float) -> QueueSlot:
        """Append a job to the queue and return its scheduled slot."""
        if service_time < 0:
            raise CloudError("service_time must be non-negative")
        if arrival_time < 0:
            raise CloudError("arrival_time must be non-negative")
        start = max(arrival_time, self._next_free)
        finish = start + service_time
        slot = QueueSlot(
            job_name=job_name,
            device=self.device,
            arrival_time=arrival_time,
            start_time=start,
            finish_time=finish,
        )
        self._next_free = finish
        self._slots.append(slot)
        return slot

    # ------------------------------------------------------------------ #
    @property
    def slots(self) -> List[QueueSlot]:
        """All scheduled slots in submission order."""
        return list(self._slots)

    def busy_time(self) -> float:
        """Total seconds of device occupancy committed so far."""
        return sum(slot.service_time for slot in self._slots)

    def utilisation(self, horizon: Optional[float] = None) -> float:
        """Fraction of the horizon the device spends executing jobs.

        ``horizon`` defaults to the device's own makespan, giving the
        utilisation *while it was in use*; pass the simulation makespan to
        compare devices on a common denominator.
        """
        end = horizon if horizon is not None else self._next_free
        if end <= 0:
            return 0.0
        return min(1.0, self.busy_time() / end)

    def __len__(self) -> int:
        return len(self._slots)


def build_queues(devices: List[Backend]) -> Dict[str, DeviceQueue]:
    """One empty queue per device, keyed by device name."""
    return {backend.name: DeviceQueue(backend.name) for backend in devices}
