"""Deprecated shim — the metric helpers moved to :mod:`repro.scenarios.metrics`.

Wait-time summaries (now with p50/p95/p99 percentiles), Jain fairness and
the fixed-width table renderer describe *any* engine's run, not just the
cloud simulator's, so they live in the engine-neutral scenario layer.  This
module re-exports them unchanged for existing imports; new code should
import from :mod:`repro.scenarios` directly.
"""

from __future__ import annotations

import warnings

from repro.scenarios.metrics import (  # noqa: F401 - re-exported legacy surface
    WAIT_PERCENTILES,
    jain_fairness_index,
    makespan,
    per_user_mean_waits,
    render_metric_table,
    summarise_waits,
    wait_fairness,
)

warnings.warn(
    "repro.cloud.metrics is deprecated; import from repro.scenarios (e.g. "
    "repro.scenarios.metrics) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "WAIT_PERCENTILES",
    "jain_fairness_index",
    "makespan",
    "per_user_mean_waits",
    "render_metric_table",
    "summarise_waits",
    "wait_fairness",
]
