"""Wait-time, fairness and utilisation metrics for the cloud simulation."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.utils.exceptions import CloudError


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index over per-user allocations.

    Ranges from ``1/n`` (one user gets everything) to ``1.0`` (perfectly even).
    Conventionally computed over *throughput*-like quantities, so callers
    should pass something where "more is better" (e.g. inverse mean wait).
    """
    values = [float(value) for value in values]
    if not values:
        raise CloudError("jain_fairness_index needs at least one value")
    if any(value < 0 for value in values):
        raise CloudError("jain_fairness_index values must be non-negative")
    total = sum(values)
    if total == 0.0:
        return 1.0
    squares = sum(value * value for value in values)
    return (total * total) / (len(values) * squares)


def summarise_waits(waits: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p95 / max of a collection of wait times (seconds)."""
    if not waits:
        return {"mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}
    array = np.asarray(list(waits), dtype=float)
    return {
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "p95": float(np.percentile(array, 95)),
        "max": float(array.max()),
    }


def per_user_mean_waits(waits_by_user: Mapping[str, Sequence[float]]) -> Dict[str, float]:
    """Mean wait per user (the input to the fairness index)."""
    return {
        user: (float(np.mean(list(values))) if len(list(values)) else 0.0)
        for user, values in waits_by_user.items()
    }


def wait_fairness(waits_by_user: Mapping[str, Sequence[float]]) -> float:
    """Jain fairness over users' inverse mean waits (higher is fairer)."""
    means = per_user_mean_waits(waits_by_user)
    if not means:
        return 1.0
    inverse = [1.0 / (mean + 1.0) for mean in means.values()]
    return jain_fairness_index(inverse)


def render_metric_table(rows: List[Dict[str, object]], columns: List[str], title: str) -> str:
    """Fixed-width text table used by the policy-comparison report."""
    header = " ".join(f"{column:>18}" for column in columns)
    lines = [title, header, "-" * len(header)]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4f}")
            else:
                cells.append(f"{str(value):>18}")
        lines.append(" ".join(cells))
    return "\n".join(lines)
