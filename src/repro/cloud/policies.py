"""Device-allocation policies for the multi-job cloud simulation.

Each policy answers one question per arriving job: *which device should run
it?*  The roster spans the space the paper and its cited prior work discuss:

* :class:`RandomPolicy` — the paper's own baseline scheduler;
* :class:`RoundRobinPolicy` — naive load spreading;
* :class:`LeastLoadedPolicy` — queue-aware but fidelity-blind;
* :class:`FidelityPolicy` — fidelity-aware but queue-blind (QRIO's
  single-job behaviour applied to every arrival);
* :class:`QueueAwareFidelityPolicy` — the adaptive combination of fidelity
  and queueing delay in the spirit of Ravi et al. (the QCE'21 scheduler the
  related-work section contrasts QRIO against).

Fidelity estimates are cached per (workload, device, calibration epoch), so
policies remain cheap even for long traces that repeat circuit families.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.backend import Backend
from repro.scenarios.arrivals import JobRequest
from repro.cloud.queueing import DeviceQueue, ExecutionTimeModel
from repro.fidelity.canary import CliffordCanaryEstimator
from repro.fidelity.estimator import ESPEstimator
from repro.utils.exceptions import SchedulingError
from repro.utils.rng import SeedLike, ensure_generator


@dataclass
class AllocationContext:
    """Everything a policy may consult when routing one job."""

    fleet: List[Backend]
    queues: Dict[str, DeviceQueue]
    time_model: ExecutionTimeModel
    #: Monotonically increasing counter bumped whenever calibration changes;
    #: part of the fidelity-estimate cache key.
    calibration_epoch: int = 0
    #: Shared cache of fidelity estimates keyed by (workload, device, epoch).
    fidelity_cache: Dict[Tuple[str, str, int], float] = field(default_factory=dict)

    def device(self, name: str) -> Backend:
        """Look up a fleet device by name."""
        for backend in self.fleet:
            if backend.name == name:
                return backend
        raise SchedulingError(f"Unknown device '{name}'")

    def feasible_devices(self, request: JobRequest) -> List[Backend]:
        """Devices with enough qubits for the request, in stable name order."""
        feasible = [
            backend
            for backend in self.fleet
            if backend.num_qubits >= request.circuit.num_qubits
        ]
        return sorted(feasible, key=lambda backend: backend.name)

    def invalidate_fidelity_cache(self) -> None:
        """Advance the calibration epoch (used after calibration drift)."""
        self.calibration_epoch += 1


class AllocationPolicy(abc.ABC):
    """Interface of a device-allocation policy."""

    @property
    def name(self) -> str:
        """Short policy name used in reports."""
        return type(self).__name__

    @abc.abstractmethod
    def select(self, request: JobRequest, context: AllocationContext) -> str:
        """Return the name of the device ``request`` should run on."""

    # ------------------------------------------------------------------ #
    def _require_feasible(self, request: JobRequest, context: AllocationContext) -> List[Backend]:
        feasible = context.feasible_devices(request)
        if not feasible:
            raise SchedulingError(
                f"No device in the fleet can host job '{request.name}' "
                f"({request.circuit.num_qubits} qubits)"
            )
        return feasible


class RandomPolicy(AllocationPolicy):
    """Uniformly random choice among feasible devices (the paper's baseline)."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = ensure_generator(seed)

    def select(self, request: JobRequest, context: AllocationContext) -> str:
        feasible = self._require_feasible(request, context)
        return feasible[int(self._rng.integers(0, len(feasible)))].name


class RoundRobinPolicy(AllocationPolicy):
    """Cycle through feasible devices in name order."""

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, request: JobRequest, context: AllocationContext) -> str:
        feasible = self._require_feasible(request, context)
        choice = feasible[self._cursor % len(feasible)]
        self._cursor += 1
        return choice.name


class LeastLoadedPolicy(AllocationPolicy):
    """Route to the feasible device with the smallest predicted wait."""

    def select(self, request: JobRequest, context: AllocationContext) -> str:
        feasible = self._require_feasible(request, context)
        return min(
            feasible,
            key=lambda backend: (
                context.queues[backend.name].predicted_wait(request.arrival_time),
                backend.name,
            ),
        ).name


class FidelityPolicy(AllocationPolicy):
    """Route every job to the device with the best estimated fidelity.

    ``estimator`` selects how fidelity is estimated: ``"esp"`` uses the
    analytic product formula (fast — the default for long traces) and
    ``"canary"`` runs the Clifford-canary protocol QRIO's meta server uses,
    which is slower but matches the paper's single-job behaviour exactly.
    """

    def __init__(self, estimator: str = "esp", canary_shots: int = 256, seed: SeedLike = None) -> None:
        if estimator not in ("esp", "canary"):
            raise SchedulingError("estimator must be 'esp' or 'canary'")
        self._kind = estimator
        self._seed = seed
        self._esp = ESPEstimator(seed=seed)
        self._canary = CliffordCanaryEstimator(shots=canary_shots, seed=seed)

    @property
    def name(self) -> str:
        return f"{type(self).__name__}[{self._kind}]"

    # ------------------------------------------------------------------ #
    def estimated_fidelity(self, request: JobRequest, backend: Backend, context: AllocationContext) -> float:
        """Cached fidelity estimate of the request's circuit on ``backend``."""
        key = (request.workload_key, backend.name, context.calibration_epoch)
        if key in context.fidelity_cache:
            return context.fidelity_cache[key]
        if self._kind == "esp":
            value = self._esp.estimate(request.circuit, backend).esp
        else:
            value = self._canary.estimate(request.circuit, backend).canary_fidelity
        context.fidelity_cache[key] = value
        return value

    def select(self, request: JobRequest, context: AllocationContext) -> str:
        feasible = self._require_feasible(request, context)
        return max(
            feasible,
            key=lambda backend: (self.estimated_fidelity(request, backend, context), backend.name),
        ).name


class QueueAwareFidelityPolicy(FidelityPolicy):
    """Trade estimated fidelity against predicted queueing delay.

    The utility of routing a job to device *d* is::

        fidelity(d) - wait_weight * predicted_wait(d) / wait_scale_s

    With ``wait_weight = 0`` the policy degenerates to :class:`FidelityPolicy`;
    large weights approach :class:`LeastLoadedPolicy`.  This is the
    fidelity/queue trade-off of the adaptive quantum-cloud scheduler in the
    paper's related work.
    """

    def __init__(
        self,
        wait_weight: float = 0.3,
        wait_scale_s: float = 600.0,
        estimator: str = "esp",
        canary_shots: int = 256,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(estimator=estimator, canary_shots=canary_shots, seed=seed)
        if wait_weight < 0:
            raise SchedulingError("wait_weight must be non-negative")
        if wait_scale_s <= 0:
            raise SchedulingError("wait_scale_s must be positive")
        self._wait_weight = wait_weight
        self._wait_scale = wait_scale_s

    @property
    def name(self) -> str:
        return f"QueueAwareFidelityPolicy[{self._kind}, w={self._wait_weight}]"

    def utility(self, request: JobRequest, backend: Backend, context: AllocationContext) -> float:
        """The combined fidelity/wait utility of one device for one request."""
        fidelity = self.estimated_fidelity(request, backend, context)
        wait = context.queues[backend.name].predicted_wait(request.arrival_time)
        return fidelity - self._wait_weight * wait / self._wait_scale

    def select(self, request: JobRequest, context: AllocationContext) -> str:
        feasible = self._require_feasible(request, context)
        return max(
            feasible,
            key=lambda backend: (self.utility(request, backend, context), backend.name),
        ).name


def builtin_policies(seed: SeedLike = None) -> List[AllocationPolicy]:
    """The standard policy roster used by the comparison experiment."""
    return [
        RandomPolicy(seed=seed),
        RoundRobinPolicy(),
        LeastLoadedPolicy(),
        FidelityPolicy(estimator="esp", seed=seed),
        QueueAwareFidelityPolicy(estimator="esp", seed=seed),
    ]
