"""The discrete-event quantum-cloud simulator.

Jobs arrive according to a trace, a policy routes each arrival to a device,
and every device works through its own first-come-first-served queue with
deterministic service times.  Because routing happens at arrival time and
queues are single-server FCFS, processing arrivals in order is an exact
discrete-event simulation — no future event can change a decision already
made, which mirrors how today's quantum clouds commit jobs to a machine at
submission time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.backends.backend import Backend
from repro.scenarios.arrivals import JobRequest
from repro.scenarios.metrics import render_metric_table, summarise_waits, wait_fairness
from repro.cloud.policies import AllocationContext, AllocationPolicy, FidelityPolicy
from repro.cloud.queueing import DeviceQueue, ExecutionTimeModel, QueueSlot, build_queues
from repro.core.cache import calibration_fingerprint, structural_circuit_hash
from repro.fidelity.canary import achieved_fidelity
from repro.fidelity.estimator import ESPEstimator
from repro.utils.exceptions import CloudError, SchedulingError
from repro.utils.rng import SeedLike, derive_seed


@dataclass(frozen=True)
class CloudSimulationConfig:
    """Knobs of one cloud-simulation run."""

    #: Service-time model shared by all devices.
    time_model: ExecutionTimeModel = field(default_factory=ExecutionTimeModel)
    #: How to report per-job fidelity: ``"none"`` (skip), ``"esp"`` (analytic
    #: estimate on the chosen device) or ``"execute"`` (noisy execution vs the
    #: ideal reference — accurate but slow, intended for small traces).
    fidelity_report: str = "esp"
    #: Shots used when ``fidelity_report == "execute"``.
    execution_shots: int = 256
    #: Reuse ``"execute"``-mode fidelity results across jobs whose circuits
    #: share the same structure on the same device calibration.  Repeat-heavy
    #: traces (the common cloud pattern) then pay for one noisy execution per
    #: distinct (circuit, device, calibration) instead of one per job.
    reuse_fidelity_cache: bool = True
    #: Base seed for fidelity execution and estimator tie-breaking.
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fidelity_report not in ("none", "esp", "execute"):
            raise CloudError("fidelity_report must be 'none', 'esp' or 'execute'")
        if self.execution_shots <= 0:
            raise CloudError("execution_shots must be positive")


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job in the simulation."""

    request: JobRequest
    device: str
    slot: QueueSlot
    fidelity: Optional[float] = None

    @property
    def wait_time(self) -> float:
        """Seconds spent queued."""
        return self.slot.wait_time

    @property
    def turnaround_time(self) -> float:
        """Seconds from submission to completion."""
        return self.slot.turnaround_time

    @property
    def user(self) -> str:
        """Submitting user."""
        return self.request.user


@dataclass
class CloudSimulationResult:
    """All job records of one run plus the final queue state."""

    policy_name: str
    records: List[JobRecord]
    queues: Dict[str, DeviceQueue]

    # ------------------------------------------------------------------ #
    # Wait / turnaround metrics
    # ------------------------------------------------------------------ #
    def waits(self) -> List[float]:
        """Per-job wait times in arrival order."""
        return [record.wait_time for record in self.records]

    def mean_wait(self) -> float:
        """Average queueing delay in seconds."""
        waits = self.waits()
        return sum(waits) / len(waits) if waits else 0.0

    def wait_summary(self) -> Dict[str, float]:
        """Mean / median / p95 / max wait."""
        return summarise_waits(self.waits())

    def mean_turnaround(self) -> float:
        """Average submission-to-completion latency in seconds."""
        if not self.records:
            return 0.0
        return sum(record.turnaround_time for record in self.records) / len(self.records)

    def makespan(self) -> float:
        """Completion time of the last job."""
        return max((record.slot.finish_time for record in self.records), default=0.0)

    # ------------------------------------------------------------------ #
    # Fidelity, fairness, utilisation
    # ------------------------------------------------------------------ #
    def mean_fidelity(self) -> Optional[float]:
        """Average reported fidelity (``None`` when fidelity reporting was off)."""
        values = [record.fidelity for record in self.records if record.fidelity is not None]
        if not values:
            return None
        return sum(values) / len(values)

    def fairness(self) -> float:
        """Jain fairness over users' inverse mean waits."""
        by_user: Dict[str, List[float]] = {}
        for record in self.records:
            by_user.setdefault(record.user, []).append(record.wait_time)
        return wait_fairness(by_user)

    def jobs_per_device(self) -> Dict[str, int]:
        """Number of jobs each device received."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.device] = counts.get(record.device, 0) + 1
        return dict(sorted(counts.items()))

    def device_utilisation(self) -> Dict[str, float]:
        """Busy fraction of every device over the simulation makespan."""
        horizon = self.makespan()
        return {
            name: queue.utilisation(horizon=horizon) if horizon > 0 else 0.0
            for name, queue in sorted(self.queues.items())
        }

    def summary(self) -> Dict[str, object]:
        """One row of the policy-comparison table (tail percentiles included)."""
        waits = self.wait_summary()
        return {
            "policy": self.policy_name,
            "jobs": len(self.records),
            "mean_wait_s": waits["mean"],
            "p50_wait_s": waits["p50"],
            "p95_wait_s": waits["p95"],
            "p99_wait_s": waits["p99"],
            "mean_turnaround_s": self.mean_turnaround(),
            "makespan_s": self.makespan(),
            "mean_fidelity": self.mean_fidelity() if self.mean_fidelity() is not None else float("nan"),
            "fairness": self.fairness(),
        }


class CloudSimulator:
    """Run one policy over one arrival trace on one fleet."""

    def __init__(
        self,
        fleet: Sequence[Backend],
        policy: AllocationPolicy,
        config: Optional[CloudSimulationConfig] = None,
    ) -> None:
        if not fleet:
            raise CloudError("The cloud simulation needs at least one device")
        self._fleet = list(fleet)
        self._policy = policy
        self._config = config or CloudSimulationConfig()
        self._esp = ESPEstimator(seed=derive_seed(self._config.seed, "cloud-esp"))
        #: "execute"-mode fidelity results keyed by (circuit structure,
        #: device, calibration fingerprint, shots); persists across runs so
        #: repeated traces on the same fleet stay warm.
        self._execute_fidelity_cache: Dict[Tuple[str, str, str, int], float] = {}

    # ------------------------------------------------------------------ #
    @property
    def fleet(self) -> List[Backend]:
        """The devices this simulator routes onto."""
        return list(self._fleet)

    @property
    def policy(self) -> AllocationPolicy:
        """The allocation policy routing arrivals to devices."""
        return self._policy

    @property
    def config(self) -> CloudSimulationConfig:
        """The simulation configuration."""
        return self._config

    def set_time_model(self, time_model) -> None:
        """Swap the execution-time model (scenario straggler injection).

        Open sessions swap their own context through
        :meth:`CloudSession.set_time_model`; calling this mid-session only
        affects service times computed after the swap.
        """
        self._config = replace(self._config, time_model=time_model)

    def open_session(self) -> "CloudSession":
        """Start an incremental simulation accepting arrivals one at a time.

        This is the streaming face of the simulator used by the unified
        service layer (:class:`repro.service.CloudEngine`): instead of handing
        over a complete trace, callers route and execute arrivals as they
        occur.  :meth:`run` is a thin wrapper that opens a session and feeds
        it the whole trace in arrival order.
        """
        return CloudSession(self)

    def run(self, trace: Sequence[JobRequest]) -> CloudSimulationResult:
        """Simulate the whole trace and return per-job records."""
        session = self.open_session()
        for request in sorted(trace, key=lambda item: item.arrival_time):
            session.submit(request)
        return session.result()

    # ------------------------------------------------------------------ #
    def _job_fidelity(
        self,
        request: JobRequest,
        backend: Backend,
        context: AllocationContext,
    ) -> Optional[float]:
        mode = self._config.fidelity_report
        if mode == "none":
            return None
        if mode == "execute":
            if not self._config.reuse_fidelity_cache:
                return self._execute_fidelity(request, backend)
            key = (
                structural_circuit_hash(request.circuit),
                backend.name,
                calibration_fingerprint(backend.properties),
                self._config.execution_shots,
            )
            if key not in self._execute_fidelity_cache:
                self._execute_fidelity_cache[key] = self._execute_fidelity(request, backend)
            return self._execute_fidelity_cache[key]
        # "esp": reuse the policy's cache when the policy is fidelity-aware so
        # the report does not re-transpile what the policy already scored.
        if isinstance(self._policy, FidelityPolicy):
            return self._policy.estimated_fidelity(request, backend, context)
        key = (request.workload_key, backend.name, context.calibration_epoch)
        if key not in context.fidelity_cache:
            context.fidelity_cache[key] = self._esp.estimate(request.circuit, backend).esp
        return context.fidelity_cache[key]

    def _execute_fidelity(self, request: JobRequest, backend: Backend) -> float:
        return achieved_fidelity(
            request.circuit,
            backend,
            shots=self._config.execution_shots,
            seed=derive_seed(self._config.seed, "cloud-execute", request.name, backend.name),
        )


class CloudSession:
    """One incremental simulation run: arrivals are submitted one at a time.

    Because routing happens at arrival time and device queues are
    single-server FCFS, feeding arrivals in non-decreasing arrival order is
    an exact discrete-event simulation — the session enforces that ordering
    and otherwise behaves exactly like :meth:`CloudSimulator.run`.

    The two-step :meth:`route` / :meth:`execute` split mirrors the service
    layer's job lifecycle: ``route`` is the MATCHING step (policy decision,
    feasibility check), ``execute`` the RUNNING step (queueing + fidelity
    reporting).  :meth:`submit` performs both.

    Thread safety and logical time: the simulation runs on a logical clock,
    so :meth:`route`/:meth:`execute` must be fed in arrival order — the
    concurrent service runtime does both back-to-back inside its serialized
    MATCHING stage precisely so that load-aware policies always observe the
    queue state produced by every earlier arrival (identical to a serial
    run).  The internal lock additionally guards the queues, records and
    arrival clock against snapshot readers (:attr:`records`,
    :meth:`result`) running on other threads mid-simulation.
    """

    def __init__(self, simulator: CloudSimulator) -> None:
        self._simulator = simulator
        self._queues = build_queues(simulator.fleet)
        self._context = AllocationContext(
            fleet=simulator.fleet,
            queues=self._queues,
            time_model=simulator.config.time_model,
        )
        self._records: List[JobRecord] = []
        self._last_arrival = 0.0
        self._mutex = threading.Lock()

    @property
    def records(self) -> List[JobRecord]:
        """Records of every job executed so far, in arrival order."""
        with self._mutex:
            return list(self._records)

    @property
    def simulator(self) -> CloudSimulator:
        """The simulator this session streams arrivals into."""
        return self._simulator

    # ------------------------------------------------------------------ #
    # Scenario fault-injection hooks (called from the serialized MATCHING
    # funnel of the service layer, like route/execute)
    # ------------------------------------------------------------------ #
    def set_time_model(self, time_model) -> None:
        """Swap the execution-time model for this session and its simulator.

        Installed by the scenario fault injector so straggler windows
        stretch both the service times charged at :meth:`execute` and the
        predicted waits load-aware policies consult at :meth:`route`.
        """
        with self._mutex:
            self._simulator.set_time_model(time_model)
            self._context.time_model = time_model

    def notice_calibration_change(self) -> None:
        """Advance the policy context's calibration epoch (epoch jump).

        Fidelity estimates cached by routing policies are keyed by this
        epoch, so bumping it forces re-estimation against the freshly
        drifted device properties.
        """
        with self._mutex:
            self._context.invalidate_fidelity_cache()

    def inject_backlog(self, device_name: str, *, at_time: float, backlog_s: float, label: str = "queue-storm") -> QueueSlot:
        """Enqueue ``backlog_s`` seconds of synthetic occupancy on one queue.

        The storm behaves like an opaque job arriving at ``at_time``: later
        arrivals queue behind it (and load-aware policies see the stretched
        predicted wait), but no :class:`JobRecord` is created — the backlog
        is not part of this trace's workload.

        Raises:
            CloudError: Unknown device or negative parameters (via the
                queue's own validation).
        """
        if device_name not in self._queues:
            raise CloudError(f"Cannot inject backlog: unknown device '{device_name}'")
        with self._mutex:
            return self._queues[device_name].enqueue(label, at_time, backlog_s)

    def route(
        self,
        request: JobRequest,
        candidates: Optional[Sequence[str]] = None,
        policy: Optional[AllocationPolicy] = None,
    ) -> str:
        """Pick the device for ``request`` (the policy's arrival-time decision).

        ``candidates`` optionally restricts the policy's choice to a subset
        of the fleet (the service layer uses this to enforce user
        requirements the policies themselves do not know about); queues and
        the fidelity cache stay shared with the unrestricted context.

        ``policy`` optionally overrides the simulator's policy for this one
        arrival — how the unified service layer honours a per-job
        ``JobRequirements.policy`` while the session's queues, clock and
        caches stay shared across every arrival.
        """
        with self._mutex:
            if request.arrival_time < self._last_arrival:
                raise CloudError(
                    f"Arrival '{request.name}' at t={request.arrival_time:.3f}s is earlier than the "
                    f"previous arrival (t={self._last_arrival:.3f}s); sessions need arrival order"
                )
        simulator = self._simulator
        context = self._context
        if candidates is not None:
            allowed = set(candidates)
            restricted = [backend for backend in context.fleet if backend.name in allowed]
            if not restricted:
                raise SchedulingError(f"No candidate device left for job '{request.name}'")
            context = AllocationContext(
                fleet=restricted,
                queues=self._queues,
                time_model=context.time_model,
                calibration_epoch=context.calibration_epoch,
                fidelity_cache=context.fidelity_cache,
            )
        active_policy = policy if policy is not None else simulator.policy
        device_name = active_policy.select(request, context)
        backend = self._context.device(device_name)
        if backend.num_qubits < request.circuit.num_qubits:
            raise SchedulingError(
                f"Policy '{active_policy.name}' routed job '{request.name}' to "
                f"'{device_name}', which is too small for it"
            )
        # Only a *successful* routing advances the arrival clock — a failed
        # route leaves the session exactly as it was.
        with self._mutex:
            self._last_arrival = max(self._last_arrival, request.arrival_time)
        return device_name

    def execute(self, request: JobRequest, device_name: str) -> JobRecord:
        """Queue ``request`` on ``device_name`` and report its fidelity.

        The queue mutation, the fidelity computation (which shares the
        simulator-level fidelity caches) and the record append happen under
        the session lock, so concurrent snapshot readers never observe a
        half-recorded job.
        """
        simulator = self._simulator
        backend = self._context.device(device_name)
        service = simulator.config.time_model.service_time_s(request.circuit, backend, request.shots)
        with self._mutex:
            slot = self._queues[device_name].enqueue(request.name, request.arrival_time, service)
            fidelity = simulator._job_fidelity(request, backend, self._context)
            record = JobRecord(request=request, device=device_name, slot=slot, fidelity=fidelity)
            self._records.append(record)
            self._last_arrival = max(self._last_arrival, request.arrival_time)
        return record

    def submit(self, request: JobRequest) -> JobRecord:
        """Route and execute one arrival (the one-call form)."""
        return self.execute(request, self.route(request))

    def result(self) -> CloudSimulationResult:
        """Snapshot of everything submitted so far as a simulation result.

        Records are reported in arrival order even when a concurrent service
        executed them out of order across device lanes.
        """
        with self._mutex:
            records = sorted(self._records, key=lambda record: (record.request.arrival_time, record.request.index))
        return CloudSimulationResult(
            policy_name=self._simulator.policy.name,
            records=records,
            queues=self._queues,
        )


def compare_policies(
    fleet: Sequence[Backend],
    trace: Sequence[JobRequest],
    policies: Iterable[AllocationPolicy],
    config: Optional[CloudSimulationConfig] = None,
) -> Dict[str, CloudSimulationResult]:
    """Run every policy on the same fleet and trace; results keyed by policy name."""
    results: Dict[str, CloudSimulationResult] = {}
    for policy in policies:
        simulator = CloudSimulator(fleet, policy, config=config)
        results[policy.name] = simulator.run(trace)
    return results


def render_policy_comparison(results: Dict[str, CloudSimulationResult]) -> str:
    """Text table comparing the policies of one :func:`compare_policies` run."""
    rows = [result.summary() for result in results.values()]
    columns = ["policy", "jobs", "mean_wait_s", "p95_wait_s", "mean_fidelity", "fairness", "makespan_s"]
    return render_metric_table(rows, columns, title="Cloud policy comparison")
