"""Calibration-cycle drift: the temporal variability of Section 2.2.

The paper reports 2-3x swings in two-qubit gate characteristics between
calibration cycles (roughly one cycle per day).  :class:`CalibrationDriftModel`
reproduces that behaviour synthetically: each cycle multiplies every error
rate by an independent log-normal factor whose spread is chosen so the
typical cycle-to-cycle ratio matches the requested variability, clamped to
physical bounds.  The drifted :class:`~repro.backends.BackendProperties` can
be pushed back into a running cluster through
:meth:`repro.core.vendor.VendorConsole.update_calibration`, which is exactly
the vendor workflow the drift model exists to exercise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.backends.backend import Backend
from repro.backends.properties import BackendProperties
from repro.utils.exceptions import BackendError
from repro.utils.rng import SeedLike, ensure_generator


@dataclass(frozen=True)
class CalibrationDriftModel:
    """Multiplicative log-normal drift applied once per calibration cycle.

    Parameters
    ----------
    two_qubit_spread:
        Standard deviation of the log-factor applied to two-qubit errors.
        ``0.35`` gives typical cycle-to-cycle ratios of ~1.4x with tails
        reaching the 2-3x the paper reports.
    one_qubit_spread / readout_spread:
        Spreads for single-qubit and readout errors (usually smaller).
    error_floor / error_ceiling:
        Bounds the drifted error rates are clamped to.
    """

    two_qubit_spread: float = 0.35
    one_qubit_spread: float = 0.2
    readout_spread: float = 0.2
    error_floor: float = 1e-4
    error_ceiling: float = 0.95

    def __post_init__(self) -> None:
        if min(self.two_qubit_spread, self.one_qubit_spread, self.readout_spread) < 0:
            raise BackendError("Drift spreads must be non-negative")
        if not 0.0 < self.error_floor < self.error_ceiling <= 1.0:
            raise BackendError("error_floor/error_ceiling must satisfy 0 < floor < ceiling <= 1")

    # ------------------------------------------------------------------ #
    def _drift_value(self, value: float, spread: float, rng) -> float:
        factor = math.exp(float(rng.normal(0.0, spread))) if spread > 0 else 1.0
        return min(self.error_ceiling, max(self.error_floor, value * factor))

    def drift_properties(self, properties: BackendProperties, seed: SeedLike = None) -> BackendProperties:
        """One calibration cycle: return a drifted copy of ``properties``."""
        rng = ensure_generator(seed)
        two_qubit = {
            edge: self._drift_value(rate, self.two_qubit_spread, rng)
            for edge, rate in properties.two_qubit_error.items()
        }
        one_qubit = {
            qubit: self._drift_value(rate, self.one_qubit_spread, rng)
            for qubit, rate in properties.one_qubit_error.items()
        }
        readout = {
            qubit: self._drift_value(rate, self.readout_spread, rng)
            for qubit, rate in properties.readout_error.items()
        }
        return BackendProperties(
            name=properties.name,
            num_qubits=properties.num_qubits,
            coupling_map=list(properties.coupling_map),
            basis_gates=tuple(properties.basis_gates),
            two_qubit_error=two_qubit,
            one_qubit_error=one_qubit,
            readout_error=readout,
            readout_length=dict(properties.readout_length),
            t1=dict(properties.t1),
            t2=dict(properties.t2),
            extras=dict(properties.extras),
        )

    def drift_backend(self, backend: Backend, seed: SeedLike = None) -> Backend:
        """One calibration cycle applied to a :class:`Backend`."""
        return Backend(self.drift_properties(backend.properties, seed=seed))

    def cycles(self, properties: BackendProperties, num_cycles: int, seed: SeedLike = None) -> Iterator[BackendProperties]:
        """Yield ``num_cycles`` successive calibration records (cycle N builds on N-1)."""
        rng = ensure_generator(seed)
        current = properties
        for _ in range(num_cycles):
            current = self.drift_properties(current, seed=rng)
            yield current

    # ------------------------------------------------------------------ #
    def typical_ratio(self) -> float:
        """Median multiplicative swing of a two-qubit error over one cycle.

        For a log-normal factor the median of ``max(f, 1/f)`` is
        ``exp(0.6745 * spread)`` — a quick way to sanity-check the spread
        against the 2-3x variability the paper quotes.
        """
        return math.exp(0.6745 * self.two_qubit_spread)


def drift_fleet(
    fleet: Sequence[Backend],
    model: CalibrationDriftModel = CalibrationDriftModel(),
    seed: SeedLike = None,
) -> List[Backend]:
    """Apply one calibration cycle to every device in ``fleet``."""
    rng = ensure_generator(seed)
    return [model.drift_backend(backend, seed=rng) for backend in fleet]


def drift_history(
    backend: Backend,
    num_cycles: int,
    model: CalibrationDriftModel = CalibrationDriftModel(),
    seed: SeedLike = None,
) -> List[Tuple[int, float]]:
    """Average two-qubit error of ``backend`` over ``num_cycles`` cycles.

    Returns ``(cycle_index, average_two_qubit_error)`` pairs, cycle 0 being
    the starting calibration — handy for plotting drift trajectories.
    """
    history: List[Tuple[int, float]] = [(0, backend.properties.average_two_qubit_error())]
    for index, properties in enumerate(model.cycles(backend.properties, num_cycles, seed=seed), start=1):
        history.append((index, properties.average_two_qubit_error()))
    return history
