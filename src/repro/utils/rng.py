"""Deterministic random-number handling for the whole library.

Every stochastic component in the reproduction (fleet generation, noise
sampling, the random-scheduler baseline, experiment repetition loops) accepts
either an integer seed, an existing :class:`numpy.random.Generator`, or
``None``.  Funnelling the conversion through :func:`ensure_generator` keeps
experiments reproducible and lets tests pin seeds without monkeypatching.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]

#: Default seed used by experiment drivers when the caller does not specify
#: one.  Using a fixed default keeps ``EXPERIMENTS.md`` numbers regenerable.
DEFAULT_SEED = 20240726


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing generator
        (returned unchanged so that callers can thread one generator through
        a pipeline of components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"Unsupported seed type: {type(seed).__name__}")


def spawn_generator(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Components that fan out work (e.g. one noise stream per shot batch, or
    one stream per generated backend) use child generators so that changing
    the number of consumers does not perturb unrelated random draws.
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)


def derive_seed(base: SeedLike, *components: object) -> int:
    """Derive a stable integer seed from ``base`` and hashable ``components``.

    This is used when a deterministic per-item seed is needed (for example
    one seed per generated backend name) so that regenerating a single item
    yields the same object as generating the full fleet.  Components are
    folded in with CRC32 rather than the built-in ``hash`` so the derived
    seed is identical across interpreter processes (``hash`` of a string is
    randomised per process, which would make experiment numbers drift from
    run to run).
    """
    rng = ensure_generator(base)
    base_value = int(rng.integers(0, 2**31 - 1)) if not isinstance(base, (int, np.integer)) else int(base)
    mix = base_value & 0x7FFFFFFF
    for component in components:
        digest = zlib.crc32(str(component).encode("utf-8"))
        mix = (mix * 1000003) ^ (digest & 0x7FFFFFFF)
        mix &= 0x7FFFFFFF
    return mix


def uniform_choice(rng: np.random.Generator, options: list):
    """Pick one element of ``options`` uniformly at random.

    ``numpy`` converts sequences to arrays inside ``Generator.choice`` which
    mangles tuples and dataclasses; indexing avoids that conversion.
    """
    if not options:
        raise ValueError("Cannot choose from an empty sequence")
    index = int(rng.integers(0, len(options)))
    return options[index]
