"""Linear-algebra helpers for the circuit and simulator substrates.

The helpers here are intentionally small and dependency-free (numpy only):
unitarity checks, tensor products in the library's qubit ordering convention,
and comparison of operators up to global phase.  They are used by the gate
definitions, the transpiler equivalence tests and the property-based suites.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Numerical tolerance used for unitarity and equivalence checks.
ATOL = 1e-8


def is_unitary(matrix: np.ndarray, atol: float = ATOL) -> bool:
    """Return ``True`` when ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def kron_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of ``matrices`` in the given order."""
    result = np.array([[1.0 + 0.0j]])
    for matrix in matrices:
        result = np.kron(result, np.asarray(matrix, dtype=complex))
    return result


def allclose_up_to_global_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-7) -> bool:
    """Return ``True`` when ``a`` equals ``b`` up to a global phase factor.

    Used to check that transpiled circuits implement the same unitary (or the
    same statevector) as the original circuit: basis translation into
    {u1, u2, u3, cx} routinely introduces a global phase.
    """
    a = np.asarray(a, dtype=complex).ravel()
    b = np.asarray(b, dtype=complex).ravel()
    if a.shape != b.shape:
        return False
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a < atol and norm_b < atol:
        return True
    if norm_a < atol or norm_b < atol:
        return False
    overlap = np.vdot(a, b)
    return bool(np.isclose(abs(overlap), norm_a * norm_b, atol=atol))


def expand_operator(matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Expand ``matrix`` acting on ``qubits`` to the full ``num_qubits`` space.

    The library uses the little-endian convention (qubit 0 is the least
    significant bit of a computational basis index), matching OpenQASM /
    Qiskit so the workloads in the paper keep their familiar bitstrings.
    """
    matrix = np.asarray(matrix, dtype=complex)
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValueError(
            f"Matrix of shape {matrix.shape} does not act on {k} qubit(s)"
        )
    dim = 2**num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    other = [q for q in range(num_qubits) if q not in qubits]
    for column in range(dim):
        local_in = 0
        for position, qubit in enumerate(qubits):
            if (column >> qubit) & 1:
                local_in |= 1 << position
        rest = column
        for qubit in qubits:
            rest &= ~(1 << qubit)
        column_vector = matrix[:, local_in]
        for local_out in range(2**k):
            amplitude = column_vector[local_out]
            if amplitude == 0:
                continue
            row = rest
            for position, qubit in enumerate(qubits):
                if (local_out >> position) & 1:
                    row |= 1 << qubit
            full[row, column] += amplitude
    return full


def normalize_state(state: np.ndarray) -> np.ndarray:
    """Return ``state`` scaled to unit norm (no-op for the zero vector)."""
    state = np.asarray(state, dtype=complex)
    norm = np.linalg.norm(state)
    if norm == 0:
        return state
    return state / norm


def basis_state(index: int, num_qubits: int) -> np.ndarray:
    """Return the computational basis statevector ``|index>`` on ``num_qubits``."""
    if not 0 <= index < 2**num_qubits:
        raise ValueError(f"Basis index {index} out of range for {num_qubits} qubits")
    state = np.zeros(2**num_qubits, dtype=complex)
    state[index] = 1.0
    return state
