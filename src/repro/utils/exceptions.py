"""Exception hierarchy shared by every ``repro`` subpackage.

All library errors derive from :class:`ReproError` so that callers can catch
one base class at an API boundary.  Each substrate narrows the base class
further (circuit construction, QASM parsing, transpilation, simulation,
cluster orchestration and scheduling), which keeps error handling explicit
without forcing callers to import deep module paths.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class CircuitError(ReproError):
    """Raised when a quantum circuit is constructed or mutated illegally."""


class GateError(CircuitError):
    """Raised when a gate definition or gate application is invalid."""


class QASMError(ReproError):
    """Raised when OpenQASM source cannot be lexed, parsed or exported."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute the supplied circuit."""


class StabilizerError(SimulationError):
    """Raised when a non-Clifford operation reaches the stabilizer simulator."""


class BackendError(ReproError):
    """Raised when backend properties are malformed or inconsistent."""


class TranspilerError(ReproError):
    """Raised when a transpiler pass cannot produce a legal circuit."""


class LayoutError(TranspilerError):
    """Raised when a layout cannot be constructed for a circuit/device pair."""


class MatchingError(ReproError):
    """Raised by the subgraph-matching (Mapomatic-style) engine."""


class FidelityEstimationError(ReproError):
    """Raised when a fidelity estimate cannot be produced."""


class ClusterError(ReproError):
    """Raised by the cluster substrate (nodes, jobs, binding, containers)."""


class SchedulingError(ClusterError):
    """Raised when a job cannot be scheduled onto any node."""


class PolicyNotFoundError(ClusterError):
    """Raised when a placement-policy name is missing from the registry.

    Subclasses :class:`ClusterError` so scheduling-layer handlers that catch
    the cluster taxonomy also catch mistyped policy names.  The message
    carries a did-you-mean suggestion built from the registered names.
    """

    def __init__(self, name: str, known: "tuple[str, ...]" = (), suggestion: "str | None" = None) -> None:
        message = f"Unknown placement policy '{name}'"
        if suggestion:
            message += f" — did you mean '{suggestion}'?"
        if known:
            message += f" (registered: {', '.join(sorted(known))})"
        super().__init__(message)
        self.name = name
        self.suggestion = suggestion


class CloudError(ClusterError):
    """Raised by the quantum-cloud simulation substrate (``repro.cloud``).

    Subclasses :class:`ClusterError` for backwards compatibility: the cloud
    modules historically raised ``ClusterError`` for their own configuration
    validation, so existing ``except ClusterError`` handlers keep working.
    """


class ScenarioError(CloudError):
    """Raised by the scenario subsystem (``repro.scenarios``).

    Subclasses :class:`CloudError` (and therefore :class:`ClusterError`)
    because the arrival/metrics machinery moved out of ``repro.cloud`` into
    the scenario layer — existing handlers around trace generation keep
    working unchanged.
    """


class ServiceError(ReproError):
    """Raised by the unified job-service layer (``repro.service``)."""


class JobNotCompletedError(ServiceError):
    """Raised when a job's result is requested before the job has finished.

    Also raised when a concurrent service's blocking wait (``result(timeout=...)``)
    expires before the job reaches a terminal state.
    """


class ServiceOverloadedError(ServiceError):
    """Raised when a bounded service runtime rejects a submission.

    A :class:`~repro.service.QRIOService` created with ``workers > 0`` and a
    ``max_pending`` bound applies backpressure: once the priority queue holds
    ``max_pending`` not-yet-dispatched jobs, ``submit(..., block=False)``
    raises this error instead of queueing (with ``block=True`` the submitter
    blocks until the dispatcher frees capacity).
    """


class AdmissionRejectedError(ServiceOverloadedError):
    """Raised when SLO-aware admission control sheds a submission.

    Subclasses :class:`ServiceOverloadedError` on purpose: admission control
    is the *soft* load-shedding layer in front of the runtime's hard
    ``max_pending`` backstop, so callers with a generic overload handler keep
    working, while tenant-aware callers can read the structured fields:

    * ``tenant`` — id of the tenant whose submission was rejected;
    * ``state`` — the admission state that triggered the rejection
      (``"defer"``, ``"shed"`` or ``"quota"``);
    * ``retry_after_s`` — the controller's estimate of when a retry has a
      chance of being admitted (advisory, never negative).
    """

    def __init__(self, message: str, *, tenant: str, state: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.state = state
        self.retry_after_s = max(0.0, float(retry_after_s))


class JobFailedError(ServiceError):
    """Raised when the result of a failed service job is requested."""


class NoFeasibleNodeError(SchedulingError):
    """Raised when filtering leaves zero nodes for a job.

    The paper describes this situation explicitly for Fig. 10: a maximum
    two-qubit error bound of 0.07 filters out the entire 100-device cluster,
    which "would simply mean that the user's job is not fit for scheduling in
    the cluster".
    """


class RequirementsError(ReproError):
    """Raised when user-supplied job requirements are invalid."""


class MetaServerError(ReproError):
    """Raised by the QRIO meta server (unknown job, unknown backend, ...)."""


class MasterServerError(ReproError):
    """Raised by the QRIO master server (containerization, submission)."""


class VisualizerError(ReproError):
    """Raised by the programmatic visualizer (form validation, canvas)."""
