"""Small argument-validation helpers used across the library.

The helpers raise :class:`ValueError`/:class:`TypeError` with uniform
messages so that user-facing APIs (job submission forms, backend builders,
requirement models) report problems consistently.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def require_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = require_finite_float(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def require_finite_float(value: float, name: str) -> float:
    """Validate that ``value`` is a finite real number and return it as float."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number") from exc
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"{name} must be finite, got {value}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``low <= value <= high``."""
    value = require_finite_float(value, name)
    if not low <= value <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def require_qubit_index(index: int, num_qubits: int, name: str = "qubit") -> int:
    """Validate that ``index`` addresses a qubit in a ``num_qubits`` register."""
    require_non_negative_int(index, name)
    if index >= num_qubits:
        raise ValueError(
            f"{name} index {index} is out of range for a register of {num_qubits} qubits"
        )
    return index


def require_distinct(indices: Sequence[int], name: str = "qubits") -> Sequence[int]:
    """Validate that a gate's qubit operands are pairwise distinct."""
    if len(set(indices)) != len(indices):
        raise ValueError(f"{name} must be distinct, got {tuple(indices)}")
    return indices


def require_name(value: str, name: str) -> str:
    """Validate that ``value`` is a non-empty string identifier."""
    if not isinstance(value, str):
        raise TypeError(f"{name} must be a string, got {type(value).__name__}")
    if not value.strip():
        raise ValueError(f"{name} must be a non-empty string")
    return value


def require_one_of(value, options: Iterable, name: str):
    """Validate that ``value`` is one of ``options``."""
    options = list(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value
