"""Noise-free statevector simulation.

This simulator plays the role of the "noise-free simulator (e.g. QASM
simulator)" from the paper: the oracle scheduling baseline records correct
outputs with it, and the transpiler's equivalence tests use it to check that
compiled circuits still implement the original computation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.simulators.result import SimulationResult
from repro.utils.exceptions import SimulationError
from repro.utils.rng import SeedLike, ensure_generator

#: Refuse to allocate statevectors beyond this width; wider circuits must be
#: compacted onto their active qubits first (see :func:`compact_circuit`).
MAX_STATEVECTOR_QUBITS = 22


def apply_matrix(state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a k-qubit ``matrix`` to ``qubits`` of ``state``.

    ``state`` may be a single statevector of shape ``(2**num_qubits,)`` or a
    batch of statevectors of shape ``(batch, 2**num_qubits)``; the same gate
    is applied to every batch entry (the batched form is how the Monte-Carlo
    noisy simulator evolves all shots at once).
    """
    state = np.asarray(state, dtype=complex)
    matrix = np.asarray(matrix, dtype=complex)
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise SimulationError(f"Matrix shape {matrix.shape} does not act on {k} qubit(s)")
    original_shape = state.shape
    batch_shape = original_shape[:-1]
    batch_ndim = len(batch_shape)
    tensor = state.reshape(batch_shape + (2,) * num_qubits)
    # Axis of qubit q in the reshaped tensor (little-endian: qubit 0 is the
    # least significant bit, i.e. the last axis).
    qubit_axes = [batch_ndim + (num_qubits - 1 - q) for q in qubits]
    gate_tensor = matrix.reshape((2,) * (2 * k))
    input_axes = [k + (k - 1 - p) for p in range(k)]
    contracted = np.tensordot(gate_tensor, tensor, axes=(input_axes, qubit_axes))
    # tensordot places the gate's output axes first (most significant local
    # bit first) followed by the uncontracted tensor axes in original order;
    # restore the canonical axis order before reshaping back.
    total_axes = batch_ndim + num_qubits
    remaining = [axis for axis in range(total_axes) if axis not in qubit_axes]
    current_position: Dict[int, int] = {}
    for p in range(k):
        current_position[qubit_axes[p]] = k - 1 - p
    for offset, axis in enumerate(remaining):
        current_position[axis] = k + offset
    order = [current_position[axis] for axis in range(total_axes)]
    restored = np.transpose(contracted, order)
    return restored.reshape(original_shape)


def compact_circuit(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, Dict[int, int]]:
    """Compress ``circuit`` onto its active qubits.

    Transpiled circuits are as wide as their target device (up to 100 qubits
    in the paper's fleet) but only touch a handful of physical qubits.  This
    helper relabels the active qubits ``0..k-1`` so the statevector and
    stabilizer simulators only pay for the qubits that matter.

    Returns the compacted circuit and the mapping from original (physical)
    qubit index to compacted index.
    """
    active = sorted(circuit.used_qubits())
    if not active:
        empty = QuantumCircuit(1, max(circuit.num_clbits, 1), name=circuit.name)
        return empty, {}
    mapping = {physical: logical for logical, physical in enumerate(active)}
    compact = QuantumCircuit(len(active), circuit.num_clbits, name=circuit.name)
    compact.metadata = dict(circuit.metadata)
    for instruction in circuit:
        if instruction.name == "barrier":
            qubits = tuple(mapping[q] for q in instruction.qubits if q in mapping)
            if qubits:
                compact.append(Instruction("barrier", qubits))
            continue
        qubits = tuple(mapping[q] for q in instruction.qubits)
        compact.append(Instruction(instruction.name, qubits, instruction.clbits, instruction.params))
    return compact, mapping


class StatevectorSimulator:
    """Exact simulator producing final statevectors and sampled counts."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = ensure_generator(seed)

    # ------------------------------------------------------------------ #
    def statevector(self, circuit: QuantumCircuit) -> np.ndarray:
        """Return the final statevector of the unitary part of ``circuit``.

        Measurements are ignored (they only define which bits are sampled);
        resets and mid-circuit measurement followed by further gates on the
        same qubit are rejected.
        """
        self._validate(circuit)
        num_qubits = circuit.num_qubits
        state = np.zeros(2**num_qubits, dtype=complex)
        state[0] = 1.0
        for instruction in circuit:
            if instruction.is_directive:
                continue
            state = apply_matrix(state, instruction.matrix(), instruction.qubits, num_qubits)
        return state

    def probabilities(self, circuit: QuantumCircuit) -> Dict[str, float]:
        """Return the ideal outcome distribution over the measured clbits."""
        state = self.statevector(circuit)
        measurement_map = circuit.measurement_map()
        if not measurement_map:
            measurement_map = {q: q for q in range(circuit.num_qubits)}
        return _project_probabilities(state, measurement_map, circuit.num_qubits, circuit.num_clbits)

    def run(self, circuit: QuantumCircuit, shots: int = 1024) -> SimulationResult:
        """Execute ``circuit`` and sample ``shots`` measurement outcomes."""
        if shots <= 0:
            raise SimulationError("shots must be positive")
        state = self.statevector(circuit)
        measurement_map = circuit.measurement_map()
        if not measurement_map:
            measurement_map = {q: q for q in range(circuit.num_qubits)}
        distribution = _project_probabilities(
            state, measurement_map, circuit.num_qubits, circuit.num_clbits
        )
        outcomes = list(distribution.keys())
        probabilities = np.array([distribution[o] for o in outcomes])
        probabilities = probabilities / probabilities.sum()
        samples = self._rng.multinomial(shots, probabilities)
        counts = {outcome: int(count) for outcome, count in zip(outcomes, samples) if count > 0}
        return SimulationResult(
            counts=counts,
            shots=shots,
            statevector=state,
            metadata={"simulator": "statevector", "ideal": True},
        )

    # ------------------------------------------------------------------ #
    def _validate(self, circuit: QuantumCircuit) -> None:
        if circuit.num_qubits > MAX_STATEVECTOR_QUBITS:
            raise SimulationError(
                f"Circuit has {circuit.num_qubits} qubits; statevector simulation is "
                f"limited to {MAX_STATEVECTOR_QUBITS}. Compact the circuit onto its "
                "active qubits with compact_circuit() first."
            )
        measured: set = set()
        for instruction in circuit:
            if instruction.name == "reset":
                raise SimulationError("StatevectorSimulator does not support reset")
            if instruction.is_measurement:
                measured.add(instruction.qubits[0])
            elif not instruction.is_directive:
                overlap = measured.intersection(instruction.qubits)
                if overlap:
                    raise SimulationError(
                        "Mid-circuit measurement followed by further gates on qubit(s) "
                        f"{sorted(overlap)} is not supported"
                    )


def _project_probabilities(
    state: np.ndarray,
    measurement_map: Dict[int, int],
    num_qubits: int,
    num_clbits: int,
) -> Dict[str, float]:
    """Project state probabilities onto measured classical bits."""
    probabilities = np.abs(state) ** 2
    distribution: Dict[str, float] = {}
    width = max(num_clbits, 1)
    measured_qubits = sorted(measurement_map)
    for basis_index, probability in enumerate(probabilities):
        if probability < 1e-15:
            continue
        bits = ["0"] * width
        for qubit in measured_qubits:
            clbit = measurement_map[qubit]
            bit = (basis_index >> qubit) & 1
            bits[width - 1 - clbit] = str(bit)
        key = "".join(bits)
        distribution[key] = distribution.get(key, 0.0) + float(probability)
    return distribution
