"""Simulation engines: statevector, stabilizer (CHP) and noisy Monte-Carlo."""

from repro.simulators.batched_stabilizer import (
    BatchedStabilizerSimulator,
    BatchedStabilizerState,
    probe_deterministic_outcome,
)
from repro.simulators.channels import (
    PAULI_LABELS,
    ThermalRelaxation,
    amplitude_damping_probability,
    combine_error_probabilities,
    depolarizing_probabilities,
    thermal_relaxation_error,
)
from repro.simulators.durations import (
    GateDurations,
    circuit_duration,
    qubit_busy_times,
    qubit_finish_times,
    qubit_idle_times,
)
from repro.simulators.mitigation import MAX_MITIGATED_BITS, ReadoutMitigator
from repro.simulators.noise import NoiseModel
from repro.simulators.noisy import (
    BATCHED_STATEVECTOR_LIMIT,
    NoisyStabilizerSimulator,
    NoisyStatevectorSimulator,
    PrecompiledExecution,
    execute_with_noise,
    is_clifford_circuit,
    precompile_execution,
)
from repro.simulators.result import (
    SimulationResult,
    counts_to_probabilities,
    hellinger_fidelity,
    marginal_counts,
    success_probability,
    total_variation_distance,
    uniform_counts,
)
from repro.simulators.stabilizer import StabilizerSimulator, StabilizerState, is_stabilizer_gate
from repro.simulators.statevector import (
    MAX_STATEVECTOR_QUBITS,
    StatevectorSimulator,
    apply_matrix,
    compact_circuit,
)

__all__ = [
    "BATCHED_STATEVECTOR_LIMIT",
    "BatchedStabilizerSimulator",
    "BatchedStabilizerState",
    "GateDurations",
    "probe_deterministic_outcome",
    "MAX_MITIGATED_BITS",
    "MAX_STATEVECTOR_QUBITS",
    "NoiseModel",
    "NoisyStabilizerSimulator",
    "NoisyStatevectorSimulator",
    "PAULI_LABELS",
    "PrecompiledExecution",
    "ReadoutMitigator",
    "SimulationResult",
    "StabilizerSimulator",
    "StabilizerState",
    "StatevectorSimulator",
    "ThermalRelaxation",
    "amplitude_damping_probability",
    "apply_matrix",
    "circuit_duration",
    "combine_error_probabilities",
    "compact_circuit",
    "counts_to_probabilities",
    "depolarizing_probabilities",
    "execute_with_noise",
    "hellinger_fidelity",
    "is_clifford_circuit",
    "is_stabilizer_gate",
    "marginal_counts",
    "precompile_execution",
    "qubit_busy_times",
    "qubit_finish_times",
    "qubit_idle_times",
    "success_probability",
    "thermal_relaxation_error",
    "total_variation_distance",
    "uniform_counts",
]
