"""Error-channel primitives: depolarizing and Pauli-twirled thermal relaxation.

The executable noise engines (:mod:`repro.simulators.noisy`) draw uniform
random Paulis after each gate; this module provides the probability
bookkeeping around that abstraction — how a depolarizing parameter splits
over Pauli labels, how T1/T2 decay over a time window maps onto Pauli-twirl
probabilities, and how independent error sources combine — so the analytic
estimators and the calibration-drift tooling can reason about noise without
running a simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.exceptions import SimulationError
from repro.utils.validation import require_probability

#: Single-qubit Pauli error labels.
PAULI_LABELS: Tuple[str, str, str] = ("x", "y", "z")


def depolarizing_probabilities(error_probability: float, num_qubits: int = 1) -> Dict[str, float]:
    """Split a depolarizing error probability uniformly over non-identity Paulis.

    Returns a mapping from Pauli label strings (``"x"``, ``"zz"``, ``"ix"``,
    ...) to their individual probabilities; the identity label is omitted.
    """
    require_probability(error_probability, "error_probability")
    if num_qubits not in (1, 2):
        raise SimulationError("depolarizing_probabilities supports 1 or 2 qubits")
    if num_qubits == 1:
        labels = list(PAULI_LABELS)
    else:
        labels = [
            a + b
            for a in ("i", "x", "y", "z")
            for b in ("i", "x", "y", "z")
            if not (a == "i" and b == "i")
        ]
    share = error_probability / len(labels)
    return {label: share for label in labels}


@dataclass(frozen=True)
class ThermalRelaxation:
    """Pauli-twirled thermal relaxation over a fixed time window.

    The exact amplitude-damping + dephasing channel is approximated by its
    Pauli twirl, the standard trick that keeps Clifford/stabilizer simulation
    applicable: ``p_x = p_y = (1 - exp(-t/T1)) / 4`` and
    ``p_z = (1 - exp(-t/T2)) / 2 - p_x`` (clamped at zero when T2 is long
    compared to T1).
    """

    t1: float
    t2: float
    duration: float

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise SimulationError("T1 and T2 must be positive")
        if self.duration < 0:
            raise SimulationError("duration must be non-negative")
        # Physicality: T2 can be at most 2 * T1.
        if self.t2 > 2.0 * self.t1 + 1e-9:
            raise SimulationError("T2 cannot exceed 2 * T1")

    def pauli_probabilities(self) -> Dict[str, float]:
        """The ``{x, y, z}`` Pauli-twirl probabilities for this window."""
        relax = 1.0 - math.exp(-self.duration / self.t1)
        dephase = 1.0 - math.exp(-self.duration / self.t2)
        p_x = relax / 4.0
        p_y = relax / 4.0
        p_z = max(0.0, dephase / 2.0 - relax / 4.0)
        return {"x": p_x, "y": p_y, "z": p_z}

    def error_probability(self) -> float:
        """Total probability of any Pauli error during the window."""
        return min(1.0, sum(self.pauli_probabilities().values()))

    def survival_probability(self) -> float:
        """Probability the qubit emerges without a Pauli error."""
        return 1.0 - self.error_probability()


def thermal_relaxation_error(t1: float, t2: float, duration: float) -> float:
    """Shorthand for ``ThermalRelaxation(t1, t2, duration).error_probability()``."""
    return ThermalRelaxation(t1=t1, t2=t2, duration=duration).error_probability()


def combine_error_probabilities(*probabilities: float) -> float:
    """Probability that at least one of several independent errors fires."""
    survival = 1.0
    for probability in probabilities:
        require_probability(probability, "probability")
        survival *= 1.0 - probability
    return 1.0 - survival


def amplitude_damping_probability(t1: float, duration: float) -> float:
    """Probability of a T1 relaxation event (|1> decaying to |0>) in ``duration``."""
    if t1 <= 0:
        raise SimulationError("T1 must be positive")
    if duration < 0:
        raise SimulationError("duration must be non-negative")
    return 1.0 - math.exp(-duration / t1)
