"""Noisy execution engines: Monte-Carlo statevector and noisy stabilizer.

Both engines inject the same error channel — a random Pauli on the operands
of each gate with the probability given by the device's calibration data,
plus classical readout flips — so that a Clifford circuit produces the same
statistics whichever engine runs it.  The stabilizer engine scales to the
fleet's 100-qubit devices (Pauli errors are Clifford operations); the
statevector engine handles arbitrary circuits after compaction onto their
active qubits.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.simulators.noise import NoiseModel
from repro.simulators.result import SimulationResult
from repro.simulators.stabilizer import (
    StabilizerSimulator,
    StabilizerState,
    TableauStep,
    circuit_is_stabilizer_compatible,
    compile_tableau_program,
    is_stabilizer_gate,
)
from repro.simulators.statevector import MAX_STATEVECTOR_QUBITS, apply_matrix, compact_circuit
from repro.utils.exceptions import SimulationError, StabilizerError
from repro.utils.rng import SeedLike, ensure_generator

_PAULI_LABELS = ("x", "y", "z")
_PAULI_MATRICES = {label: gate_matrix(label) for label in _PAULI_LABELS}
#: The 15 non-identity two-qubit Pauli labels (first acts on operand 0).
_TWO_QUBIT_PAULIS: Tuple[Tuple[Optional[str], Optional[str]], ...] = tuple(
    (a, b)
    for a in (None, "x", "y", "z")
    for b in (None, "x", "y", "z")
    if not (a is None and b is None)
)


class NoisyStatevectorSimulator:
    """Monte-Carlo trajectory simulator with all shots evolved as one batch."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = ensure_generator(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
        shots: int = 1024,
    ) -> SimulationResult:
        """Execute ``circuit`` under ``noise_model`` and return sampled counts."""
        if shots <= 0:
            raise SimulationError("shots must be positive")
        noise_model = noise_model or NoiseModel.ideal()
        self._validate(circuit)
        num_qubits = circuit.num_qubits
        dim = 2**num_qubits
        states = np.zeros((shots, dim), dtype=complex)
        states[:, 0] = 1.0
        for instruction in circuit:
            if instruction.name in ("barrier", "measure"):
                continue
            matrix = instruction.matrix()
            states = apply_matrix(states, matrix, instruction.qubits, num_qubits)
            error_rate = noise_model.gate_error(instruction.qubits)
            if error_rate > 0.0:
                states = self._inject_pauli_errors(states, instruction.qubits, error_rate, num_qubits)
        counts = self._sample_counts(states, circuit, noise_model, shots)
        return SimulationResult(
            counts=counts,
            shots=shots,
            metadata={"simulator": "noisy_statevector", "ideal": False},
        )

    # ------------------------------------------------------------------ #
    def _validate(self, circuit: QuantumCircuit) -> None:
        if circuit.num_qubits > MAX_STATEVECTOR_QUBITS:
            raise SimulationError(
                f"Circuit has {circuit.num_qubits} qubits; compact it onto its active "
                "qubits before Monte-Carlo statevector simulation"
            )
        measured: set = set()
        for instruction in circuit:
            if instruction.name == "reset":
                raise SimulationError("NoisyStatevectorSimulator does not support reset")
            if instruction.is_measurement:
                measured.add(instruction.qubits[0])
            elif not instruction.is_directive and measured.intersection(instruction.qubits):
                raise SimulationError("Mid-circuit measurement is not supported")

    def _inject_pauli_errors(
        self,
        states: np.ndarray,
        qubits: Sequence[int],
        error_rate: float,
        num_qubits: int,
    ) -> np.ndarray:
        """Apply a sampled Pauli error to the shots selected by ``error_rate``."""
        shots = states.shape[0]
        error_mask = self._rng.random(shots) < error_rate
        error_indices = np.nonzero(error_mask)[0]
        if error_indices.size == 0:
            return states
        if len(qubits) == 1:
            choices = self._rng.integers(0, len(_PAULI_LABELS), size=error_indices.size)
            for label_index, label in enumerate(_PAULI_LABELS):
                subset = error_indices[choices == label_index]
                if subset.size:
                    states[subset] = apply_matrix(
                        states[subset], _PAULI_MATRICES[label], qubits, num_qubits
                    )
            return states
        choices = self._rng.integers(0, len(_TWO_QUBIT_PAULIS), size=error_indices.size)
        for pauli_index, (pauli_a, pauli_b) in enumerate(_TWO_QUBIT_PAULIS):
            subset = error_indices[choices == pauli_index]
            if subset.size == 0:
                continue
            if pauli_a is not None:
                states[subset] = apply_matrix(
                    states[subset], _PAULI_MATRICES[pauli_a], (qubits[0],), num_qubits
                )
            if pauli_b is not None:
                states[subset] = apply_matrix(
                    states[subset], _PAULI_MATRICES[pauli_b], (qubits[1],), num_qubits
                )
        return states

    def _sample_counts(
        self,
        states: np.ndarray,
        circuit: QuantumCircuit,
        noise_model: NoiseModel,
        shots: int,
    ) -> Dict[str, int]:
        """Sample one outcome per trajectory and apply readout errors."""
        probabilities = np.abs(states) ** 2
        row_sums = probabilities.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        probabilities /= row_sums
        cumulative = np.cumsum(probabilities, axis=1)
        draws = self._rng.random(shots)
        outcome_indices = (cumulative < draws[:, None]).sum(axis=1)
        outcome_indices = np.clip(outcome_indices, 0, probabilities.shape[1] - 1)

        measurement_map = circuit.measurement_map()
        if not measurement_map:
            measurement_map = {q: q for q in range(circuit.num_qubits)}
        width = max(circuit.num_clbits, 1)
        measured_qubits = sorted(measurement_map)
        # Extract the measured bits from every sampled basis index, apply the
        # per-qubit readout flip probability, and assemble count keys.
        bits = np.zeros((shots, width), dtype=np.uint8)
        for qubit in measured_qubits:
            clbit = measurement_map[qubit]
            values = (outcome_indices >> qubit) & 1
            flip_probability = noise_model.measurement_error(qubit)
            if flip_probability > 0.0:
                flips = self._rng.random(shots) < flip_probability
                values = values ^ flips.astype(np.uint8)
            bits[:, width - 1 - clbit] = values
        counts: Counter = Counter(
            "".join("1" if bit else "0" for bit in row) for row in bits
        )
        return dict(counts)


class NoisyStabilizerSimulator:
    """Tableau simulator with Pauli gate errors and readout flips.

    Only accepts Clifford circuits.  Pauli errors commute through the tableau
    update rules, so noisy execution of the Clifford canary circuits scales
    polynomially in qubit count — the property the paper's fidelity-ranking
    strategy is built on.

    ``method`` mirrors :class:`~repro.simulators.stabilizer.StabilizerSimulator`:
    ``"auto"``/``"batched"`` evolve all shots at once on the batched engine
    (Pauli errors only flip per-shot signs, so noisy batches keep the shared
    tableau structure); ``"scalar"`` is the reference per-shot loop.
    """

    def __init__(self, seed: SeedLike = None, method: str = "auto") -> None:
        if method not in ("auto", "batched", "scalar"):
            raise StabilizerError("method must be 'auto', 'batched' or 'scalar'")
        self._rng = ensure_generator(seed)
        self._method = method

    def run(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
        shots: int = 1024,
        program: Optional[Sequence[TableauStep]] = None,
    ) -> SimulationResult:
        """Execute the Clifford ``circuit`` under ``noise_model``.

        ``program`` may carry the circuit's precompiled tableau program so
        the batched path skips its per-gate circuit walk (the execution-plan
        replay path); the scalar reference path recompiles regardless.
        """
        if shots <= 0:
            raise StabilizerError("shots must be positive")
        noise_model = noise_model or NoiseModel.ideal()
        if self._method in ("auto", "batched"):
            # Imported lazily: batched_stabilizer imports this module's peers.
            from repro.simulators.batched_stabilizer import BatchedStabilizerSimulator

            result = BatchedStabilizerSimulator(seed=self._rng).run(
                circuit, shots=shots, noise_model=noise_model, program=program
            )
            result.metadata["simulator"] = "noisy_stabilizer"
            result.metadata["ideal"] = False
            return result
        program = compile_tableau_program(circuit)
        # Pre-resolve the per-step error probabilities so the shot loop only
        # touches plain floats.
        gate_errors = [
            noise_model.gate_error(step.qubits) if step.kind == "gate" else 0.0 for step in program
        ]
        measure_errors = [
            noise_model.measurement_error(step.qubits[0]) if step.kind == "measure" else 0.0
            for step in program
        ]
        width = max(circuit.num_clbits, 1)
        # Classical-bit string positions, resolved once per program rather
        # than once per shot.
        positions = {
            index: width - 1 - step.clbit
            for index, step in enumerate(program)
            if step.kind == "measure"
        }
        counts: Counter = Counter(
            self._single_shot(program, positions, gate_errors, measure_errors, circuit.num_qubits, width)
            for _ in range(shots)
        )
        return SimulationResult(
            counts=dict(counts),
            shots=shots,
            metadata={"simulator": "noisy_stabilizer", "ideal": False, "method": "scalar"},
        )

    def _single_shot(
        self,
        program: List[TableauStep],
        positions: Dict[int, int],
        gate_errors: List[float],
        measure_errors: List[float],
        num_qubits: int,
        width: int,
    ) -> str:
        state = StabilizerState(num_qubits)
        clbits = ["0"] * width
        for index, step in enumerate(program):
            if step.kind == "measure":
                outcome = state.measure(step.qubits[0], self._rng)
                flip_probability = measure_errors[index]
                if flip_probability > 0.0 and self._rng.random() < flip_probability:
                    outcome ^= 1
                clbits[positions[index]] = str(outcome)
                continue
            if step.kind == "reset":
                state.reset(step.qubits[0], self._rng)
                continue
            for name in step.primitives:
                state.apply_gate(name, step.qubits)
            error_rate = gate_errors[index]
            if error_rate > 0.0 and self._rng.random() < error_rate:
                self._apply_random_pauli(state, step.qubits)
        return "".join(clbits)

    def _apply_random_pauli(self, state: StabilizerState, qubits: Sequence[int]) -> None:
        if len(qubits) == 1:
            label = _PAULI_LABELS[int(self._rng.integers(0, 3))]
            state.apply_pauli(label, qubits[0])
            return
        pauli_a, pauli_b = _TWO_QUBIT_PAULIS[int(self._rng.integers(0, len(_TWO_QUBIT_PAULIS)))]
        if pauli_a is not None:
            state.apply_pauli(pauli_a, qubits[0])
        if pauli_b is not None:
            state.apply_pauli(pauli_b, qubits[1])


def is_clifford_circuit(circuit: QuantumCircuit) -> bool:
    """Return ``True`` when every gate of ``circuit`` runs on the tableau.

    Parameterised gates (``u1``/``u2``/``u3``/``rz``...) count as Clifford
    when their specific angles implement a Clifford operation, which is what
    basis-translated Clifford canaries look like after transpilation.
    """
    return circuit_is_stabilizer_compatible(circuit)


#: Widest circuit the batched Monte-Carlo statevector engine will accept when
#: dispatching automatically (keeps the shot batch within ~100 MB).
BATCHED_STATEVECTOR_LIMIT = 13


@dataclass(frozen=True)
class PrecompiledExecution:
    """The frozen outcome of :func:`execute_with_noise`'s per-circuit analysis.

    Everything :func:`execute_with_noise` derives by walking the gate list —
    the compacted circuit, the active-qubit mapping that restricts the noise
    model, the engine choice and (on the stabilizer path) the compiled
    tableau program — captured once so a repeat execution skips straight to
    the shot loop.  Built by :func:`precompile_execution` and carried inside
    :class:`~repro.plans.ExecutionPlan`.
    """

    #: ``"statevector"`` or ``"stabilizer"`` — the engine the dispatch chose.
    engine: str
    #: The circuit actually executed (compacted onto its active qubits).
    circuit: QuantumCircuit
    #: Physical qubits backing the compacted wires, in wire order; empty when
    #: the circuit was not compacted (noise model applies verbatim).
    qubit_mapping: Tuple[int, ...]
    #: Width of the original (un-compacted) circuit, for cheap validation.
    source_num_qubits: int
    #: Precompiled tableau program (stabilizer engine only).
    program: Optional[Tuple[TableauStep, ...]] = None


def precompile_execution(circuit: QuantumCircuit, compact: bool = True) -> PrecompiledExecution:
    """Run :func:`execute_with_noise`'s analysis stages once, without shots.

    The returned bundle replays through ``execute_with_noise(...,
    precompiled=...)`` with bit-identical results to a fresh call under the
    same seed: the compaction is deterministic and the chosen engine consumes
    its RNG stream identically either way.
    """
    target_circuit = circuit
    mapping_order: Tuple[int, ...] = ()
    if compact:
        compacted, mapping = compact_circuit(circuit)
        if mapping:
            mapping_order = tuple(
                physical for physical, _ in sorted(mapping.items(), key=lambda kv: kv[1])
            )
            target_circuit = compacted
    if target_circuit.num_qubits <= BATCHED_STATEVECTOR_LIMIT:
        return PrecompiledExecution(
            engine="statevector",
            circuit=target_circuit,
            qubit_mapping=mapping_order,
            source_num_qubits=circuit.num_qubits,
        )
    if is_clifford_circuit(target_circuit):
        return PrecompiledExecution(
            engine="stabilizer",
            circuit=target_circuit,
            qubit_mapping=mapping_order,
            source_num_qubits=circuit.num_qubits,
            program=tuple(compile_tableau_program(target_circuit)),
        )
    raise SimulationError(
        f"Circuit '{circuit.name}' is too wide ({target_circuit.num_qubits} active "
        "qubits) for statevector simulation and contains non-Clifford gates"
    )


def execute_with_noise(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    shots: int = 1024,
    seed: SeedLike = None,
    compact: bool = True,
    precompiled: Optional[PrecompiledExecution] = None,
) -> SimulationResult:
    """Execute ``circuit`` under ``noise_model`` with the best available engine.

    The circuit is first compacted onto its active qubits (transpiled circuits
    are as wide as their device).  Narrow circuits then run on the batched
    Monte-Carlo statevector engine — the fastest option because all shots are
    evolved together — while wider circuits must be Clifford and run on the
    noisy stabilizer engine, which scales polynomially in width.  This is the
    execution path the cluster nodes use when a QRIO job lands on them.

    ``precompiled`` replays a previous :func:`precompile_execution` analysis
    of the *same* circuit, skipping compaction, engine dispatch and (on the
    stabilizer path) tableau compilation; the noise model and seed still
    apply per call, so repeat executions sample fresh shots.
    """
    noise_model = noise_model or NoiseModel.ideal()
    if precompiled is not None:
        if precompiled.source_num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"Precompiled execution was built for a {precompiled.source_num_qubits}-qubit "
                f"circuit, got {circuit.num_qubits} qubits"
            )
        context = BatchExecutionContext.current()
        if context is not None:
            served = context.take(precompiled, seed, shots)
            if served is not None:
                return served
        target_circuit = precompiled.circuit
        target_noise = (
            noise_model.restricted_to(list(precompiled.qubit_mapping))
            if precompiled.qubit_mapping
            else noise_model
        )
        if precompiled.engine == "statevector":
            return NoisyStatevectorSimulator(seed=seed).run(target_circuit, target_noise, shots=shots)
        return NoisyStabilizerSimulator(seed=seed).run(
            target_circuit, target_noise, shots=shots, program=precompiled.program
        )
    target_circuit = circuit
    target_noise = noise_model
    if compact:
        compacted, mapping = compact_circuit(circuit)
        if mapping:
            ordered_physical = [physical for physical, _ in sorted(mapping.items(), key=lambda kv: kv[1])]
            target_circuit = compacted
            target_noise = noise_model.restricted_to(ordered_physical)
    if target_circuit.num_qubits <= BATCHED_STATEVECTOR_LIMIT:
        statevector_simulator = NoisyStatevectorSimulator(seed=seed)
        return statevector_simulator.run(target_circuit, target_noise, shots=shots)
    if is_clifford_circuit(target_circuit):
        simulator = NoisyStabilizerSimulator(seed=seed)
        return simulator.run(target_circuit, target_noise, shots=shots)
    raise SimulationError(
        f"Circuit '{circuit.name}' is too wide ({target_circuit.num_qubits} active "
        "qubits) for statevector simulation and contains non-Clifford gates"
    )


# --------------------------------------------------------------------------- #
# Cross-job batch execution
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecutionRequest:
    """One job's execution parameters inside a cross-job batch.

    ``device`` and ``calibration`` (the device's calibration fingerprint)
    scope the merged-program cache key; they carry no execution semantics —
    the noise model and seed alone determine the outcome.
    """

    circuit: QuantumCircuit
    noise_model: Optional[NoiseModel]
    shots: int
    seed: SeedLike
    precompiled: Optional[PrecompiledExecution] = None
    device: str = ""
    calibration: str = ""


def execute_many_with_noise(requests: Sequence[ExecutionRequest]) -> List[SimulationResult]:
    """Execute a batch of jobs, merging same-shot stabilizer jobs into one run.

    Stabilizer-engine requests that share a shot count are aligned into one
    :class:`~repro.plans.schedule.MergedExecutionProgram` (memoized in the
    fleet-wide merged-program cache) and evolved as a single ``(jobs x
    shots)`` sign-matrix batch; each job keeps its own noise model and seeded
    RNG, so its counts are bit-identical to a solo
    :func:`execute_with_noise` call with the same arguments.  Statevector
    requests and merge groups of one fall back to the solo path — the
    batched-fallback lane that keeps mixed batches from evicting the merged
    fast path.
    """
    # Imported lazily: plans.schedule imports this module's Pauli tables.
    from repro.core.cache import MergedProgramCache, merged_program_cache
    from repro.plans.schedule import execute_merged_program, merge_programs, program_digest

    resolved: List[PrecompiledExecution] = []
    for request in requests:
        if request.shots <= 0:
            raise SimulationError("shots must be positive")
        precompiled = request.precompiled
        if precompiled is None:
            precompiled = precompile_execution(request.circuit)
        elif precompiled.source_num_qubits != request.circuit.num_qubits:
            raise SimulationError(
                f"Precompiled execution was built for a {precompiled.source_num_qubits}-qubit "
                f"circuit, got {request.circuit.num_qubits} qubits"
            )
        resolved.append(precompiled)

    # Group mergeable requests by shot count; everything else runs solo.
    groups: Dict[int, List[int]] = {}
    for index, (request, precompiled) in enumerate(zip(requests, resolved)):
        if precompiled.engine == "stabilizer" and precompiled.program is not None:
            groups.setdefault(request.shots, []).append(index)

    results: List[Optional[SimulationResult]] = [None] * len(requests)
    cache = merged_program_cache()
    for shots, indices in sorted(groups.items()):
        if len(indices) < 2:
            continue
        digests = {
            index: program_digest(
                resolved[index].program,
                resolved[index].circuit.num_qubits,
                resolved[index].circuit.num_clbits,
            )
            for index in indices
        }
        cache_key = MergedProgramCache.key(
            digests.values(),
            (requests[index].device for index in indices),
            (requests[index].calibration for index in indices),
        )
        merged = cache.get(cache_key)
        if merged is None:
            merged = merge_programs(
                [
                    (
                        resolved[index].program,
                        resolved[index].circuit.num_qubits,
                        resolved[index].circuit.num_clbits,
                    )
                    for index in indices
                ]
            )
            cache.put(cache_key, merged)
        # Lanes are sorted by digest; stable-sorting the request indices by
        # the same digests aligns request k with lane position k (duplicate
        # digests mean identical lanes, so ties are interchangeable).
        ordered = sorted(indices, key=lambda index: digests[index])
        noise_models = []
        for index in ordered:
            noise_model = requests[index].noise_model or NoiseModel.ideal()
            mapping = resolved[index].qubit_mapping
            noise_models.append(noise_model.restricted_to(list(mapping)) if mapping else noise_model)
        counts = execute_merged_program(
            merged,
            noise_models,
            [requests[index].seed for index in ordered],
            shots,
        )
        for lane_position, index in enumerate(ordered):
            results[index] = SimulationResult(
                counts=counts[lane_position],
                shots=shots,
                metadata={
                    "simulator": "noisy_stabilizer",
                    "ideal": False,
                    "method": "batched",
                    "merged_jobs": len(ordered),
                },
            )

    for index, request in enumerate(requests):
        if results[index] is None:
            results[index] = execute_with_noise(
                request.circuit,
                request.noise_model,
                shots=request.shots,
                seed=request.seed,
                precompiled=resolved[index],
            )
    return results  # type: ignore[return-value]


@dataclass
class _BatchEntry:
    precompiled: PrecompiledExecution
    seed: SeedLike
    shots: int
    result: SimulationResult


class BatchExecutionContext:
    """Thread-local hand-off of pre-executed batch results to the solo path.

    The service runtime executes a drained device lane as one
    :func:`execute_many_with_noise` batch *before* replaying each job's
    normal submit path; the per-job :func:`execute_with_noise` calls then
    find their result here (matched by precompiled-bundle identity, seed and
    shot count — never ``hash()``/``id()``) instead of re-simulating.
    Entries are consumed exactly once, and the context is strictly
    per-thread: worker threads never observe each other's batches.
    """

    _local = threading.local()

    def __init__(self) -> None:
        self._entries: List[_BatchEntry] = []

    # ------------------------------------------------------------------ #
    @classmethod
    def current(cls) -> Optional["BatchExecutionContext"]:
        """The context active on this thread, or ``None``."""
        return getattr(cls._local, "context", None)

    def activate(self) -> None:
        """Install this context for the calling thread."""
        type(self)._local.context = self

    def deactivate(self) -> None:
        """Remove this thread's active context (if it is this one)."""
        if type(self).current() is self:
            type(self)._local.context = None

    # ------------------------------------------------------------------ #
    def add(
        self,
        precompiled: PrecompiledExecution,
        seed: SeedLike,
        shots: int,
        result: SimulationResult,
    ) -> None:
        """Stash one job's batch-executed result for the solo path to claim."""
        self._entries.append(_BatchEntry(precompiled, seed, shots, result))

    def take(
        self,
        precompiled: PrecompiledExecution,
        seed: SeedLike,
        shots: int,
    ) -> Optional[SimulationResult]:
        """Claim (and remove) the stashed result matching this execution."""
        for position, entry in enumerate(self._entries):
            if entry.precompiled is precompiled and entry.seed == seed and entry.shots == shots:
                del self._entries[position]
                return entry.result
        return None

    def __len__(self) -> int:
        return len(self._entries)
