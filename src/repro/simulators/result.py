"""Execution results and distribution metrics.

Every simulator in the library returns a :class:`SimulationResult` whose
``counts`` use the Qiskit bit-string convention (classical bit 0 is the
right-most character) so that workloads such as Bernstein-Vazirani read their
expected answers naturally.  The module also hosts the distribution metrics
QRIO's fidelity ranking relies on: Hellinger fidelity, total variation
distance and success probability against an ideal reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.utils.exceptions import SimulationError


@dataclass
class SimulationResult:
    """Outcome of executing a circuit on a simulator.

    Attributes
    ----------
    counts:
        Mapping from classical bit-strings to the number of shots observing
        them.
    shots:
        Total number of shots.
    statevector:
        Final statevector for noise-free statevector runs (``None``
        otherwise).
    metadata:
        Simulator-specific extra information (seed, noise model summary, ...).
    """

    counts: Dict[str, int]
    shots: int
    statevector: Optional[np.ndarray] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def probabilities(self) -> Dict[str, float]:
        """Return the empirical outcome distribution."""
        if self.shots <= 0:
            raise SimulationError("Result has no shots")
        return {bitstring: count / self.shots for bitstring, count in self.counts.items()}

    def most_frequent(self) -> str:
        """Return the most frequently observed bit-string."""
        if not self.counts:
            raise SimulationError("Result has no counts")
        return max(self.counts.items(), key=lambda item: (item[1], item[0]))[0]

    def merged(self, other: "SimulationResult") -> "SimulationResult":
        """Combine two results of the same experiment (summing counts)."""
        counts = dict(self.counts)
        for bitstring, count in other.counts.items():
            counts[bitstring] = counts.get(bitstring, 0) + count
        return SimulationResult(counts=counts, shots=self.shots + other.shots)


def counts_to_probabilities(counts: Mapping[str, int]) -> Dict[str, float]:
    """Normalise a counts dictionary into a probability distribution."""
    total = sum(counts.values())
    if total <= 0:
        raise SimulationError("Cannot normalise an empty counts dictionary")
    return {bitstring: count / total for bitstring, count in counts.items()}


def hellinger_fidelity(counts_a: Mapping[str, int], counts_b: Mapping[str, int]) -> float:
    """Hellinger fidelity between two counts dictionaries.

    Defined as ``(sum_i sqrt(p_i * q_i))**2``; equals 1 for identical
    distributions and 0 for disjoint supports.  This is the quantity the
    QRIO evaluation reports as "achieved fidelity".
    """
    p = counts_to_probabilities(counts_a)
    q = counts_to_probabilities(counts_b)
    overlap = 0.0
    for bitstring in set(p) | set(q):
        overlap += math.sqrt(p.get(bitstring, 0.0) * q.get(bitstring, 0.0))
    return min(1.0, overlap**2)


def total_variation_distance(counts_a: Mapping[str, int], counts_b: Mapping[str, int]) -> float:
    """Total variation distance between two counts dictionaries."""
    p = counts_to_probabilities(counts_a)
    q = counts_to_probabilities(counts_b)
    distance = 0.0
    for bitstring in set(p) | set(q):
        distance += abs(p.get(bitstring, 0.0) - q.get(bitstring, 0.0))
    return 0.5 * distance


def success_probability(counts: Mapping[str, int], ideal_bitstring: str) -> float:
    """Fraction of shots observing ``ideal_bitstring``.

    Useful for workloads with a single correct answer (Bernstein-Vazirani,
    repetition code, Grover's marked state).
    """
    total = sum(counts.values())
    if total <= 0:
        raise SimulationError("Cannot compute success probability of empty counts")
    return counts.get(ideal_bitstring, 0) / total


def uniform_counts(num_clbits: int, shots: int) -> Dict[str, int]:
    """A perfectly uniform counts dictionary over ``num_clbits`` bits.

    Used as the depolarised-limit reference when reporting how far a noisy
    distribution has drifted from useful output.
    """
    num_outcomes = 2**num_clbits
    base = shots // num_outcomes
    counts = {format(i, f"0{num_clbits}b"): base for i in range(num_outcomes)}
    remainder = shots - base * num_outcomes
    for i in range(remainder):
        counts[format(i, f"0{num_clbits}b")] += 1
    return counts


def marginal_counts(counts: Mapping[str, int], bit_indices) -> Dict[str, int]:
    """Marginalise ``counts`` onto the classical bits in ``bit_indices``.

    ``bit_indices`` are classical bit positions (0 = right-most character of
    the bit-string keys); the resulting keys preserve that ordering.
    """
    bit_indices = list(bit_indices)
    marginal: Dict[str, int] = {}
    for bitstring, count in counts.items():
        key = "".join(bitstring[len(bitstring) - 1 - index] for index in reversed(bit_indices))
        marginal[key] = marginal.get(key, 0) + count
    return marginal
