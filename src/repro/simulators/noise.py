"""Noise models mirroring the error parameters of the paper's backends.

Table 2 of the paper lists the controllable backend parameters of its
simulated fleet: one- and two-qubit gate error rates, readout error rate,
readout length and T1/T2 times.  A :class:`NoiseModel` holds those parameters
per physical qubit / edge so the noisy simulators can inject errors exactly
where the device's calibration data says they occur.

The executable error channel is a Pauli (depolarizing-style) channel applied
after each gate plus classical readout bit-flips, which is the standard
NISQ-era abstraction and what the error-rate numbers in Table 2 parameterise.
Thermal relaxation during readout is folded into an additional flip
probability derived from the readout length and T1, keeping the T1/T2 columns
of Table 2 observable in the simulation without a full density-matrix engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.utils.exceptions import SimulationError
from repro.utils.validation import require_probability


def _normalise_edge(edge: Sequence[int]) -> Tuple[int, int]:
    a, b = int(edge[0]), int(edge[1])
    return (a, b) if a <= b else (b, a)


@dataclass
class NoiseModel:
    """Per-qubit / per-edge error parameters used by the noisy simulators.

    Attributes
    ----------
    one_qubit_error:
        Probability of a random Pauli error after a single-qubit gate, keyed
        by physical qubit.
    two_qubit_error:
        Probability of a random two-qubit Pauli error after a two-qubit gate,
        keyed by (undirected) edge.
    readout_error:
        Probability of flipping the measured classical bit, keyed by qubit.
    t1, t2:
        Relaxation/dephasing times in nanoseconds, keyed by qubit.
    readout_length:
        Duration of the readout operation in nanoseconds, keyed by qubit.
    default_one_qubit_error / default_two_qubit_error / default_readout_error:
        Fallbacks used for qubits or edges without explicit entries.
    """

    one_qubit_error: Dict[int, float] = field(default_factory=dict)
    two_qubit_error: Dict[Tuple[int, int], float] = field(default_factory=dict)
    readout_error: Dict[int, float] = field(default_factory=dict)
    t1: Dict[int, float] = field(default_factory=dict)
    t2: Dict[int, float] = field(default_factory=dict)
    readout_length: Dict[int, float] = field(default_factory=dict)
    default_one_qubit_error: float = 0.0
    default_two_qubit_error: float = 0.0
    default_readout_error: float = 0.0

    def __post_init__(self) -> None:
        for qubit, value in self.one_qubit_error.items():
            require_probability(value, f"one_qubit_error[{qubit}]")
        for edge, value in list(self.two_qubit_error.items()):
            require_probability(value, f"two_qubit_error[{edge}]")
        for qubit, value in self.readout_error.items():
            require_probability(value, f"readout_error[{qubit}]")
        self.two_qubit_error = {
            _normalise_edge(edge): value for edge, value in self.two_qubit_error.items()
        }

    # ------------------------------------------------------------------ #
    @classmethod
    def ideal(cls) -> "NoiseModel":
        """A noise model with zero error everywhere (useful in tests)."""
        return cls()

    @classmethod
    def uniform(
        cls,
        num_qubits: int,
        one_qubit_error: float = 0.0,
        two_qubit_error: float = 0.0,
        readout_error: float = 0.0,
    ) -> "NoiseModel":
        """A noise model applying the same error rates to every qubit/edge."""
        model = cls(
            one_qubit_error={q: one_qubit_error for q in range(num_qubits)},
            readout_error={q: readout_error for q in range(num_qubits)},
            default_one_qubit_error=one_qubit_error,
            default_two_qubit_error=two_qubit_error,
            default_readout_error=readout_error,
        )
        return model

    # ------------------------------------------------------------------ #
    def gate_error(self, qubits: Sequence[int]) -> float:
        """Error probability for a gate acting on ``qubits``."""
        if len(qubits) == 1:
            return self.one_qubit_error.get(int(qubits[0]), self.default_one_qubit_error)
        if len(qubits) == 2:
            edge = _normalise_edge(qubits)
            return self.two_qubit_error.get(edge, self.default_two_qubit_error)
        # Multi-qubit gates are charged the worst pairwise error among their
        # operands; the preset transpiler decomposes them before execution so
        # this path only matters for un-transpiled circuits.
        worst = 0.0
        operands = [int(q) for q in qubits]
        for i, qubit_a in enumerate(operands):
            for qubit_b in operands[i + 1:]:
                worst = max(worst, self.gate_error((qubit_a, qubit_b)))
        return worst

    def measurement_error(self, qubit: int) -> float:
        """Total readout flip probability for ``qubit``.

        Combines the calibrated readout assignment error with the probability
        of T1 decay during the readout window (``1 - exp(-t_read / T1)``),
        which is how the T1 and readout-length columns of Table 2 influence
        execution fidelity.
        """
        qubit = int(qubit)
        assignment = self.readout_error.get(qubit, self.default_readout_error)
        t1 = self.t1.get(qubit)
        duration = self.readout_length.get(qubit)
        decay = 0.0
        if t1 and duration and t1 > 0:
            decay = 1.0 - math.exp(-float(duration) / float(t1))
            # Decay only corrupts the |1> outcome; average over outcomes.
            decay *= 0.5
        combined = assignment + decay - assignment * decay
        return min(1.0, combined)

    # ------------------------------------------------------------------ #
    def restricted_to(self, qubits: Sequence[int]) -> "NoiseModel":
        """Return a noise model relabelled onto the given physical ``qubits``.

        ``qubits`` lists physical qubit indices in the order they become the
        compacted indices ``0..k-1`` (the output of
        :func:`repro.simulators.statevector.compact_circuit`).
        """
        index_of = {int(physical): logical for logical, physical in enumerate(qubits)}
        one_qubit = {
            index_of[q]: rate for q, rate in self.one_qubit_error.items() if q in index_of
        }
        readout = {
            index_of[q]: rate for q, rate in self.readout_error.items() if q in index_of
        }
        t1 = {index_of[q]: value for q, value in self.t1.items() if q in index_of}
        t2 = {index_of[q]: value for q, value in self.t2.items() if q in index_of}
        readout_length = {
            index_of[q]: value for q, value in self.readout_length.items() if q in index_of
        }
        two_qubit: Dict[Tuple[int, int], float] = {}
        for (a, b), rate in self.two_qubit_error.items():
            if a in index_of and b in index_of:
                two_qubit[_normalise_edge((index_of[a], index_of[b]))] = rate
        return NoiseModel(
            one_qubit_error=one_qubit,
            two_qubit_error=two_qubit,
            readout_error=readout,
            t1=t1,
            t2=t2,
            readout_length=readout_length,
            default_one_qubit_error=self.default_one_qubit_error,
            default_two_qubit_error=self.default_two_qubit_error,
            default_readout_error=self.default_readout_error,
        )

    # ------------------------------------------------------------------ #
    def expected_success_probability(self, circuit: QuantumCircuit) -> float:
        """Analytic estimated success probability (ESP) of ``circuit``.

        The classic product formula ``prod (1 - e_gate) * prod (1 - e_meas)``.
        The paper describes this style of "simplistic analytical" estimate as
        the thing Clifford canaries outperform; it is exposed here so the
        ablation benchmark can compare the two.
        """
        probability = 1.0
        for instruction in circuit:
            if instruction.name == "barrier":
                continue
            if instruction.is_measurement:
                probability *= 1.0 - self.measurement_error(instruction.qubits[0])
            elif instruction.name == "reset":
                continue
            else:
                probability *= 1.0 - self.gate_error(instruction.qubits)
        return max(0.0, min(1.0, probability))

    def average_two_qubit_error(self) -> float:
        """Mean two-qubit error over all calibrated edges."""
        if not self.two_qubit_error:
            return self.default_two_qubit_error
        return sum(self.two_qubit_error.values()) / len(self.two_qubit_error)

    def summary(self) -> Dict[str, float]:
        """Compact summary used in logs and experiment reports."""
        one_qubit = list(self.one_qubit_error.values()) or [self.default_one_qubit_error]
        readout = list(self.readout_error.values()) or [self.default_readout_error]
        return {
            "avg_1q_error": sum(one_qubit) / len(one_qubit),
            "avg_2q_error": self.average_two_qubit_error(),
            "avg_readout_error": sum(readout) / len(readout),
        }
