"""Measurement-error mitigation under the tensor-product readout model.

QRIO devices carry per-qubit readout assignment errors (Table 2); a user who
knows those rates can partially undo their effect classically.  This module
implements the standard tensor-product mitigation: each qubit's 2x2
assignment matrix is inverted independently and applied to the measured
distribution, followed by clipping negative quasi-probabilities and
renormalising.  It is exposed through the library (and the vendor tooling)
because resource selection and error mitigation are complementary halves of
the "give the user the fidelity they asked for" story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.simulators.noise import NoiseModel
from repro.simulators.result import SimulationResult, counts_to_probabilities
from repro.utils.exceptions import SimulationError
from repro.utils.validation import require_probability

#: Widest register the dense mitigation matrix will be built for.
MAX_MITIGATED_BITS = 16


def _assignment_matrix(flip_probability: float) -> np.ndarray:
    """The 2x2 column-stochastic assignment matrix for a symmetric flip."""
    p = flip_probability
    return np.array([[1.0 - p, p], [p, 1.0 - p]], dtype=float)


@dataclass
class ReadoutMitigator:
    """Tensor-product readout-error mitigator for one device.

    Parameters
    ----------
    flip_probabilities:
        Readout flip probability per *classical bit position* (bit 0 is the
        rightmost character of a counts key).
    """

    flip_probabilities: Dict[int, float]

    def __post_init__(self) -> None:
        if not self.flip_probabilities:
            raise SimulationError("ReadoutMitigator needs at least one bit's flip probability")
        for bit, probability in self.flip_probabilities.items():
            require_probability(probability, f"flip_probabilities[{bit}]")
            if probability >= 0.5:
                raise SimulationError(
                    f"Readout flip probability for bit {bit} is {probability}; rates >= 0.5 "
                    "make the assignment matrix non-invertible in any useful sense"
                )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_noise_model(cls, noise_model: NoiseModel, qubits: Sequence[int]) -> "ReadoutMitigator":
        """Build a mitigator for measurements of ``qubits`` (bit ``i`` reads ``qubits[i]``)."""
        flips = {
            bit: noise_model.measurement_error(qubit)
            for bit, qubit in enumerate(qubits)
        }
        return cls(flip_probabilities=flips)

    @classmethod
    def from_backend_properties(cls, properties, qubits: Sequence[int]) -> "ReadoutMitigator":
        """Build a mitigator from a device's calibrated readout errors.

        ``properties`` is a :class:`repro.backends.BackendProperties` (typed
        loosely here to keep the simulator layer free of backend imports).
        """
        flips = {
            bit: properties.readout_error.get(int(qubit), 0.0)
            for bit, qubit in enumerate(qubits)
        }
        return cls(flip_probabilities=flips)

    # ------------------------------------------------------------------ #
    @property
    def num_bits(self) -> int:
        """Number of classical bits the mitigator covers."""
        return max(self.flip_probabilities) + 1

    def _check_width(self, width: int) -> None:
        if width > MAX_MITIGATED_BITS:
            raise SimulationError(
                f"Cannot mitigate {width}-bit counts; the dense correction matrix is limited "
                f"to {MAX_MITIGATED_BITS} bits"
            )

    def _bit_matrix(self, bit: int) -> np.ndarray:
        return _assignment_matrix(self.flip_probabilities.get(bit, 0.0))

    def _probability_vector(self, counts: Mapping[str, int], width: int) -> np.ndarray:
        vector = np.zeros(2**width, dtype=float)
        total = sum(counts.values())
        if total <= 0:
            raise SimulationError("Cannot mitigate empty counts")
        for bitstring, count in counts.items():
            if len(bitstring) != width:
                raise SimulationError(
                    f"Counts key '{bitstring}' does not match the expected width {width}"
                )
            vector[int(bitstring, 2)] = count / total
        return vector

    def _apply_per_bit(self, vector: np.ndarray, width: int, invert: bool) -> np.ndarray:
        """Apply each bit's (possibly inverted) assignment matrix to the distribution."""
        result = vector.copy()
        for bit in range(width):
            matrix = self._bit_matrix(bit)
            if invert:
                matrix = np.linalg.inv(matrix)
            # Index of a counts key maps bit `bit` to the 2^bit place value.
            stride = 2**bit
            reshaped = result.reshape(-1, 2 * stride)
            lower = reshaped[:, :stride].copy()
            upper = reshaped[:, stride:].copy()
            reshaped[:, :stride] = matrix[0, 0] * lower + matrix[0, 1] * upper
            reshaped[:, stride:] = matrix[1, 0] * lower + matrix[1, 1] * upper
            result = reshaped.reshape(-1)
        return result

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def expected_distribution(self, ideal_counts: Mapping[str, int]) -> Dict[str, float]:
        """Forward-apply the assignment errors to an ideal distribution."""
        width = len(next(iter(ideal_counts)))
        self._check_width(width)
        vector = self._probability_vector(ideal_counts, width)
        noisy = self._apply_per_bit(vector, width, invert=False)
        return {
            format(index, f"0{width}b"): float(probability)
            for index, probability in enumerate(noisy)
            if probability > 1e-12
        }

    def mitigate_probabilities(self, counts: Mapping[str, int]) -> Dict[str, float]:
        """Invert the assignment errors and return a clipped, renormalised distribution."""
        width = len(next(iter(counts)))
        self._check_width(width)
        vector = self._probability_vector(counts, width)
        corrected = self._apply_per_bit(vector, width, invert=True)
        clipped = np.clip(corrected, 0.0, None)
        total = clipped.sum()
        if total <= 0:
            raise SimulationError("Mitigation produced an empty distribution")
        clipped /= total
        return {
            format(index, f"0{width}b"): float(probability)
            for index, probability in enumerate(clipped)
            if probability > 1e-12
        }

    def mitigate_counts(self, counts: Mapping[str, int], shots: Optional[int] = None) -> Dict[str, int]:
        """Mitigated integer counts (rounded back onto ``shots`` total shots)."""
        shots = shots if shots is not None else sum(counts.values())
        probabilities = self.mitigate_probabilities(counts)
        mitigated = {bitstring: int(round(probability * shots)) for bitstring, probability in probabilities.items()}
        return {bitstring: count for bitstring, count in mitigated.items() if count > 0}

    def mitigate_result(self, result: SimulationResult) -> SimulationResult:
        """Return a new :class:`SimulationResult` with mitigated counts."""
        counts = self.mitigate_counts(result.counts, shots=result.shots)
        metadata = dict(result.metadata)
        metadata["readout_mitigated"] = True
        return SimulationResult(counts=counts, shots=result.shots, metadata=metadata)

    def improvement(self, noisy_counts: Mapping[str, int], ideal_counts: Mapping[str, int]) -> float:
        """Hellinger-fidelity gain of mitigation against an ideal reference.

        Positive values mean mitigation moved the distribution closer to the
        ideal one; values near zero mean readout error was not the dominant
        noise source.
        """
        from repro.simulators.result import hellinger_fidelity

        before = hellinger_fidelity(noisy_counts, ideal_counts)
        mitigated = self.mitigate_counts(noisy_counts)
        after = hellinger_fidelity(mitigated, ideal_counts)
        return after - before
