"""Batched stabilizer simulation: all shots as one array program.

The scalar :class:`~repro.simulators.stabilizer.StabilizerSimulator` replays
the compiled tableau program once per shot — 1024 independent pure-Python
trajectories for a single canary execution.  This module removes the per-shot
loop by exploiting a structural property of the Aaronson-Gottesman tableau:

* Clifford gates update the X/Z bit matrices and flip generator signs by a
  mask that depends only on the X/Z bits;
* a measurement's branch (random vs deterministic) and its collapse rows are
  chosen by the X/Z bits alone — only the recorded outcome and the sign
  column depend on randomness;
* Pauli errors (the noise model's only gate-error channel) flip signs and
  never touch the X/Z bits.

Hence every trajectory of the same compiled program shares one X/Z bit
structure, and the shots differ *only in their sign vectors*.
:class:`BatchedStabilizerState` therefore stores a single ``(2n, n)``
structural tableau plus a ``(shots, 2n)`` sign matrix and evolves all shots
with NumPy boolean algebra: gates cost one vectorised sign update, random
measurements draw all shot outcomes at once, and per-shot Pauli noise becomes
a table lookup of sign-flip masks.

Two execution paths are exposed through :class:`BatchedStabilizerSimulator`:

* ``deterministic`` — a one-trajectory probe discovers that every measurement
  (and reset) is deterministic, so the tableau is evolved exactly once and
  the counts dictionary is written in O(1) in the shot count;
* ``batched`` — the general path described above, used whenever a random
  measurement outcome or a noise model makes shots differ.

The scalar engine remains in ``repro.simulators.stabilizer`` as the reference
implementation; ``tests/simulators/test_batched_stabilizer.py`` asserts the
two agree on random Clifford circuits.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.simulators.noise import NoiseModel
# The error-channel tables are shared with the scalar noisy engine so the two
# can never sample different Pauli channels.
from repro.simulators.noisy import _PAULI_LABELS, _TWO_QUBIT_PAULIS
from repro.simulators.result import SimulationResult
from repro.simulators.stabilizer import (
    _CLIFFORD_DECOMPOSITIONS,
    StabilizerState,
    TableauStep,
    compile_tableau_program,
)
from repro.utils.exceptions import StabilizerError
from repro.utils.rng import SeedLike, ensure_generator


def _phase_exponents(
    x_source: np.ndarray,
    z_source: np.ndarray,
    x_targets: np.ndarray,
    z_targets: np.ndarray,
) -> np.ndarray:
    """Aaronson-Gottesman ``g``-sums of one source row against many targets.

    ``x_source``/``z_source`` have shape ``(n,)``, the targets ``(k, n)``;
    returns the per-target exponent sums modulo 4.  For valid stabilizer
    products the sums are always even, which is what lets the per-shot sign
    update reduce to an XOR.
    """
    x1 = x_source.astype(np.int64)
    z1 = z_source.astype(np.int64)
    x2 = x_targets.astype(np.int64)
    z2 = z_targets.astype(np.int64)
    g = np.zeros_like(x2)
    case_xz = ((x1 == 1) & (z1 == 1))[None, :]
    g = np.where(case_xz, z2 - x2, g)
    case_x = ((x1 == 1) & (z1 == 0))[None, :]
    g = np.where(case_x, z2 * (2 * x2 - 1), g)
    case_z = ((x1 == 0) & (z1 == 1))[None, :]
    g = np.where(case_z, x2 * (1 - 2 * z2), g)
    return g.sum(axis=1) % 4


class BatchedStabilizerState:
    """All shots of one stabilizer trajectory as a stacked-sign tableau.

    The X/Z generator bits are shared across shots (shape ``(2n, n)``), the
    signs are per shot (shape ``(shots, 2n)``).  Every public operation
    mirrors :class:`~repro.simulators.stabilizer.StabilizerState`, with
    measurements returning one outcome per shot.
    """

    def __init__(self, num_qubits: int, shots: int) -> None:
        if num_qubits <= 0:
            raise StabilizerError("A stabilizer state needs at least one qubit")
        if shots <= 0:
            raise StabilizerError("shots must be positive")
        self.num_qubits = num_qubits
        self.shots = shots
        n = num_qubits
        self._x = np.zeros((2 * n, n), dtype=np.uint8)
        self._z = np.zeros((2 * n, n), dtype=np.uint8)
        self._r = np.zeros((shots, 2 * n), dtype=np.uint8)
        for i in range(n):
            self._x[i, i] = 1
            self._z[n + i, i] = 1

    # ------------------------------------------------------------------ #
    # Primitive Clifford updates (signs vectorised over shots)
    # ------------------------------------------------------------------ #
    def apply_h(self, qubit: int) -> None:
        """Apply a Hadamard to ``qubit`` of every shot."""
        x_col = self._x[:, qubit].copy()
        z_col = self._z[:, qubit].copy()
        self._r ^= (x_col & z_col)[None, :]
        self._x[:, qubit] = z_col
        self._z[:, qubit] = x_col

    def apply_s(self, qubit: int) -> None:
        """Apply the phase gate S to ``qubit`` of every shot."""
        x_col = self._x[:, qubit]
        z_col = self._z[:, qubit]
        self._r ^= (x_col & z_col)[None, :]
        self._z[:, qubit] = z_col ^ x_col

    def apply_cx(self, control: int, target: int) -> None:
        """Apply a CNOT from ``control`` to ``target`` of every shot."""
        x_c = self._x[:, control]
        z_c = self._z[:, control]
        x_t = self._x[:, target]
        z_t = self._z[:, target]
        self._r ^= (x_c & z_t & (x_t ^ z_c ^ 1))[None, :]
        self._x[:, target] = x_t ^ x_c
        self._z[:, control] = z_c ^ z_t

    def apply_gate(self, name: str, qubits: Sequence[int]) -> None:
        """Apply a named Clifford gate to ``qubits`` of every shot."""
        if name not in _CLIFFORD_DECOMPOSITIONS:
            raise StabilizerError(f"Gate '{name}' is not a Clifford tableau gate")
        for primitive, operand_indices in _CLIFFORD_DECOMPOSITIONS[name]:
            operands = [qubits[i] for i in operand_indices]
            if primitive == "h":
                self.apply_h(operands[0])
            elif primitive == "s":
                self.apply_s(operands[0])
            else:
                self.apply_cx(operands[0], operands[1])

    # ------------------------------------------------------------------ #
    def pauli_flip_mask(self, pauli: str, qubit: int) -> np.ndarray:
        """Sign-flip mask (shape ``(2n,)``) of a Pauli error on ``qubit``.

        Pauli errors never touch the X/Z bits, so injecting one into a subset
        of shots is a masked XOR of this vector into their sign rows — the
        property that keeps noisy batches on the shared-structure fast path.
        """
        if pauli == "x":
            return self._z[:, qubit]
        if pauli == "z":
            return self._x[:, qubit]
        if pauli == "y":
            return self._z[:, qubit] ^ self._x[:, qubit]
        raise StabilizerError(f"Unknown Pauli '{pauli}'")

    def apply_pauli(self, pauli: str, qubit: int, shot_indices: Optional[np.ndarray] = None) -> None:
        """Apply a Pauli error to ``qubit`` of the selected shots (all by default).

        ``shot_indices`` selects which shots receive the error: ``None`` (all
        shots), an integer index array, or a boolean mask of shape
        ``(shots,)`` — the form the cross-job demux layer produces natively.
        """
        mask = self.pauli_flip_mask(pauli, qubit)
        if shot_indices is None:
            self._r ^= mask[None, :]
            return
        selector = np.asarray(shot_indices)
        if selector.dtype == np.bool_:
            if selector.shape != (self.shots,):
                raise StabilizerError(
                    f"Boolean shot mask must have shape ({self.shots},), got {selector.shape}"
                )
            self._r ^= selector.astype(np.uint8)[:, None] & mask[None, :]
        else:
            self._r[selector] ^= mask[None, :]

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure(self, qubit: int, rng: np.random.Generator) -> np.ndarray:
        """Measure ``qubit`` on every shot; returns one outcome bit per shot."""
        n = self.num_qubits
        stabilizer_rows = np.nonzero(self._x[n:, qubit])[0]
        if stabilizer_rows.size > 0:
            # Random outcome: same collapse structure for every shot, fresh
            # random bits per shot.
            p = int(stabilizer_rows[0]) + n
            rows_to_fix = np.array(
                [row for row in range(2 * n) if row != p and self._x[row, qubit]],
                dtype=np.intp,
            )
            if rows_to_fix.size:
                exponents = _phase_exponents(
                    self._x[p], self._z[p], self._x[rows_to_fix], self._z[rows_to_fix]
                )
                phase_bits = (exponents == 2).astype(np.uint8)
                self._r[:, rows_to_fix] ^= self._r[:, p : p + 1] ^ phase_bits[None, :]
                self._x[rows_to_fix] ^= self._x[p][None, :]
                self._z[rows_to_fix] ^= self._z[p][None, :]
            self._x[p - n] = self._x[p]
            self._z[p - n] = self._z[p]
            self._r[:, p - n] = self._r[:, p]
            self._x[p] = 0
            self._z[p] = 0
            self._z[p, qubit] = 1
            outcomes = rng.integers(0, 2, size=self.shots, dtype=np.uint8)
            self._r[:, p] = outcomes
            return outcomes
        # Deterministic outcome: the product structure (and hence the phase
        # contribution of the g-function chain) is shared; only the generator
        # signs differ per shot, entering the outcome as an XOR.
        involved = np.nonzero(self._x[:n, qubit])[0]
        if involved.size == 0:
            return np.zeros(self.shots, dtype=np.uint8)
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        phase_bit = 0
        for row in involved:
            exponent = _phase_exponents(
                self._x[n + row], self._z[n + row], scratch_x[None, :], scratch_z[None, :]
            )[0]
            phase_bit ^= int(exponent == 2)
            scratch_x ^= self._x[n + row]
            scratch_z ^= self._z[n + row]
        sign_parity = self._r[:, n + involved].sum(axis=1, dtype=np.int64) & 1
        return (sign_parity ^ phase_bit).astype(np.uint8)

    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        """Reset ``qubit`` to ``|0>`` on every shot (measure, flip the 1s)."""
        outcomes = self.measure(qubit, rng)
        flipped = np.nonzero(outcomes)[0]
        if flipped.size:
            self.apply_pauli("x", qubit, shot_indices=flipped)

    # ------------------------------------------------------------------ #
    def stabilizer_strings(self, shot: int = 0) -> List[str]:
        """Signed Pauli strings of one shot's stabilizer generators (for tests)."""
        n = self.num_qubits
        strings = []
        for row in range(n, 2 * n):
            sign = "-" if self._r[shot, row] else "+"
            paulis = []
            for qubit in range(n):
                x_bit = self._x[row, qubit]
                z_bit = self._z[row, qubit]
                if x_bit and z_bit:
                    paulis.append("Y")
                elif x_bit:
                    paulis.append("X")
                elif z_bit:
                    paulis.append("Z")
                else:
                    paulis.append("I")
            strings.append(sign + "".join(paulis))
        return strings


# --------------------------------------------------------------------------- #
# Deterministic fast path
# --------------------------------------------------------------------------- #
def probe_deterministic_outcome(
    program: Sequence[TableauStep],
    num_qubits: int,
    width: int,
) -> Optional[str]:
    """Single-trajectory probe for measurement-deterministic programs.

    Runs the compiled program once on the scalar tableau; every measurement
    (and reset) must be deterministic for the probe to succeed, in which case
    all shots share the returned bit-string and the simulator can skip shot
    batching entirely.  Returns ``None`` as soon as a random outcome is
    possible.  Only valid for noise-free execution.
    """
    state = StabilizerState(num_qubits)
    clbits = ["0"] * width
    for step in program:
        if step.kind == "measure":
            value = state.expectation_z(step.qubits[0])
            if value is None:
                return None
            clbits[width - 1 - step.clbit] = str(value)
        elif step.kind == "reset":
            value = state.expectation_z(step.qubits[0])
            if value is None:
                return None
            if value:
                state.apply_gate("x", (step.qubits[0],))
        else:
            for name in step.primitives:
                state.apply_gate(name, step.qubits)
    return "".join(clbits)


# --------------------------------------------------------------------------- #
# Simulator front end
# --------------------------------------------------------------------------- #
class BatchedStabilizerSimulator:
    """Shot-batched simulator for Clifford circuits, with optional Pauli noise.

    Statistically equivalent to the scalar
    :class:`~repro.simulators.stabilizer.StabilizerSimulator` (and, when a
    noise model is given, to
    :class:`~repro.simulators.noisy.NoisyStabilizerSimulator`): the same
    Pauli-error channel and readout flips are sampled, just for all shots at
    once.  The RNG consumption order differs from the scalar engines, so
    seeded runs agree in distribution rather than shot-for-shot.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = ensure_generator(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        noise_model: Optional[NoiseModel] = None,
        program: Optional[Sequence[TableauStep]] = None,
    ) -> SimulationResult:
        """Execute ``circuit`` for ``shots`` trajectories as one array program.

        ``program`` may carry the circuit's precompiled tableau program (from
        :func:`~repro.simulators.stabilizer.compile_tableau_program`), in
        which case the per-gate circuit walk is skipped entirely — the
        compile-once/execute-many path used by execution plans.  The caller
        is responsible for the program actually matching the circuit.
        """
        if program is None:
            program = compile_tableau_program(circuit)
        return self.run_program(
            program,
            circuit.num_qubits,
            circuit.num_clbits,
            shots=shots,
            noise_model=noise_model,
        )

    def run_program(
        self,
        program: Sequence[TableauStep],
        num_qubits: int,
        num_clbits: int,
        shots: int = 1024,
        noise_model: Optional[NoiseModel] = None,
    ) -> SimulationResult:
        """Execute a precompiled tableau program without touching a circuit."""
        if shots <= 0:
            raise StabilizerError("shots must be positive")
        width = max(num_clbits, 1)
        ideal = noise_model is None
        if ideal:
            deterministic = probe_deterministic_outcome(program, num_qubits, width)
            if deterministic is not None:
                return SimulationResult(
                    counts=dict(Counter({deterministic: shots})),
                    shots=shots,
                    metadata={"simulator": "stabilizer", "ideal": True, "method": "deterministic"},
                )
        counts = self._run_batched(program, num_qubits, width, shots, noise_model)
        return SimulationResult(
            counts=counts,
            shots=shots,
            metadata={"simulator": "stabilizer", "ideal": ideal, "method": "batched"},
        )

    # ------------------------------------------------------------------ #
    def _run_batched(
        self,
        program: Sequence[TableauStep],
        num_qubits: int,
        width: int,
        shots: int,
        noise_model: Optional[NoiseModel],
    ) -> Dict[str, int]:
        state = BatchedStabilizerState(num_qubits, shots)
        bits = np.zeros((shots, width), dtype=np.uint8)
        # Classical-bit string positions, resolved once per program (bit 0 is
        # the right-most character, as everywhere in the library).
        positions = {
            index: width - 1 - step.clbit
            for index, step in enumerate(program)
            if step.kind == "measure"
        }
        for index, step in enumerate(program):
            if step.kind == "measure":
                outcomes = state.measure(step.qubits[0], self._rng)
                if noise_model is not None:
                    flip_probability = noise_model.measurement_error(step.qubits[0])
                    if flip_probability > 0.0:
                        flips = self._rng.random(shots) < flip_probability
                        outcomes = outcomes ^ flips.astype(np.uint8)
                bits[:, positions[index]] = outcomes
                continue
            if step.kind == "reset":
                state.reset(step.qubits[0], self._rng)
                continue
            for name in step.primitives:
                state.apply_gate(name, step.qubits)
            if noise_model is not None:
                error_rate = noise_model.gate_error(step.qubits)
                if error_rate > 0.0:
                    self._inject_pauli_errors(state, step.qubits, error_rate)
        return _counts_from_bits(bits)

    def _inject_pauli_errors(
        self,
        state: BatchedStabilizerState,
        qubits: Sequence[int],
        error_rate: float,
    ) -> None:
        """Flip the signs of the errored shots via a Pauli-mask table lookup."""
        shots = state.shots
        error_mask = self._rng.random(shots) < error_rate
        if not error_mask.any():
            return
        if len(qubits) == 1:
            table = np.stack([state.pauli_flip_mask(label, qubits[0]) for label in _PAULI_LABELS])
            choices = self._rng.integers(0, len(_PAULI_LABELS), size=shots)
        else:
            rows = []
            for pauli_a, pauli_b in _TWO_QUBIT_PAULIS:
                row = np.zeros(2 * state.num_qubits, dtype=np.uint8)
                if pauli_a is not None:
                    row ^= state.pauli_flip_mask(pauli_a, qubits[0])
                if pauli_b is not None:
                    row ^= state.pauli_flip_mask(pauli_b, qubits[1])
                rows.append(row)
            table = np.stack(rows)
            choices = self._rng.integers(0, len(_TWO_QUBIT_PAULIS), size=shots)
        flips = np.where(error_mask[:, None], table[choices], 0).astype(np.uint8)
        state._r ^= flips


def _counts_from_bits(bits: np.ndarray) -> Dict[str, int]:
    """Aggregate a ``(shots, width)`` outcome matrix into a counts dictionary."""
    unique_rows, row_counts = np.unique(bits, axis=0, return_counts=True)
    counter: Counter = Counter()
    for row, count in zip(unique_rows, row_counts):
        key = "".join("1" if bit else "0" for bit in row)
        counter[key] = int(count)
    return dict(counter)
