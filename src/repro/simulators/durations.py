"""Gate-duration bookkeeping for decoherence-aware fidelity estimates.

The paper's Table 2 exposes T1/T2 times and a readout length for every
simulated device, but the base noise channel only charges per-gate Pauli
errors.  To make the T1/T2 columns quantitatively meaningful — and to give
the analytic fidelity estimators a decoherence term — this module computes
how long a circuit keeps each qubit busy and idle under a simple
fixed-duration gate model (one duration per gate arity, as hardware vendors
publish for their native gate sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.utils.exceptions import SimulationError

#: Representative superconducting-transmon gate durations in nanoseconds.
DEFAULT_ONE_QUBIT_NS = 35.0
DEFAULT_TWO_QUBIT_NS = 300.0
DEFAULT_READOUT_NS = 3000.0


@dataclass(frozen=True)
class GateDurations:
    """Fixed gate durations (nanoseconds) per operation class."""

    one_qubit_ns: float = DEFAULT_ONE_QUBIT_NS
    two_qubit_ns: float = DEFAULT_TWO_QUBIT_NS
    readout_ns: float = DEFAULT_READOUT_NS

    def __post_init__(self) -> None:
        for label, value in (
            ("one_qubit_ns", self.one_qubit_ns),
            ("two_qubit_ns", self.two_qubit_ns),
            ("readout_ns", self.readout_ns),
        ):
            if value < 0:
                raise SimulationError(f"{label} must be non-negative, got {value}")

    def duration_of(self, num_qubits: int, is_measurement: bool = False) -> float:
        """Duration of one instruction given its operand count."""
        if is_measurement:
            return self.readout_ns
        if num_qubits <= 1:
            return self.one_qubit_ns
        if num_qubits == 2:
            return self.two_qubit_ns
        # Multi-qubit gates are decomposed by the transpiler; charge them as a
        # CX ladder when they do show up un-decomposed.
        return self.two_qubit_ns * (num_qubits - 1)


def qubit_busy_times(circuit: QuantumCircuit, durations: Optional[GateDurations] = None) -> Dict[int, float]:
    """Total time (ns) each qubit spends inside gates or readout.

    Barriers are free; every other instruction charges its duration to each
    of its operand qubits.
    """
    durations = durations or GateDurations()
    busy: Dict[int, float] = {qubit: 0.0 for qubit in range(circuit.num_qubits)}
    for instruction in circuit:
        if instruction.name == "barrier":
            continue
        length = durations.duration_of(len(instruction.qubits), instruction.is_measurement)
        for qubit in instruction.qubits:
            busy[qubit] += length
    return busy


def qubit_finish_times(circuit: QuantumCircuit, durations: Optional[GateDurations] = None) -> Dict[int, float]:
    """As-soon-as-possible finish time (ns) of each qubit's last operation.

    Instructions are scheduled greedily: each starts when all of its operands
    are free.  This is the schedule the decoherence estimate assumes.
    """
    durations = durations or GateDurations()
    finish: Dict[int, float] = {qubit: 0.0 for qubit in range(circuit.num_qubits)}
    for instruction in circuit:
        if instruction.name == "barrier":
            # A barrier synchronises its operands.
            operands = instruction.qubits or tuple(range(circuit.num_qubits))
            level = max(finish[qubit] for qubit in operands) if operands else 0.0
            for qubit in operands:
                finish[qubit] = level
            continue
        length = durations.duration_of(len(instruction.qubits), instruction.is_measurement)
        start = max(finish[qubit] for qubit in instruction.qubits)
        for qubit in instruction.qubits:
            finish[qubit] = start + length
    return finish


def circuit_duration(circuit: QuantumCircuit, durations: Optional[GateDurations] = None) -> float:
    """Wall-clock duration (ns) of the circuit under as-soon-as-possible scheduling."""
    finish = qubit_finish_times(circuit, durations)
    return max(finish.values()) if finish else 0.0


def qubit_idle_times(circuit: QuantumCircuit, durations: Optional[GateDurations] = None) -> Dict[int, float]:
    """Idle time (ns) per qubit: total circuit duration minus the qubit's busy time.

    Idle time is when a qubit decoheres without doing useful work — the
    quantity the decoherence-aware analytic estimator multiplies against
    ``T1``/``T2``.  Qubits the circuit never touches report zero idle time
    (they carry no information, so their decoherence is irrelevant).
    """
    durations = durations or GateDurations()
    busy = qubit_busy_times(circuit, durations)
    total = circuit_duration(circuit, durations)
    idle: Dict[int, float] = {}
    for qubit, busy_time in busy.items():
        idle[qubit] = max(0.0, total - busy_time) if busy_time > 0.0 else 0.0
    return idle
