"""Stabilizer (Clifford) simulation via the Aaronson-Gottesman CHP tableau.

The Gottesman-Knill theorem — cited directly by the paper — states that
circuits composed solely of Clifford operations can be simulated in
polynomial time.  QRIO's fidelity ranking exploits this by scoring devices
with *Clifford canary* versions of the user's circuit; this module provides
the polynomial-time simulator that makes the canary's ideal reference
distribution computable even for the fleet's 100-qubit devices.

The tableau follows Aaronson & Gottesman, "Improved simulation of stabilizer
circuits" (2004): ``2n`` generator rows (destabilizers then stabilizers),
each a Pauli string stored as X/Z bit vectors plus a sign bit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.clifford_utils import clifford_sequence_for
from repro.circuits.instruction import Instruction
from repro.simulators.result import SimulationResult
from repro.utils.exceptions import StabilizerError
from repro.utils.rng import SeedLike, ensure_generator

#: Decomposition of every supported Clifford gate into the tableau primitives
#: ``h``, ``s`` and ``cx``.  Operand placeholders are indices into the
#: instruction's qubit tuple.
_CLIFFORD_DECOMPOSITIONS: Dict[str, Tuple[Tuple[str, Tuple[int, ...]], ...]] = {
    "id": (),
    "h": (("h", (0,)),),
    "s": (("s", (0,)),),
    "sdg": (("s", (0,)), ("s", (0,)), ("s", (0,))),
    "x": (("h", (0,)), ("s", (0,)), ("s", (0,)), ("h", (0,))),
    "z": (("s", (0,)), ("s", (0,))),
    "y": (
        ("s", (0,)),
        ("s", (0,)),
        ("h", (0,)),
        ("s", (0,)),
        ("s", (0,)),
        ("h", (0,)),
    ),
    "sx": (("h", (0,)), ("s", (0,)), ("h", (0,))),
    "cx": (("cx", (0, 1)),),
    "cz": (("h", (1,)), ("cx", (0, 1)), ("h", (1,))),
    "cy": (
        ("s", (1,)),
        ("s", (1,)),
        ("s", (1,)),
        ("cx", (0, 1)),
        ("s", (1,)),
    ),
    "swap": (("cx", (0, 1)), ("cx", (1, 0)), ("cx", (0, 1))),
}


def is_stabilizer_gate(name: str) -> bool:
    """Return ``True`` when ``name`` can be executed on the tableau by name alone.

    Parameterised gates (``u1``, ``u2``, ``u3``, ``rz``, ...) may still be
    executable when their specific parameters make them Clifford; use
    :func:`stabilizer_sequence` / :func:`circuit_is_stabilizer_compatible` for
    the instruction-level check.
    """
    return name in _CLIFFORD_DECOMPOSITIONS or name in ("measure", "reset", "barrier")


def stabilizer_sequence(instruction: Instruction) -> Optional[Tuple[str, ...]]:
    """Native gate sequence implementing ``instruction`` on the tableau.

    Returns ``None`` when the instruction is not a Clifford operation (or is
    a multi-qubit gate outside the native set).
    """
    if instruction.name in _CLIFFORD_DECOMPOSITIONS and not instruction.params:
        return (instruction.name,)
    return clifford_sequence_for(instruction)


@dataclass(frozen=True)
class TableauStep:
    """One step of a pre-compiled tableau program.

    ``kind`` is ``"gate"``, ``"measure"`` or ``"reset"``.  For gates,
    ``primitives`` holds the already-resolved sequence of native tableau gate
    names (so the per-shot loop never has to re-derive Clifford sequences),
    and ``qubits`` the operands of the *original* instruction — which is what
    noise models charge errors against.
    """

    kind: str
    qubits: Tuple[int, ...]
    primitives: Tuple[str, ...] = ()
    clbit: Optional[int] = None


def compile_tableau_program(circuit: QuantumCircuit) -> List[TableauStep]:
    """Pre-compile ``circuit`` into primitive tableau steps.

    Raises :class:`StabilizerError` when the circuit contains a non-Clifford
    gate.  Both the ideal and the noisy stabilizer simulators run this once
    per circuit and then replay the compiled program for every shot.
    """
    program: List[TableauStep] = []
    for instruction in circuit:
        if instruction.name == "barrier":
            continue
        if instruction.name == "measure":
            program.append(
                TableauStep(kind="measure", qubits=instruction.qubits, clbit=instruction.clbits[0])
            )
            continue
        if instruction.name == "reset":
            program.append(TableauStep(kind="reset", qubits=instruction.qubits))
            continue
        sequence = stabilizer_sequence(instruction)
        if sequence is None:
            raise StabilizerError(
                f"Gate '{instruction.name}{tuple(instruction.params)}' is not a Clifford operation"
            )
        primitives = tuple(name for name in sequence if name != "id")
        program.append(TableauStep(kind="gate", qubits=instruction.qubits, primitives=primitives))
    return program


def circuit_is_stabilizer_compatible(circuit: QuantumCircuit) -> bool:
    """``True`` when every instruction of ``circuit`` can run on the tableau."""
    for instruction in circuit:
        if instruction.name in ("measure", "reset", "barrier"):
            continue
        if stabilizer_sequence(instruction) is None:
            return False
    return True


class StabilizerState:
    """A stabilizer state over ``num_qubits`` qubits (CHP tableau)."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits <= 0:
            raise StabilizerError("A stabilizer state needs at least one qubit")
        self.num_qubits = num_qubits
        n = num_qubits
        # Rows 0..n-1: destabilizers (initially X_i); rows n..2n-1: stabilizers
        # (initially Z_i).
        self._x = np.zeros((2 * n, n), dtype=np.uint8)
        self._z = np.zeros((2 * n, n), dtype=np.uint8)
        self._r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self._x[i, i] = 1
            self._z[n + i, i] = 1

    # ------------------------------------------------------------------ #
    # Primitive Clifford updates (Aaronson-Gottesman rules)
    # ------------------------------------------------------------------ #
    def apply_h(self, qubit: int) -> None:
        """Apply a Hadamard to ``qubit``."""
        x_col = self._x[:, qubit].copy()
        z_col = self._z[:, qubit].copy()
        self._r ^= x_col & z_col
        self._x[:, qubit] = z_col
        self._z[:, qubit] = x_col

    def apply_s(self, qubit: int) -> None:
        """Apply the phase gate S to ``qubit``."""
        x_col = self._x[:, qubit]
        z_col = self._z[:, qubit]
        self._r ^= x_col & z_col
        self._z[:, qubit] = z_col ^ x_col

    def apply_cx(self, control: int, target: int) -> None:
        """Apply a CNOT from ``control`` to ``target``."""
        x_c = self._x[:, control]
        z_c = self._z[:, control]
        x_t = self._x[:, target]
        z_t = self._z[:, target]
        self._r ^= x_c & z_t & (x_t ^ z_c ^ 1)
        self._x[:, target] = x_t ^ x_c
        self._z[:, control] = z_c ^ z_t

    # ------------------------------------------------------------------ #
    def apply_pauli(self, pauli: str, qubit: int) -> None:
        """Apply a Pauli error (``"x"``, ``"y"`` or ``"z"``) to ``qubit``.

        Pauli operators only toggle generator signs; this is the hook the
        noisy stabilizer simulator uses to inject sampled gate errors.
        """
        if pauli == "x":
            self._r ^= self._z[:, qubit]
        elif pauli == "z":
            self._r ^= self._x[:, qubit]
        elif pauli == "y":
            self._r ^= self._z[:, qubit] ^ self._x[:, qubit]
        else:
            raise StabilizerError(f"Unknown Pauli '{pauli}'")

    def apply_gate(self, name: str, qubits: Sequence[int]) -> None:
        """Apply a named Clifford gate to ``qubits``."""
        if name not in _CLIFFORD_DECOMPOSITIONS:
            raise StabilizerError(f"Gate '{name}' is not a Clifford tableau gate")
        for primitive, operand_indices in _CLIFFORD_DECOMPOSITIONS[name]:
            operands = [qubits[i] for i in operand_indices]
            if primitive == "h":
                self.apply_h(operands[0])
            elif primitive == "s":
                self.apply_s(operands[0])
            else:
                self.apply_cx(operands[0], operands[1])

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        """Measure ``qubit`` in the computational basis, collapsing the state."""
        n = self.num_qubits
        stabilizer_rows = np.nonzero(self._x[n:, qubit])[0]
        if stabilizer_rows.size > 0:
            # Random outcome: the measurement anti-commutes with a stabilizer.
            p = int(stabilizer_rows[0]) + n
            rows_to_fix = [
                row
                for row in range(2 * n)
                if row != p and self._x[row, qubit]
            ]
            for row in rows_to_fix:
                self._row_multiply(row, p)
            self._x[p - n] = self._x[p]
            self._z[p - n] = self._z[p]
            self._r[p - n] = self._r[p]
            self._x[p] = 0
            self._z[p] = 0
            self._z[p, qubit] = 1
            outcome = int(rng.integers(0, 2))
            self._r[p] = outcome
            return outcome
        # Deterministic outcome: accumulate the product of the stabilizers
        # whose destabilizer partners anti-commute with Z_qubit.
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_r = 0
        for row in range(n):
            if self._x[row, qubit]:
                scratch_x, scratch_z, scratch_r = self._product(
                    scratch_x, scratch_z, scratch_r, row + n
                )
        return int(scratch_r)

    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        """Reset ``qubit`` to ``|0>`` (measure, then flip when the outcome is 1)."""
        outcome = self.measure(qubit, rng)
        if outcome == 1:
            self.apply_gate("x", (qubit,))

    def expectation_z(self, qubit: int) -> Optional[int]:
        """Return the deterministic Z outcome of ``qubit`` or ``None`` if random."""
        n = self.num_qubits
        if np.any(self._x[n:, qubit]):
            return None
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_r = 0
        for row in range(n):
            if self._x[row, qubit]:
                scratch_x, scratch_z, scratch_r = self._product(
                    scratch_x, scratch_z, scratch_r, row + n
                )
        return int(scratch_r)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _phase_exponent(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray) -> int:
        """Sum of the Aaronson-Gottesman ``g`` function over all columns (mod 4)."""
        x1 = x1.astype(np.int64)
        z1 = z1.astype(np.int64)
        x2 = x2.astype(np.int64)
        z2 = z2.astype(np.int64)
        # g = 0 when (x1, z1) = (0, 0);  z2*(2*x2-1) when (1,1);
        # z2*(2*z2... ) -- expressed per case below.
        g = np.zeros_like(x1)
        case_xz = (x1 == 1) & (z1 == 1)
        g = np.where(case_xz, z2 - x2, g)
        case_x = (x1 == 1) & (z1 == 0)
        g = np.where(case_x, z2 * (2 * x2 - 1), g)
        case_z = (x1 == 0) & (z1 == 1)
        g = np.where(case_z, x2 * (1 - 2 * z2), g)
        return int(np.sum(g)) % 4

    def _row_multiply(self, target_row: int, source_row: int) -> None:
        """Left-multiply generator ``target_row`` by generator ``source_row``."""
        exponent = (
            2 * int(self._r[source_row])
            + 2 * int(self._r[target_row])
            + self._phase_exponent(
                self._x[source_row],
                self._z[source_row],
                self._x[target_row],
                self._z[target_row],
            )
        ) % 4
        self._r[target_row] = 1 if exponent == 2 else 0
        self._x[target_row] ^= self._x[source_row]
        self._z[target_row] ^= self._z[source_row]

    def _product(
        self,
        scratch_x: np.ndarray,
        scratch_z: np.ndarray,
        scratch_r: int,
        row: int,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Multiply the scratch Pauli by generator ``row`` and return it."""
        exponent = (
            2 * int(self._r[row])
            + 2 * scratch_r
            + self._phase_exponent(self._x[row], self._z[row], scratch_x, scratch_z)
        ) % 4
        new_r = 1 if exponent == 2 else 0
        return scratch_x ^ self._x[row], scratch_z ^ self._z[row], new_r

    def stabilizer_strings(self) -> List[str]:
        """Return the stabilizer generators as signed Pauli strings (for tests)."""
        n = self.num_qubits
        strings = []
        for row in range(n, 2 * n):
            sign = "-" if self._r[row] else "+"
            paulis = []
            for qubit in range(n):
                x_bit = self._x[row, qubit]
                z_bit = self._z[row, qubit]
                if x_bit and z_bit:
                    paulis.append("Y")
                elif x_bit:
                    paulis.append("X")
                elif z_bit:
                    paulis.append("Z")
                else:
                    paulis.append("I")
            strings.append(sign + "".join(paulis))
        return strings


class StabilizerSimulator:
    """Shot-based simulator for Clifford circuits.

    ``method`` selects the execution engine:

    * ``"auto"`` (default) / ``"batched"`` — the batched engine of
      :mod:`repro.simulators.batched_stabilizer`, which evolves all shots as
      one stacked-sign tableau (with a deterministic-circuit fast path) and
      is typically orders of magnitude faster than per-shot replay;
    * ``"scalar"`` — the original per-shot tableau loop, kept as the
      reference implementation the batched engine is tested against.
    """

    def __init__(self, seed: SeedLike = None, method: str = "auto") -> None:
        if method not in ("auto", "batched", "scalar"):
            raise StabilizerError("method must be 'auto', 'batched' or 'scalar'")
        self._rng = ensure_generator(seed)
        self._method = method

    def validate(self, circuit: QuantumCircuit) -> None:
        """Raise :class:`StabilizerError` if the circuit has non-Clifford gates."""
        for instruction in circuit:
            if instruction.name in ("measure", "reset", "barrier"):
                continue
            if stabilizer_sequence(instruction) is None:
                raise StabilizerError(
                    f"Gate '{instruction.name}{tuple(instruction.params)}' is not Clifford; "
                    "cliffordize the circuit first (repro.fidelity.cliffordize)"
                )

    def run(self, circuit: QuantumCircuit, shots: int = 1024) -> SimulationResult:
        """Execute ``circuit`` for ``shots`` independent tableau trajectories."""
        if shots <= 0:
            raise StabilizerError("shots must be positive")
        if self._method in ("auto", "batched"):
            # Imported lazily: batched_stabilizer imports this module.
            from repro.simulators.batched_stabilizer import BatchedStabilizerSimulator

            return BatchedStabilizerSimulator(seed=self._rng).run(circuit, shots=shots)
        program = compile_tableau_program(circuit)
        width = max(circuit.num_clbits, 1)
        # Classical-bit string positions, resolved once per program rather
        # than once per shot.
        positions = {
            index: width - 1 - step.clbit
            for index, step in enumerate(program)
            if step.kind == "measure"
        }
        counts: Counter = Counter(
            self._single_shot(program, positions, circuit.num_qubits, width)
            for _ in range(shots)
        )
        return SimulationResult(
            counts=dict(counts),
            shots=shots,
            metadata={"simulator": "stabilizer", "ideal": True, "method": "scalar"},
        )

    def _single_shot(
        self,
        program: List[TableauStep],
        positions: Dict[int, int],
        num_qubits: int,
        width: int,
    ) -> str:
        state = StabilizerState(num_qubits)
        clbits = ["0"] * width
        for index, step in enumerate(program):
            if step.kind == "measure":
                outcome = state.measure(step.qubits[0], self._rng)
                clbits[positions[index]] = str(outcome)
            elif step.kind == "reset":
                state.reset(step.qubits[0], self._rng)
            else:
                for name in step.primitives:
                    state.apply_gate(name, step.qubits)
        return "".join(clbits)


def apply_instruction_to_tableau(state: StabilizerState, instruction: Instruction) -> None:
    """Apply a (Clifford) gate instruction to ``state``.

    Named tableau gates are applied directly; parameterised gates that are
    Clifford for their specific angles (``u2(0, pi)`` is a Hadamard, ...) are
    applied via their equivalent native sequence.
    """
    if instruction.name in _CLIFFORD_DECOMPOSITIONS and not instruction.params:
        state.apply_gate(instruction.name, instruction.qubits)
        return
    sequence = stabilizer_sequence(instruction)
    if sequence is None:
        raise StabilizerError(
            f"Gate '{instruction.name}{tuple(instruction.params)}' is not a Clifford operation"
        )
    for name in sequence:
        if name == "id":
            continue
        state.apply_gate(name, instruction.qubits)
