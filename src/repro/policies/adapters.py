"""Thin adapters between the legacy placement abstractions and the protocol.

Four bridges keep every historical entry point working, with routing pinned
bit-for-bit by ``tests/policies/test_adapter_equivalence.py``:

* :class:`AllocationPolicyAdapter` — a legacy cloud
  :class:`~repro.cloud.policies.AllocationPolicy` as a
  :class:`~repro.policies.PlacementPolicy`;
* :func:`as_allocation_policy` — the reverse: any unified policy as an
  ``AllocationPolicy`` the discrete-event cloud simulator can drive;
* :class:`RankingStrategyAdapter` — a per-job meta-server
  :class:`~repro.core.strategies.RankingStrategy` as a unified policy;
* :class:`PluginPolicyAdapter` / :class:`PolicyFilterPlugin` /
  :class:`PolicyScorePlugin` — cluster framework filter/score plugins as a
  unified policy, and a unified policy as framework plugins.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.backends.backend import Backend
from repro.scenarios.arrivals import JobRequest
from repro.cloud.policies import AllocationContext, AllocationPolicy
from repro.cloud.queueing import ExecutionTimeModel
from repro.cluster.framework import FilterPlugin, ScorePlugin
from repro.cluster.job import Job
from repro.cluster.node import Node
from repro.core.strategies import RankingStrategy
from repro.policies.api import DeviceScore, PlacementContext, PlacementDecision, PlacementPolicy
from repro.utils.exceptions import SchedulingError


class _OracleQueue:
    """Duck-typed stand-in for a :class:`~repro.cloud.queueing.DeviceQueue`.

    Legacy load-aware policies only call ``predicted_wait``; when a unified
    context (rather than a real cloud session) drives them, this forwards to
    the context's queue-wait oracle.
    """

    def __init__(self, device_name: str, ctx: PlacementContext) -> None:
        self._device_name = device_name
        self._ctx = ctx

    def predicted_wait(self, arrival_time: float) -> float:
        return self._ctx.wait_for(self._device_name)


class AllocationPolicyAdapter(PlacementPolicy):
    """A legacy cloud allocation policy behind the unified protocol.

    The filter stage reproduces the legacy qubit-feasibility check; the
    select stage hands the legacy policy a synthesized
    :class:`~repro.cloud.policies.AllocationContext` (or the engine-native
    one when the context carries it), so stateful policies (RNG streams,
    round-robin cursors) behave exactly as before.
    """

    def __init__(self, legacy: AllocationPolicy) -> None:
        self._legacy = legacy

    @property
    def name(self) -> str:
        return self._legacy.name

    @property
    def legacy(self) -> AllocationPolicy:
        """The wrapped allocation policy."""
        return self._legacy

    def _allocation_pair(
        self, ctx: PlacementContext, feasible: Sequence[str]
    ) -> Tuple[JobRequest, AllocationContext]:
        native_request = ctx.native.get("allocation_request")
        native_context = ctx.native.get("allocation_context")
        if isinstance(native_request, JobRequest) and isinstance(native_context, AllocationContext):
            return native_request, native_context
        request = JobRequest(
            index=0,
            arrival_time=ctx.arrival_time,
            workload_key=ctx.workload(),
            circuit=ctx.circuit,
            strategy=ctx.strategy,
            fidelity_threshold=ctx.fidelity_threshold if ctx.strategy == "fidelity" else 0.0,
            shots=ctx.shots,
            user="policy",
        )
        allowed = set(feasible)
        fleet = [backend for backend in ctx.fleet if backend.name in allowed]
        context = AllocationContext(
            fleet=fleet,
            queues={backend.name: _OracleQueue(backend.name, ctx) for backend in fleet},
            time_model=ExecutionTimeModel(),
            calibration_epoch=ctx.calibration_epoch,
            fidelity_cache=ctx.fidelity_cache,
        )
        return request, context

    def select(self, ctx: PlacementContext, scored: Sequence[DeviceScore]) -> DeviceScore:
        by_name = {entry.device: entry for entry in scored}
        request, context = self._allocation_pair(ctx, list(by_name))
        device = self._legacy.select(request, context)
        if device not in by_name:
            raise SchedulingError(
                f"Legacy policy '{self._legacy.name}' selected '{device}', which the "
                "unified filter stage had rejected"
            )
        return by_name[device]


class _SessionPolicyBridge(AllocationPolicy):
    """A unified policy as an :class:`~repro.cloud.policies.AllocationPolicy`.

    This is what lets the discrete-event cloud simulator (and its
    incremental session) drive any registered
    :class:`~repro.policies.PlacementPolicy`: each arrival becomes a
    placement context built from the simulator's allocation context, the
    full filter → score → select pipeline runs, and the resulting
    :class:`~repro.policies.PlacementDecision` is kept on
    :attr:`last_decision` for explainability.
    """

    def __init__(self, policy: PlacementPolicy) -> None:
        self._policy = policy
        #: Decision of the most recent ``select`` call (engines surface it).
        self.last_decision: Optional[PlacementDecision] = None

    @property
    def name(self) -> str:
        return self._policy.name

    @property
    def policy(self) -> PlacementPolicy:
        """The wrapped unified policy."""
        return self._policy

    def select(self, request: JobRequest, context: AllocationContext) -> str:
        ctx = PlacementContext(
            fleet=context.fleet,
            circuit=request.circuit,
            job_name=request.name,
            workload_key=request.workload_key,
            strategy=request.strategy,
            fidelity_threshold=request.fidelity_threshold,
            shots=request.shots,
            arrival_time=request.arrival_time,
            calibration_epoch=context.calibration_epoch,
            predicted_wait=lambda name: context.queues[name].predicted_wait(request.arrival_time),
            fidelity_cache=context.fidelity_cache,
            native={"allocation_request": request, "allocation_context": context},
        )
        decision = self._policy.decide(ctx)
        self.last_decision = decision
        if decision.device is None:
            raise SchedulingError(
                f"No device in the fleet can host job '{request.name}' "
                f"({request.circuit.num_qubits} qubits)"
            )
        return decision.device


def as_allocation_policy(policy: PlacementPolicy) -> AllocationPolicy:
    """Wrap a unified policy for use wherever an ``AllocationPolicy`` is expected.

    Unwraps an :class:`AllocationPolicyAdapter` back to its legacy policy so
    round-tripping never stacks adapters.
    """
    if isinstance(policy, AllocationPolicyAdapter):
        return policy.legacy
    return _SessionPolicyBridge(policy)


class RankingStrategyAdapter(PlacementPolicy):
    """A per-job meta-server ranking strategy behind the unified protocol.

    Strategies are constructed per job (they hold the job's circuit or
    topology), so the adapter is per-job too; scores — including the
    infinite score of infeasible devices — are reported unchanged, and the
    default lowest-score selection matches the scheduler's ranking stage.
    """

    def __init__(self, strategy: RankingStrategy) -> None:
        self._strategy = strategy

    @property
    def name(self) -> str:
        return self._strategy.name

    @property
    def strategy(self) -> RankingStrategy:
        """The wrapped ranking strategy."""
        return self._strategy

    def filter(self, ctx: PlacementContext, device: Backend) -> Tuple[bool, str]:
        return True, "feasible"  # the strategy encodes infeasibility as an infinite score

    def score(self, ctx: PlacementContext, device: Backend) -> float:
        return self._strategy.score(device)


class PluginPolicyAdapter(PlacementPolicy):
    """Cluster framework filter/score plugins behind the unified protocol.

    The context must carry the engine-native cluster objects:
    ``ctx.native["job"]`` (the :class:`~repro.cluster.job.Job`) and
    ``ctx.native["nodes"]`` (device name → :class:`~repro.cluster.node.Node`).
    Filtering short-circuits on the first rejecting plugin and scoring sums
    every score plugin, exactly like
    :class:`~repro.cluster.framework.SchedulingFramework`.
    """

    def __init__(
        self,
        filter_plugins: Sequence[FilterPlugin] = (),
        score_plugins: Sequence[ScorePlugin] = (),
        *,
        name: str = "cluster-plugins",
    ) -> None:
        self._filter_plugins = list(filter_plugins)
        self._score_plugins = list(score_plugins)
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    @staticmethod
    def _cluster_pair(ctx: PlacementContext, device: Backend) -> Tuple[Job, Node]:
        job = ctx.native.get("job")
        nodes = ctx.native.get("nodes")
        if not isinstance(job, Job) or not isinstance(nodes, dict) or device.name not in nodes:
            raise SchedulingError(
                "PluginPolicyAdapter needs ctx.native['job'] and ctx.native['nodes'] "
                "(device name -> Node) — run it under the cluster or orchestrator engine"
            )
        return job, nodes[device.name]

    def filter(self, ctx: PlacementContext, device: Backend) -> Tuple[bool, str]:
        job, node = self._cluster_pair(ctx, device)
        for plugin in self._filter_plugins:
            feasible, reason = plugin.filter(job, node)
            if not feasible:
                return False, f"{plugin.name}: {reason}"
        return True, "feasible"

    def score(self, ctx: PlacementContext, device: Backend) -> float:
        job, node = self._cluster_pair(ctx, device)
        return sum(plugin.score(job, node) for plugin in self._score_plugins)


class _PolicyPluginBase:
    """Shared machinery of the policy-as-framework-plugin wrappers.

    The framework calls a plugin once per node within one job's scheduling
    cycle, so a single-entry context cache (keyed by the current job name)
    is enough to avoid rebuilding the context per node without leaking one
    context per job on a long-lived framework.
    """

    def __init__(self, policy: PlacementPolicy, context_factory: Callable[[Job], PlacementContext]) -> None:
        self._policy = policy
        self._context_factory = context_factory
        self._current: Optional[Tuple[str, PlacementContext]] = None

    @property
    def name(self) -> str:
        return f"policy:{self._policy.name}"

    def _context(self, job: Job) -> PlacementContext:
        if self._current is None or self._current[0] != job.name:
            self._current = (job.name, self._context_factory(job))
        return self._current[1]


class PolicyFilterPlugin(_PolicyPluginBase, FilterPlugin):
    """A unified policy's filter stage as a cluster framework filter plugin."""

    def filter(self, job: Job, node: Node) -> Tuple[bool, str]:
        return self._policy.filter(self._context(job), node.backend)


class PolicyScorePlugin(_PolicyPluginBase, ScorePlugin):
    """A unified policy's score stage as a cluster framework score plugin."""

    def score(self, job: Job, node: Node) -> float:
        return self._policy.score(self._context(job), node.backend)
