"""Unified placement-policy API: one registry, one filter → score → select pipeline.

This package is the single policy surface shared by all three execution
engines (orchestrator, cluster, cloud).  A policy written once — a ≤50-line
:class:`PlacementPolicy` subclass — runs under any engine through
:class:`~repro.service.QRIOService`, composes via :class:`Pipeline`, and is
addressable by registry name (``resolve_policy("fidelity:queue_weight=0.3")``)
from Python or the CLI.  The legacy abstractions
(:class:`~repro.cloud.policies.AllocationPolicy`,
:class:`~repro.core.strategies.RankingStrategy`, cluster filter/score
plugins) keep working through the thin adapters in
:mod:`repro.policies.adapters`.
"""

from repro.policies.api import (
    DeviceScore,
    PlacementContext,
    PlacementDecision,
    PlacementPolicy,
)
from repro.policies.registry import (
    PolicyLike,
    PolicyRegistry,
    RegisteredPolicy,
    default_registry,
    parse_policy_spec,
    register_policy,
    resolve_policy,
)
from repro.policies.builtin import (
    FidelityPlacementPolicy,
    LeastLoadedPlacementPolicy,
    PinnedDevicePolicy,
    RandomPlacementPolicy,
    RoundRobinPlacementPolicy,
    ThresholdFidelityPolicy,
    TopologyPlacementPolicy,
)
from repro.policies.pipeline import Pipeline
from repro.policies.adapters import (
    AllocationPolicyAdapter,
    PluginPolicyAdapter,
    PolicyFilterPlugin,
    PolicyScorePlugin,
    RankingStrategyAdapter,
    as_allocation_policy,
)
from repro.utils.exceptions import PolicyNotFoundError

__all__ = [
    "AllocationPolicyAdapter",
    "DeviceScore",
    "FidelityPlacementPolicy",
    "LeastLoadedPlacementPolicy",
    "Pipeline",
    "PlacementContext",
    "PlacementDecision",
    "PinnedDevicePolicy",
    "PlacementPolicy",
    "PluginPolicyAdapter",
    "PolicyFilterPlugin",
    "PolicyLike",
    "PolicyNotFoundError",
    "PolicyRegistry",
    "PolicyScorePlugin",
    "RandomPlacementPolicy",
    "RankingStrategyAdapter",
    "RegisteredPolicy",
    "RoundRobinPlacementPolicy",
    "ThresholdFidelityPolicy",
    "TopologyPlacementPolicy",
    "as_allocation_policy",
    "default_registry",
    "parse_policy_spec",
    "register_policy",
    "resolve_policy",
]
