"""The string-keyed placement-policy registry.

One global :class:`PolicyRegistry` (``default_registry``) maps short names to
policy factories, in the spirit of the backend registries mature frameworks
use to decouple strategy from runtime.  Users and the CLI address policies by
name; engines resolve them on demand:

* ``register_policy("name")`` — decorate a factory (usually the policy class
  itself) into the default registry;
* ``resolve_policy("fidelity")`` — a fresh instance of a registered policy;
* ``resolve_policy("fidelity:queue_weight=0.3,estimator=esp")`` —
  parameterized lookup: ``key=value`` pairs after the colon are parsed
  (int / float / bool / str) and passed to the factory as keyword arguments;
* unknown names raise a typed
  :class:`~repro.utils.exceptions.PolicyNotFoundError` with a did-you-mean
  suggestion built from the registered names.

``resolve`` returns a **new instance per call** because policies may be
stateful (RNG streams, round-robin cursors, per-job caches); sharing one
instance across engines would entangle their decision streams.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.policies.api import PlacementPolicy
from repro.utils.exceptions import PolicyNotFoundError, SchedulingError
from repro.utils.rng import SeedLike

#: What policy-accepting APIs take: a registered name (optionally
#: parameterized ``"name:key=value,..."``) or a ready policy instance.
PolicyLike = Union[str, PlacementPolicy]


def _parse_value(raw: str) -> object:
    """Parse one ``key=value`` value: int, float, bool or plain string."""
    text = raw.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_policy_spec(spec: str) -> Tuple[str, Dict[str, object]]:
    """Split ``"name:key=value,key=value"`` into ``(name, params)``."""
    if not isinstance(spec, str) or not spec.strip():
        raise SchedulingError("A policy spec must be a non-empty string")
    name, _, raw_params = spec.partition(":")
    name = name.strip()
    params: Dict[str, object] = {}
    if raw_params.strip():
        for chunk in raw_params.split(","):
            key, eq, value = chunk.partition("=")
            if not eq or not key.strip():
                raise SchedulingError(
                    f"Malformed policy parameter {chunk!r} in {spec!r} (expected key=value)"
                )
            params[key.strip()] = _parse_value(value)
    return name, params


@dataclass(frozen=True)
class RegisteredPolicy:
    """One registry entry: factory plus the metadata the CLI listing shows."""

    name: str
    factory: Callable[..., PlacementPolicy]
    description: str = ""
    #: Keyword parameters the factory accepts, with their defaults.
    parameters: Tuple[Tuple[str, object], ...] = field(default=())

    def signature(self) -> str:
        """``key=default`` summary of the tunable parameters."""
        return ", ".join(f"{key}={value!r}" for key, value in self.parameters)


class PolicyRegistry:
    """String-keyed registry of placement-policy factories."""

    def __init__(self) -> None:
        self._entries: Dict[str, RegisteredPolicy] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Optional[Callable[..., PlacementPolicy]] = None,
        *,
        description: str = "",
        replace: bool = False,
    ):
        """Register ``factory`` under ``name`` (usable as a decorator).

        Args:
            name: Registry key (what users type; lowercase by convention).
            factory: Callable returning a :class:`PlacementPolicy`; omitted
                when used as ``@registry.register("name")``.
            description: One-line summary for the CLI ``policies`` listing;
                defaults to the factory's docstring head.
            replace: Allow overwriting an existing entry.

        Raises:
            SchedulingError: Duplicate name without ``replace=True``.
        """
        def _register(target: Callable[..., PlacementPolicy]):
            if not replace and name in self._entries:
                raise SchedulingError(f"A policy named '{name}' is already registered")
            doc = description or (inspect.getdoc(target) or name).strip().splitlines()[0]
            self._entries[name] = RegisteredPolicy(
                name=name,
                factory=target,
                description=doc,
                parameters=self._parameters_of(target),
            )
            return target

        if factory is not None:
            return _register(factory)
        return _register

    @staticmethod
    def _parameters_of(factory: Callable) -> Tuple[Tuple[str, object], ...]:
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return ()
        return tuple(
            (parameter.name, parameter.default)
            for parameter in signature.parameters.values()
            if parameter.default is not inspect.Parameter.empty
        )

    def unregister(self, name: str) -> None:
        """Remove one entry (used by tests to keep the registry clean)."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Registered policy names, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def entry(self, name: str) -> RegisteredPolicy:
        """The registry entry for ``name``.

        Raises:
            PolicyNotFoundError: Unknown name (with a did-you-mean hint).
        """
        if name not in self._entries:
            matches = difflib.get_close_matches(name, self._entries, n=1, cutoff=0.5)
            raise PolicyNotFoundError(
                name,
                known=tuple(self._entries),
                suggestion=matches[0] if matches else None,
            )
        return self._entries[name]

    def entries(self) -> List[RegisteredPolicy]:
        """Every entry, sorted by name (the CLI listing's data source)."""
        return [self._entries[name] for name in self.names()]

    def create(self, name: str, **params: object) -> PlacementPolicy:
        """Instantiate the policy registered under ``name`` with ``params``.

        Raises:
            PolicyNotFoundError: Unknown name.
            SchedulingError: Parameters the factory does not accept.
        """
        entry = self.entry(name)
        try:
            policy = entry.factory(**params)
        except TypeError as error:
            raise SchedulingError(
                f"Policy '{name}' rejected parameters {sorted(params)}: {error}"
            ) from error
        if not isinstance(policy, PlacementPolicy):
            raise SchedulingError(
                f"Factory for policy '{name}' returned {type(policy).__name__}, "
                "not a PlacementPolicy"
            )
        return policy

    def resolve(self, spec: PolicyLike, *, seed: SeedLike = None) -> PlacementPolicy:
        """Resolve a policy spec into a fresh :class:`PlacementPolicy`.

        Args:
            spec: A ready policy instance (returned unchanged) or a string
                ``"name"`` / ``"name:key=value,..."``.
            seed: Default seed injected into seed-accepting factories when
                the spec itself does not pin one.

        Raises:
            PolicyNotFoundError: Unknown registry name.
            SchedulingError: Malformed spec or rejected parameters.
        """
        if isinstance(spec, PlacementPolicy):
            return spec
        name, params = parse_policy_spec(spec)
        entry = self.entry(name)
        if seed is not None and "seed" not in params:
            accepted = {key for key, _ in entry.parameters}
            if "seed" in accepted:
                params["seed"] = seed
        return self.create(name, **params)


#: The process-wide registry the engines, service and CLI resolve against.
default_registry = PolicyRegistry()


def register_policy(
    name: str,
    factory: Optional[Callable[..., PlacementPolicy]] = None,
    *,
    description: str = "",
    replace: bool = False,
):
    """Register into the default registry (see :meth:`PolicyRegistry.register`)."""
    return default_registry.register(name, factory, description=description, replace=replace)


def resolve_policy(spec: PolicyLike, *, seed: SeedLike = None) -> PlacementPolicy:
    """Resolve against the default registry (see :meth:`PolicyRegistry.resolve`)."""
    return default_registry.resolve(spec, seed=seed)
