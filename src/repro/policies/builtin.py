"""The built-in unified placement policies (ports of every legacy policy).

Each class below is the :class:`~repro.policies.PlacementPolicy` port of one
historical abstraction, registered under a short name so any engine can run
it by string:

========================  ====================================================
``random``                uniformly random feasible device (the paper's
                          baseline scheduler; cloud ``RandomPolicy``)
``round-robin``           cycle through feasible devices in name order
                          (cloud ``RoundRobinPolicy``)
``least-loaded``          smallest predicted queueing delay (cloud
                          ``LeastLoadedPolicy``)
``fidelity``              best estimated fidelity, optionally traded against
                          queueing delay via ``queue_weight`` (cloud
                          ``FidelityPolicy`` / ``QueueAwareFidelityPolicy``)
``queue-aware``           alias for ``fidelity`` with ``queue_weight=0.3``
                          (the Ravi et al. scheduler of the related work)
``threshold-fidelity``    Clifford-canary distance to the job's requested
                          fidelity (meta server ``FidelityRankingStrategy``)
``topology``              Mapomatic-style embedding cost of the job's
                          topology request (``TopologyRankingStrategy``)
``pinned``                force one named device (``pinned:device=NAME``) —
                          the affinity override sharded dispatch routes by
========================  ====================================================

Routing is pinned bit-for-bit against the legacy implementations by
``tests/policies/test_adapter_equivalence.py``: identical feasibility sets,
identical RNG consumption, identical tie-breaking.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.backends.backend import Backend
from repro.fidelity.canary import DEFAULT_CANARY_SHOTS, CliffordCanaryEstimator
from repro.fidelity.estimator import ESPEstimator
from repro.matching.mapomatic import match_device
from repro.policies.api import DeviceScore, PlacementContext, PlacementPolicy
from repro.policies.registry import register_policy
from repro.utils.exceptions import SchedulingError
from repro.utils.rng import SeedLike, ensure_generator

#: Weight a fidelity *surplus* above the requested threshold counts at (the
#: meta server's value: a deficit is penalised at full weight so the
#: scheduler never prefers a device that misses the requirement).
SURPLUS_WEIGHT = 0.25


@register_policy("random", description="uniformly random feasible device (the paper's baseline)")
class RandomPlacementPolicy(PlacementPolicy):
    """Uniformly random choice among feasible devices.

    Port of :class:`~repro.cloud.policies.RandomPolicy`: candidates are
    considered in stable name order and one RNG draw is consumed per
    decision, so a seeded instance reproduces the legacy routing exactly.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = ensure_generator(seed)

    @property
    def name(self) -> str:
        return "random"

    def select(self, ctx: PlacementContext, scored: Sequence[DeviceScore]) -> DeviceScore:
        ordered = sorted(scored, key=lambda entry: entry.device)
        return ordered[int(self._rng.integers(0, len(ordered)))]


@register_policy("round-robin", description="cycle through feasible devices in name order")
class RoundRobinPlacementPolicy(PlacementPolicy):
    """Naive load spreading: port of :class:`~repro.cloud.policies.RoundRobinPolicy`."""

    def __init__(self) -> None:
        self._cursor = 0

    @property
    def name(self) -> str:
        return "round-robin"

    def select(self, ctx: PlacementContext, scored: Sequence[DeviceScore]) -> DeviceScore:
        ordered = sorted(scored, key=lambda entry: entry.device)
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return choice


@register_policy("least-loaded", description="smallest predicted queueing delay (fidelity-blind)")
class LeastLoadedPlacementPolicy(PlacementPolicy):
    """Queue-aware, fidelity-blind: port of :class:`~repro.cloud.policies.LeastLoadedPolicy`.

    The score is the context's predicted wait in seconds; engines without a
    queueing model report 0.0 everywhere, degrading to name-order selection.
    """

    @property
    def name(self) -> str:
        return "least-loaded"

    def score(self, ctx: PlacementContext, device: Backend) -> float:
        return ctx.wait_for(device.name)

    def breakdown(self, ctx: PlacementContext, device: Backend) -> Dict[str, float]:
        return {"predicted_wait_s": ctx.wait_for(device.name)}


class _FidelityEstimateMixin:
    """Shared cached fidelity estimation (ESP or Clifford canary)."""

    def __init__(self, estimator: str, canary_shots: int, seed: SeedLike) -> None:
        if estimator not in ("esp", "canary"):
            raise SchedulingError("estimator must be 'esp' or 'canary'")
        self._estimator_kind = estimator
        self._esp = ESPEstimator(seed=seed)
        self._canary = CliffordCanaryEstimator(shots=canary_shots, seed=seed)

    def estimated_fidelity(self, ctx: PlacementContext, device: Backend) -> float:
        """Cached fidelity estimate of the job's circuit on ``device``.

        Keyed exactly like the cloud layer's allocation cache —
        ``(workload key, device, calibration epoch)`` — so a unified policy
        running inside the cloud simulator shares its warm entries, and
        repeated submissions of the same structural circuit under the
        orchestrator/cluster engines pay one estimate per device.
        """
        if ctx.circuit is None:
            raise SchedulingError(
                f"Job '{ctx.job_name}' carries no circuit to estimate fidelity for"
            )
        key = (ctx.workload(), device.name, ctx.calibration_epoch)
        if key in ctx.fidelity_cache:
            return ctx.fidelity_cache[key]
        if self._estimator_kind == "esp":
            value = self._esp.estimate(ctx.circuit, device).esp
        else:
            value = self._canary.estimate(ctx.circuit, device).canary_fidelity
        ctx.fidelity_cache[key] = value
        return value


@register_policy(
    "fidelity",
    description="best estimated fidelity, optionally traded against queueing delay",
)
class FidelityPlacementPolicy(_FidelityEstimateMixin, PlacementPolicy):
    """Fidelity-aware placement, optionally queue-aware.

    The score of device *d* is ``(1 - fidelity(d)) + queue_weight *
    predicted_wait(d) / wait_scale_s`` — the exact complement of the cloud
    layer's fidelity/queue utility, so lower is better like everywhere else
    in the unified pipeline.  ``queue_weight=0`` (default) reproduces
    :class:`~repro.cloud.policies.FidelityPolicy`; positive weights reproduce
    :class:`~repro.cloud.policies.QueueAwareFidelityPolicy` (register name
    ``queue-aware`` defaults to the legacy 0.3).  Ties break toward the
    lexicographically *largest* device name, matching the legacy
    ``max((utility, name))`` selection bit-for-bit.
    """

    def __init__(
        self,
        estimator: str = "esp",
        queue_weight: float = 0.0,
        wait_scale_s: float = 600.0,
        canary_shots: int = 256,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(estimator, canary_shots, seed)
        if queue_weight < 0:
            raise SchedulingError("queue_weight must be non-negative")
        if wait_scale_s <= 0:
            raise SchedulingError("wait_scale_s must be positive")
        self._queue_weight = queue_weight
        self._wait_scale = wait_scale_s

    @property
    def name(self) -> str:
        if self._queue_weight:
            return f"fidelity[{self._estimator_kind}, queue_weight={self._queue_weight}]"
        return f"fidelity[{self._estimator_kind}]"

    def score(self, ctx: PlacementContext, device: Backend) -> float:
        fidelity = self.estimated_fidelity(ctx, device)
        penalty = 0.0
        if self._queue_weight:
            penalty = self._queue_weight * ctx.wait_for(device.name) / self._wait_scale
        return (1.0 - fidelity) + penalty

    def select(self, ctx: PlacementContext, scored: Sequence[DeviceScore]) -> DeviceScore:
        best = min(entry.score for entry in scored)
        # Legacy cloud policies pick ``max((utility, name))``: among tied
        # utilities the largest device name wins.
        return max(
            (entry for entry in scored if entry.score == best),
            key=lambda entry: entry.device,
        )

    def breakdown(self, ctx: PlacementContext, device: Backend) -> Dict[str, float]:
        detail = {"estimated_fidelity": self.estimated_fidelity(ctx, device)}
        if self._queue_weight:
            detail["predicted_wait_s"] = ctx.wait_for(device.name)
        return detail


@register_policy(
    "queue-aware",
    description="fidelity traded against queueing delay (Ravi et al. style scheduler)",
)
def queue_aware_policy(
    estimator: str = "esp",
    queue_weight: float = 0.3,
    wait_scale_s: float = 600.0,
    canary_shots: int = 256,
    seed: SeedLike = None,
) -> FidelityPlacementPolicy:
    """The adaptive fidelity/queue trade-off with the legacy default weight."""
    return FidelityPlacementPolicy(
        estimator=estimator,
        queue_weight=queue_weight,
        wait_scale_s=wait_scale_s,
        canary_shots=canary_shots,
        seed=seed,
    )


@register_policy(
    "threshold-fidelity",
    description="Clifford-canary distance to the job's requested fidelity (meta server ranking)",
)
class ThresholdFidelityPolicy(_FidelityEstimateMixin, PlacementPolicy):
    """Score devices by distance to the job's fidelity requirement.

    Port of the meta server's
    :class:`~repro.core.strategies.FidelityRankingStrategy`: a fidelity
    deficit counts at full weight, a surplus at ``surplus_weight``, so the
    scheduler hands out the device that most closely satisfies the request
    instead of always consuming the best device in the cluster.  With the
    paper's evaluation setting (requested fidelity 1.0) the score reduces to
    ``1 - fidelity``.
    """

    def __init__(
        self,
        estimator: str = "canary",
        surplus_weight: float = SURPLUS_WEIGHT,
        canary_shots: int = DEFAULT_CANARY_SHOTS,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(estimator, canary_shots, seed)
        if surplus_weight < 0:
            raise SchedulingError("surplus_weight must be non-negative")
        self._surplus_weight = surplus_weight

    @property
    def name(self) -> str:
        return f"threshold-fidelity[{self._estimator_kind}]"

    def score(self, ctx: PlacementContext, device: Backend) -> float:
        fidelity = self.estimated_fidelity(ctx, device)
        deficit = max(0.0, ctx.fidelity_threshold - fidelity)
        surplus = max(0.0, fidelity - ctx.fidelity_threshold)
        return deficit + self._surplus_weight * surplus

    def breakdown(self, ctx: PlacementContext, device: Backend) -> Dict[str, float]:
        return {
            "estimated_fidelity": self.estimated_fidelity(ctx, device),
            "required_fidelity": ctx.fidelity_threshold,
        }


@register_policy(
    "pinned",
    description="force placement onto one named device (shard/affinity routing)",
)
class PinnedDevicePolicy(PlacementPolicy):
    """Force placement onto one named device.

    The device-affinity escape hatch: every other device is filtered out, so
    the job lands on the pinned device when it passes the engine's normal
    feasibility checks, and fails with *no feasible device* otherwise.  The
    sharded dispatcher (:class:`~repro.tenancy.ShardedService`) routes
    pinned jobs to the shard owning the device instead of hashing the
    tenant, and the concurrency benchmarks use pinning to hold routing
    constant while varying the execution topology.
    """

    def __init__(self, device: str = "") -> None:
        if not device:
            raise SchedulingError("pinned policy needs a device name (pinned:device=NAME)")
        self._device = str(device)

    @property
    def name(self) -> str:
        return f"pinned[{self._device}]"

    @property
    def device(self) -> str:
        """The pinned device name."""
        return self._device

    def filter(self, ctx: PlacementContext, device: Backend) -> Tuple[bool, str]:
        feasible, reason = super().filter(ctx, device)
        if not feasible:
            return feasible, reason
        if device.name != self._device:
            return False, f"job is pinned to device '{self._device}'"
        return True, "feasible"

    def score(self, ctx: PlacementContext, device: Backend) -> float:
        return 0.0


@register_policy(
    "topology",
    description="Mapomatic-style embedding cost of the job's topology request",
)
class TopologyPlacementPolicy(PlacementPolicy):
    """Score devices by how well they host the requested interaction topology.

    Port of :class:`~repro.core.strategies.TopologyRankingStrategy`: the
    topology circuit is matched against each device's coupling map and the
    score is the error cost of the best embedding.  Devices with no
    embedding at all are filtered out (the legacy infinite score).
    """

    def __init__(self, max_embeddings: int = 100, seed: SeedLike = None) -> None:
        if max_embeddings <= 0:
            raise SchedulingError("max_embeddings must be positive")
        self._max_embeddings = max_embeddings
        self._seed = seed
        self._matches: Dict[Tuple[object, str, int], Optional[object]] = {}

    @property
    def name(self) -> str:
        return "topology"

    def _match(self, ctx: PlacementContext, device: Backend):
        key = (ctx.topology_edges, device.name, ctx.calibration_epoch)
        if key not in self._matches:
            self._matches[key] = match_device(
                ctx.topology_circuit(),
                device,
                max_embeddings=self._max_embeddings,
                seed=self._seed,
            )
        return self._matches[key]

    def filter(self, ctx: PlacementContext, device: Backend) -> Tuple[bool, str]:
        feasible, reason = super().filter(ctx, device)
        if not feasible:
            return feasible, reason
        if self._match(ctx, device) is None:
            return False, "no embedding of the requested topology fits the device"
        return True, "feasible"

    def score(self, ctx: PlacementContext, device: Backend) -> float:
        return self._match(ctx, device).score

    def layout_for(self, ctx: PlacementContext, device: Backend) -> Optional[Dict[int, int]]:
        """Best embedding layout found on ``device`` (``None`` if infeasible)."""
        match = self._match(ctx, device)
        return None if match is None else match.layout

    def breakdown(self, ctx: PlacementContext, device: Backend) -> Dict[str, float]:
        match = self._match(ctx, device)
        return {"exact_embedding": float(bool(match.exact))} if match is not None else {}
