"""The :class:`Pipeline` combinator: compose policies without engine code.

A scheduling scenario is usually "these feasibility rules, then this blend
of rankings".  ``Pipeline`` expresses exactly that: its filter stage is the
conjunction of every component filter, its score stage the weighted sum of
every component scorer — so a new policy is a composition, not an engine
fork::

    Pipeline(
        filters=[resolve_policy("topology")],
        scorers=[resolve_policy("fidelity"), resolve_policy("least-loaded")],
        weights=[1.0, 0.2],
    )

Components are :class:`~repro.policies.PlacementPolicy` instances (their
``filter``/``score`` stages are reused) or bare callables with the matching
stage signature.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.backends.backend import Backend
from repro.policies.api import PlacementContext, PlacementPolicy
from repro.utils.exceptions import SchedulingError

#: A filter component: a policy (its ``filter`` stage) or a bare callable.
FilterLike = Union[PlacementPolicy, Callable[[PlacementContext, Backend], Tuple[bool, str]]]
#: A score component: a policy (its ``score`` stage) or a bare callable.
ScorerLike = Union[PlacementPolicy, Callable[[PlacementContext, Backend], float]]


def _component_name(component: object, index: int) -> str:
    if isinstance(component, PlacementPolicy):
        return component.name
    return getattr(component, "__name__", f"component{index}")


class Pipeline(PlacementPolicy):
    """Weighted composition of placement policies.

    * **filter** — base qubit feasibility, then every component filter in
      order; the first rejection wins (with the component's name prefixed to
      the reason, mirroring the cluster framework's filter reports);
    * **score** — ``sum(weight_i * scorer_i(ctx, device))``; weights default
      to 1.0 each;
    * **select** — the default lowest-score / name tie-break, or the
      ``selector`` policy's ``select`` stage for stateful choices.
    """

    def __init__(
        self,
        filters: Sequence[FilterLike] = (),
        scorers: Sequence[ScorerLike] = (),
        weights: Optional[Sequence[float]] = None,
        *,
        name: str = "pipeline",
        selector: Optional[PlacementPolicy] = None,
    ) -> None:
        """Compose filters and weighted scorers into one policy.

        Args:
            filters: Feasibility components, evaluated in order.
            scorers: Ranking components, combined by weighted sum.
            weights: One weight per scorer (default: all 1.0).
            name: Name reported in decisions and listings.
            selector: Policy whose ``select`` stage picks the winner
                (default: lowest combined score, ties by device name).

        Raises:
            SchedulingError: No scorers, or a weights/scorers length mismatch.
        """
        if not scorers:
            raise SchedulingError("A Pipeline needs at least one scorer")
        if weights is None:
            weights = [1.0] * len(scorers)
        if len(weights) != len(scorers):
            raise SchedulingError(
                f"Pipeline got {len(scorers)} scorers but {len(weights)} weights"
            )
        self._filters = list(filters)
        self._scorers = list(scorers)
        self._weights = [float(weight) for weight in weights]
        self._name = name
        self._selector = selector

    @property
    def name(self) -> str:
        return self._name

    # ------------------------------------------------------------------ #
    def filter(self, ctx: PlacementContext, device: Backend) -> Tuple[bool, str]:
        feasible, reason = super().filter(ctx, device)
        if not feasible:
            return feasible, reason
        for index, component in enumerate(self._filters):
            check = component.filter if isinstance(component, PlacementPolicy) else component
            feasible, reason = check(ctx, device)
            if not feasible:
                return False, f"{_component_name(component, index)}: {reason}"
        return True, "feasible"

    def score(self, ctx: PlacementContext, device: Backend) -> float:
        total = 0.0
        for weight, component in zip(self._weights, self._scorers):
            rank = component.score if isinstance(component, PlacementPolicy) else component
            total += weight * rank(ctx, device)
        return total

    def select(self, ctx, scored):
        if self._selector is not None:
            return self._selector.select(ctx, scored)
        return super().select(ctx, scored)

    def breakdown(self, ctx: PlacementContext, device: Backend) -> Dict[str, float]:
        detail: Dict[str, float] = {}
        for index, (weight, component) in enumerate(zip(self._weights, self._scorers)):
            rank = component.score if isinstance(component, PlacementPolicy) else component
            key = _component_name(component, index)
            if key in detail:  # same-named components must not overwrite each other
                key = f"{key}#{index}"
            detail[key] = weight * rank(ctx, device)
        return detail
