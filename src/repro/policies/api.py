"""The unified placement-policy protocol: one filter → score → select pipeline.

Historically the repo grew three disjoint, mutually-incompatible placement
abstractions — :class:`~repro.cloud.policies.AllocationPolicy` (cloud),
:class:`~repro.core.strategies.RankingStrategy` (meta server) and the
:class:`~repro.cluster.framework.FilterPlugin` /
:class:`~repro.cluster.framework.ScorePlugin` pair (cluster framework).  This
module defines the one surface that subsumes them:

* :class:`PlacementContext` — everything a policy may consult when placing
  one job (the job's circuit and requirements, the candidate fleet, an
  optional queue-wait oracle, a shared fidelity-estimate cache);
* :class:`PlacementPolicy` — ``filter(ctx, device) -> (bool, reason)``,
  ``score(ctx, device) -> float`` (lower is better, as everywhere in the
  paper) and ``select(ctx, scored) -> DeviceScore``, plus the concrete
  :meth:`PlacementPolicy.decide` driver that runs the three stages and
  assembles an explainable decision;
* :class:`DeviceScore` / :class:`PlacementDecision` — the per-device
  breakdown and final verdict every engine reports back, so ``--explain``
  can print *why* a device won under any engine.

Every engine (:class:`~repro.service.OrchestratorEngine`,
:class:`~repro.service.ClusterEngine`, :class:`~repro.service.CloudEngine`)
builds a :class:`PlacementContext` from its native state and calls
:meth:`PlacementPolicy.decide`; the legacy abstractions keep working through
the thin adapters in :mod:`repro.policies.adapters`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.utils.exceptions import SchedulingError


@dataclass
class PlacementContext:
    """Everything a placement policy may consult when routing one job.

    The context is deliberately engine-neutral: each engine fills the fields
    it knows about and leaves the rest at their defaults.  Policies must
    treat absent information gracefully (e.g. :meth:`wait_for` returns 0.0
    when no queue-wait oracle is available, which makes load-aware policies
    degrade to name-ordered tie-breaking instead of crashing).
    """

    #: Candidate devices, in the order the engine proposes them.
    fleet: Sequence[Backend]
    #: The circuit being placed (``None`` for pure topology requests).
    circuit: Optional[QuantumCircuit] = None
    #: Job identity (unique per submission), used in messages and reports.
    job_name: str = "job"
    #: Workload identity used as the fidelity-estimate cache key; unlike
    #: :attr:`job_name` it should be *shared* by repeated submissions of the
    #: same work (the engines pass the structural circuit hash, the cloud
    #: simulator its trace ``workload_key``).  ``None`` falls back to the
    #: job name.
    workload_key: Optional[str] = None
    #: ``"fidelity"`` or ``"topology"`` — which requirement the job carries.
    strategy: str = "fidelity"
    #: The user's requested fidelity (1.0 = "give me the best device").
    fidelity_threshold: float = 1.0
    #: User-drawn topology as an edge list (topology strategy only).
    topology_edges: Optional[Tuple[Tuple[int, int], ...]] = None
    #: Shot budget of the execution.
    shots: int = 1024
    #: Qubit resource request; ``None`` uses the circuit width.
    required_qubits: Optional[int] = None
    #: Logical arrival time (cloud engine); 0.0 elsewhere.
    arrival_time: float = 0.0
    #: Calibration epoch — part of every fidelity-estimate cache key, so
    #: recalibration invalidates stale scores without explicit hooks.  The
    #: engines pass the stable fleet digest from
    #: :func:`repro.core.cache.fleet_calibration_epoch`; any hashable works.
    calibration_epoch: Hashable = 0
    #: Queue-wait oracle: device name -> predicted wait in seconds.  ``None``
    #: when the engine has no queueing model (orchestrator/cluster engines).
    predicted_wait: Optional[Callable[[str], float]] = None
    #: Shared fidelity-estimate cache keyed ``(job key, device, epoch)``.
    fidelity_cache: Dict[Tuple[str, str, Hashable], float] = field(default_factory=dict)
    #: Engine-native objects for thin adapters (e.g. the cluster ``Job`` and
    #: its ``nodes`` map); generic policies must not depend on these.
    native: Dict[str, object] = field(default_factory=dict)
    #: Lazily-built topology circuit (see :meth:`topology_circuit`).
    _topology_circuit: Optional[QuantumCircuit] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    def workload(self) -> str:
        """The fidelity-cache key component (workload key or job name)."""
        return self.workload_key if self.workload_key is not None else self.job_name

    def qubits(self) -> int:
        """The job's qubit request (explicit override or circuit width)."""
        if self.required_qubits is not None:
            return self.required_qubits
        if self.circuit is not None:
            return self.circuit.num_qubits
        if self.topology_edges:
            return 1 + max(max(a, b) for a, b in self.topology_edges)
        return 0

    def wait_for(self, device_name: str) -> float:
        """Predicted queueing delay on a device (0.0 without an oracle)."""
        if self.predicted_wait is None:
            return 0.0
        return self.predicted_wait(device_name)

    def device(self, name: str) -> Backend:
        """Look up a candidate device by name."""
        for backend in self.fleet:
            if backend.name == name:
                return backend
        raise SchedulingError(f"Unknown device '{name}' in placement context")

    def topology_circuit(self) -> QuantumCircuit:
        """The job's topology request as a pseudo-circuit (Section 3.2).

        Built lazily from :attr:`topology_edges` exactly like the
        visualizer's canvas does (one CX per sorted edge), so topology
        scores are identical whichever surface produced the request.
        """
        if self._topology_circuit is not None:
            return self._topology_circuit
        if not self.topology_edges:
            raise SchedulingError(
                f"Job '{self.job_name}' carries no topology edges to build a topology circuit from"
            )
        circuit = QuantumCircuit(self.qubits(), name=f"{self.job_name}_topology")
        for a, b in sorted(self.topology_edges):
            circuit.cx(a, b)
        self._topology_circuit = circuit
        return circuit


@dataclass
class DeviceScore:
    """One feasible device's score plus the policy's per-metric breakdown."""

    device: str
    score: float
    #: Optional metric breakdown (e.g. ``estimated_fidelity``,
    #: ``predicted_wait_s``) rendered by :meth:`PlacementDecision.explain`.
    detail: Dict[str, float] = field(default_factory=dict)


@dataclass
class PlacementDecision:
    """Outcome of one filter → score → select pipeline run.

    Carries the full per-device breakdown — every feasible device's score
    (and metric detail) plus every rejection reason — so callers can render
    *why* a device won without re-running the policy.
    """

    policy: str
    device: Optional[str]
    score: Optional[float]
    ranked: List[DeviceScore] = field(default_factory=list)
    rejected: Dict[str, str] = field(default_factory=dict)

    @property
    def scheduled(self) -> bool:
        """``True`` when a device was selected."""
        return self.device is not None

    @property
    def num_feasible(self) -> int:
        """How many devices survived the filter stage."""
        return len(self.ranked)

    @property
    def scores(self) -> Dict[str, float]:
        """Feasible-device scores keyed by device name."""
        return {entry.device: entry.score for entry in self.ranked}

    def explain(self) -> str:
        """Human-readable per-device breakdown of this decision."""
        lines: List[str] = []
        if self.device is None:
            lines.append(
                f"policy '{self.policy}': no feasible device "
                f"({len(self.rejected)} rejected during filtering)"
            )
        else:
            lines.append(
                f"policy '{self.policy}' selected '{self.device}' "
                f"(score {self.score:.4f}; lower is better; "
                f"{self.num_feasible} feasible, {len(self.rejected)} filtered out)"
            )
        for entry in sorted(self.ranked, key=lambda item: (item.score, item.device)):
            marker = "→" if entry.device == self.device else " "
            detail = "".join(
                f"  {key}={value:.4f}" for key, value in sorted(entry.detail.items())
            )
            lines.append(f"  {marker} {entry.device:<18s} score={entry.score:.4f}{detail}")
        for device, reason in sorted(self.rejected.items()):
            lines.append(f"  ✗ {device:<18s} filtered: {reason}")
        return "\n".join(lines)


class PlacementPolicy(abc.ABC):
    """One placement policy: the filter → score → select pipeline.

    Subclasses override any subset of the three stages:

    * :meth:`filter` — default: qubit-count feasibility;
    * :meth:`score` — default: 0.0 (every feasible device ties);
    * :meth:`select` — default: lowest score, ties broken by device name.

    The concrete :meth:`decide` driver runs the stages over a
    :class:`PlacementContext` and assembles the explainable
    :class:`PlacementDecision` every engine reports.  Policies may be
    stateful (RNG streams, round-robin cursors), which is why the registry
    hands out a fresh instance per :meth:`~repro.policies.PolicyRegistry.resolve`.
    """

    @property
    def name(self) -> str:
        """Policy name used in decisions, reports and the registry listing."""
        return type(self).__name__

    # ------------------------------------------------------------------ #
    # The three pipeline stages
    # ------------------------------------------------------------------ #
    def filter(self, ctx: PlacementContext, device: Backend) -> Tuple[bool, str]:
        """Whether ``device`` is feasible for the job; ``(ok, reason)``."""
        required = ctx.qubits()
        if device.num_qubits < required:
            return False, f"device has {device.num_qubits} qubits, job needs {required}"
        return True, "feasible"

    def score(self, ctx: PlacementContext, device: Backend) -> float:
        """Score ``device`` for the job (lower is better)."""
        return 0.0

    def select(self, ctx: PlacementContext, scored: Sequence[DeviceScore]) -> DeviceScore:
        """Pick the winner among scored devices (default: min score, then name)."""
        return min(scored, key=lambda entry: (entry.score, entry.device))

    # ------------------------------------------------------------------ #
    def breakdown(self, ctx: PlacementContext, device: Backend) -> Dict[str, float]:
        """Per-metric detail for one scored device (cheap: caches are warm)."""
        return {}

    def describe(self) -> str:
        """One-line human description (overridden by registered builtins)."""
        return (type(self).__doc__ or self.name).strip().splitlines()[0]

    # ------------------------------------------------------------------ #
    # The pipeline driver
    # ------------------------------------------------------------------ #
    def decide(
        self,
        ctx: PlacementContext,
        *,
        rejected: Optional[Dict[str, str]] = None,
    ) -> PlacementDecision:
        """Run filter → score → select over ``ctx.fleet``.

        Args:
            ctx: The placement context to decide over.
            rejected: Devices an *engine-level* filter already removed (e.g.
                the cluster's requirement filters), merged into the decision
                so ``--explain`` shows the complete picture.

        Returns:
            The decision; ``device is None`` when filtering left nothing.
        """
        verdict_rejected: Dict[str, str] = dict(rejected or {})
        ranked: List[DeviceScore] = []
        for device in ctx.fleet:
            feasible, reason = self.filter(ctx, device)
            if not feasible:
                verdict_rejected[device.name] = f"{self.name}: {reason}"
                continue
            value = self.score(ctx, device)
            ranked.append(
                DeviceScore(device=device.name, score=value, detail=self.breakdown(ctx, device))
            )
        if not ranked:
            return PlacementDecision(
                policy=self.name, device=None, score=None, ranked=[], rejected=verdict_rejected
            )
        choice = self.select(ctx, ranked)
        return PlacementDecision(
            policy=self.name,
            device=choice.device,
            score=choice.score,
            ranked=ranked,
            rejected=verdict_rejected,
        )
