"""Fig. 7 — achieved fidelity per workload for five selection policies.

Section 4.3: each workload circuit is submitted with a demanded fidelity of
100%.  Three schedulers pick a device — the Oracle (scores devices on the
real circuit against its noise-free output), QRIO's Clifford-canary ranking,
and a random scheduler — and the figure reports the fidelity the circuit
actually achieves on each scheduler's pick, alongside the average and median
achieved fidelity over all devices in the cluster.

Expected shape: Oracle >= Clifford >> Random / Average / Median, with Oracle
and Clifford (nearly) coinciding for the circuits that are already Clifford.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Dict, List, Optional

from repro.backends.backend import Backend
from repro.core.strategies import FidelityRankingStrategy, INFEASIBLE_SCORE
from repro.experiments.config import ExperimentConfig, default_config
from repro.fidelity.canary import achieved_fidelity
from repro.utils.exceptions import ReproError
from repro.utils.rng import derive_seed, ensure_generator
from repro.workloads.evaluation_circuits import EvaluationWorkload, evaluation_workloads

#: The fidelity every Fig. 7 submission demands.
REQUESTED_FIDELITY = 1.0


@dataclass
class Fig7Row:
    """One workload group of Fig. 7 (five bars)."""

    workload: str
    label: str
    oracle: float
    clifford: float
    random: float
    average: float
    median: float
    oracle_device: str
    clifford_device: str
    random_device: str

    def as_dict(self) -> Dict[str, object]:
        """Serialisable form used by reports."""
        return {
            "workload": self.workload,
            "label": self.label,
            "oracle": self.oracle,
            "clifford": self.clifford,
            "random": self.random,
            "average": self.average,
            "median": self.median,
            "oracle_device": self.oracle_device,
            "clifford_device": self.clifford_device,
            "random_device": self.random_device,
        }


@dataclass
class Fig7Result:
    """All workload groups of Fig. 7."""

    rows: List[Fig7Row]
    config_description: str

    def series(self) -> Dict[str, Dict[str, float]]:
        """The plotted series: policy -> workload label -> fidelity."""
        series: Dict[str, Dict[str, float]] = {
            "Oracle": {},
            "Clifford": {},
            "Random": {},
            "Average": {},
            "Median": {},
        }
        for row in self.rows:
            series["Oracle"][row.label] = row.oracle
            series["Clifford"][row.label] = row.clifford
            series["Random"][row.label] = row.random
            series["Average"][row.label] = row.average
            series["Median"][row.label] = row.median
        return series


def _achieved_on_all_devices(
    workload: EvaluationWorkload,
    fleet: List[Backend],
    shots: int,
    seed,
) -> Dict[str, float]:
    """True achieved fidelity of the workload circuit on every feasible device."""
    circuit = workload.circuit()
    fidelities: Dict[str, float] = {}
    for backend in fleet:
        if backend.num_qubits < circuit.num_qubits:
            continue
        fidelities[backend.name] = achieved_fidelity(
            circuit,
            backend,
            shots=shots,
            seed=derive_seed(seed, "fig7-achieved", workload.key, backend.name),
        )
    if not fidelities:
        raise ReproError(f"No device in the fleet can host workload '{workload.key}'")
    return fidelities


def _clifford_pick(
    workload: EvaluationWorkload,
    fleet: List[Backend],
    shots: int,
    seed,
) -> str:
    """Device chosen by QRIO's Clifford-canary fidelity ranking."""
    circuit = workload.circuit()
    strategy = FidelityRankingStrategy(
        circuit,
        fidelity_threshold=REQUESTED_FIDELITY,
        shots=shots,
        seed=derive_seed(seed, "fig7-clifford", workload.key),
    )
    scores: Dict[str, float] = {}
    for backend in fleet:
        if backend.num_qubits < circuit.num_qubits:
            continue
        value = strategy.score(backend)
        if value != INFEASIBLE_SCORE:
            scores[backend.name] = value
    if not scores:
        raise ReproError(f"No device can host workload '{workload.key}'")
    return min(scores, key=lambda name: (scores[name], name))


def run_fig7(
    config: Optional[ExperimentConfig] = None,
    fleet: Optional[List[Backend]] = None,
    workloads: Optional[List[EvaluationWorkload]] = None,
) -> Fig7Result:
    """Regenerate Fig. 7 over the configured fleet and workloads."""
    config = config or default_config()
    fleet = fleet if fleet is not None else config.build_fleet()
    workloads = workloads if workloads is not None else evaluation_workloads()
    rows: List[Fig7Row] = []
    for workload in workloads:
        achieved = _achieved_on_all_devices(workload, fleet, config.shots, config.seed)
        # Oracle: the device with the best true fidelity.
        oracle_device = max(achieved, key=lambda name: (achieved[name], name))
        # Clifford: QRIO's canary-based choice.
        clifford_device = _clifford_pick(workload, fleet, config.shots, config.seed)
        # Random: uniform choice over the feasible devices.
        rng = ensure_generator(derive_seed(config.seed, "fig7-random", workload.key))
        feasible = sorted(achieved)
        random_device = feasible[int(rng.integers(0, len(feasible)))]
        values = list(achieved.values())
        rows.append(
            Fig7Row(
                workload=workload.key,
                label=workload.label,
                oracle=achieved[oracle_device],
                clifford=achieved[clifford_device],
                random=achieved[random_device],
                average=sum(values) / len(values),
                median=float(median(values)),
                oracle_device=oracle_device,
                clifford_device=clifford_device,
                random_device=random_device,
            )
        )
    return Fig7Result(rows=rows, config_description=config.describe())
