"""Extension experiment — does re-scoring after each calibration cycle matter?

Section 2.2 of the paper stresses that device error characteristics swing by
2-3x between calibration cycles, which is the core argument for automated,
calibration-aware resource selection.  This experiment quantifies that
argument: a user's circuit is scheduled once on day 0 ("stale" policy) or
re-scored against fresh calibration data every cycle ("fresh" policy, what
QRIO does because the meta server always reads the vendor's current backend
file).  The gap between the two is the value of calibration-aware scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backends.backend import Backend
from repro.backends.fleet import generate_device
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import ghz
from repro.cloud.calibration import CalibrationDriftModel, drift_fleet
from repro.experiments.config import ExperimentConfig, default_config
from repro.fidelity.estimator import ESPEstimator
from repro.utils.rng import derive_seed


@dataclass
class DriftCycleRow:
    """Outcome of one calibration cycle."""

    cycle: int
    fresh_choice: str
    stale_choice: str
    fresh_estimate: float
    stale_estimate: float

    @property
    def gap(self) -> float:
        """Fidelity estimate forfeited by sticking with the day-0 choice."""
        return self.fresh_estimate - self.stale_estimate

    def as_dict(self) -> Dict[str, object]:
        """Serialisable form used by reports."""
        return {
            "cycle": self.cycle,
            "fresh_choice": self.fresh_choice,
            "stale_choice": self.stale_choice,
            "fresh_estimate": self.fresh_estimate,
            "stale_estimate": self.stale_estimate,
            "gap": self.gap,
        }


@dataclass
class CalibrationDriftResult:
    """All cycles of the drift experiment."""

    rows: List[DriftCycleRow]
    circuit_name: str
    num_devices: int
    config_description: str

    def switch_fraction(self) -> float:
        """Fraction of cycles on which the fresh choice differs from day 0."""
        if not self.rows:
            return 0.0
        switches = sum(1 for row in self.rows if row.fresh_choice != row.stale_choice)
        return switches / len(self.rows)

    def mean_gap(self) -> float:
        """Average fidelity-estimate gap between fresh and stale choices."""
        if not self.rows:
            return 0.0
        return sum(row.gap for row in self.rows) / len(self.rows)

    def max_gap(self) -> float:
        """Worst-cycle fidelity-estimate gap."""
        return max((row.gap for row in self.rows), default=0.0)


def drift_testbed_fleet(num_devices: int = 6, seed=None) -> List[Backend]:
    """A handful of mid-size devices whose quality ordering can plausibly flip."""
    fleet = []
    for index in range(num_devices):
        fleet.append(
            generate_device(
                12,
                0.3 + 0.1 * (index % 3),
                seed=derive_seed(seed, "drift-fleet", index),
                name=f"drift_dev_{index:02d}",
            )
        )
    return fleet


def run_calibration_drift(
    config: Optional[ExperimentConfig] = None,
    fleet: Optional[Sequence[Backend]] = None,
    circuit: Optional[QuantumCircuit] = None,
    num_cycles: int = 8,
    drift_model: Optional[CalibrationDriftModel] = None,
) -> CalibrationDriftResult:
    """Compare re-scoring each cycle against sticking with the day-0 device."""
    config = config or default_config()
    fleet = list(fleet) if fleet is not None else drift_testbed_fleet(seed=config.seed)
    circuit = circuit if circuit is not None else ghz(6)
    drift_model = drift_model or CalibrationDriftModel()
    estimator = ESPEstimator(seed=derive_seed(config.seed, "drift-esp"))

    day_zero = estimator.rank_backends(circuit, fleet)
    stale_choice = day_zero[0].device

    rows: List[DriftCycleRow] = []
    current = fleet
    for cycle in range(1, num_cycles + 1):
        current = drift_fleet(current, model=drift_model, seed=derive_seed(config.seed, "drift-cycle", cycle))
        ranking = estimator.rank_backends(circuit, current)
        by_device = {report.device: report.esp for report in ranking}
        fresh = ranking[0]
        rows.append(
            DriftCycleRow(
                cycle=cycle,
                fresh_choice=fresh.device,
                stale_choice=stale_choice,
                fresh_estimate=fresh.esp,
                stale_estimate=by_device[stale_choice],
            )
        )
    return CalibrationDriftResult(
        rows=rows,
        circuit_name=circuit.name,
        num_devices=len(fleet),
        config_description=config.describe(),
    )


def render_calibration_drift(result: CalibrationDriftResult) -> str:
    """Text report of the drift experiment."""
    lines = [
        f"Calibration drift — circuit {result.circuit_name} on {result.num_devices} devices "
        f"({result.config_description})",
        f"{'cycle':>5} {'fresh choice':>16} {'stale choice':>16} {'fresh est':>10} {'stale est':>10} {'gap':>8}",
    ]
    lines.append("-" * len(lines[-1]))
    for row in result.rows:
        lines.append(
            f"{row.cycle:>5} {row.fresh_choice:>16} {row.stale_choice:>16} "
            f"{row.fresh_estimate:>10.4f} {row.stale_estimate:>10.4f} {row.gap:>8.4f}"
        )
    lines.append(
        f"switch fraction = {result.switch_fraction():.2f}, mean gap = {result.mean_gap():.4f}, "
        f"max gap = {result.max_gap():.4f}"
    )
    return "\n".join(lines)
