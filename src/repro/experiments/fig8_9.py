"""Figs. 8 & 9 — device choice for a user-drawn topology.

Section 4.4: three 10-qubit devices with identical error characteristics but
different topologies (tree-like, ring, line) are registered; the user draws a
tree-like topology on the canvas; the scheduler should select the tree device
every time.  The paper repeats the experiment 50 times and reports the same
choice in every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backends.backend import Backend
from repro.backends.fleet import three_device_testbed
from repro.core.strategies import INFEASIBLE_SCORE, TopologyRankingStrategy
from repro.core.visualizer import TopologyCanvas
from repro.experiments.config import ExperimentConfig, default_config
from repro.utils.rng import derive_seed

#: The tree-like topology the user draws (Fig. 8): a binary tree on 10 qubits,
#: matching the first device of Fig. 9.
USER_TREE_EDGES: Tuple[Tuple[int, int], ...] = (
    (0, 1),
    (0, 2),
    (1, 3),
    (1, 4),
    (2, 5),
    (2, 6),
    (3, 7),
    (3, 8),
    (4, 9),
)


@dataclass
class Fig89Result:
    """Outcome of the user-topology selection experiment."""

    selections: Dict[str, int]
    scores: Dict[str, float]
    chosen_device: str
    repetitions: int
    always_same_choice: bool
    config_description: str

    def as_dict(self) -> Dict[str, object]:
        """Serialisable form used by reports."""
        return {
            "selections": dict(self.selections),
            "scores": dict(self.scores),
            "chosen_device": self.chosen_device,
            "repetitions": self.repetitions,
            "always_same_choice": self.always_same_choice,
        }


def user_topology_canvas() -> TopologyCanvas:
    """The canvas drawing the paper's Fig. 8 user topology."""
    canvas = TopologyCanvas(10)
    canvas.load_edges(USER_TREE_EDGES)
    return canvas


def run_fig8_9(
    config: Optional[ExperimentConfig] = None,
    devices: Optional[List[Backend]] = None,
) -> Fig89Result:
    """Regenerate the Figs. 8/9 experiment.

    The scheduler's choice is repeated ``fig8_repetitions`` times; because the
    underlying subgraph-isomorphism scoring is deterministic for a fixed seed
    per repetition, the expected outcome is the tree device 50 times out of 50.
    """
    config = config or default_config()
    devices = devices if devices is not None else three_device_testbed()
    topology_circuit = user_topology_canvas().to_topology_circuit(name="fig8_user_topology")

    selections: Dict[str, int] = {backend.name: 0 for backend in devices}
    last_scores: Dict[str, float] = {}
    for repetition in range(config.fig8_repetitions):
        strategy = TopologyRankingStrategy(
            topology_circuit,
            seed=derive_seed(config.seed, "fig8", repetition),
        )
        scores = {}
        for backend in devices:
            value = strategy.score(backend)
            if value != INFEASIBLE_SCORE:
                scores[backend.name] = value
        chosen = min(scores, key=lambda name: (scores[name], name))
        selections[chosen] += 1
        last_scores = scores
    chosen_device = max(selections, key=selections.get)
    return Fig89Result(
        selections=selections,
        scores=last_scores,
        chosen_device=chosen_device,
        repetitions=config.fig8_repetitions,
        always_same_choice=selections[chosen_device] == config.fig8_repetitions,
        config_description=config.describe(),
    )
