"""Tables 1 and 2 of the paper, regenerated from the live system.

* Table 1 records which details the visualizer sends to the meta server for
  the two submission options (fidelity vs topology); the rows here are
  produced by actually running the submission workflow and inspecting the
  payloads, so the table stays true to the implementation.
* Table 2 lists the controllable backend parameters of the synthetic fleet;
  the rows come straight from :class:`~repro.backends.FleetSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.backends.fleet import FleetSpec
from repro.circuits.library import ghz
from repro.core.visualizer import JobSubmissionForm, TopologyCanvas


@dataclass
class TableRow:
    """A generic two-column table row."""

    key: str
    value: str


def table1_rows() -> List[TableRow]:
    """Regenerate Table 1 by running both submission workflows."""
    circuit = ghz(4)

    fidelity_form = (
        JobSubmissionForm()
        .choose_circuit(circuit)
        .set_job_details("table1-fidelity", "qrio/table1", num_qubits=4)
        .request_fidelity(0.9)
    )
    fidelity_payload = fidelity_form.submit().meta.as_dict()
    fidelity_fields = sorted(key for key, value in fidelity_payload.items() if value is not None and key != "strategy")

    canvas = TopologyCanvas(4).load_edges([(0, 1), (1, 2), (2, 3)])
    topology_form = (
        JobSubmissionForm()
        .choose_circuit(circuit)
        .set_job_details("table1-topology", "qrio/table1", num_qubits=4)
        .request_topology(canvas)
    )
    topology_payload = topology_form.submit().meta.as_dict()
    topology_fields = sorted(key for key, value in topology_payload.items() if value is not None and key != "strategy")

    return [
        TableRow(key="Fidelity", value=", ".join(fidelity_fields)),
        TableRow(key="Topology", value=", ".join(topology_fields)),
    ]


def table2_rows(spec: FleetSpec = FleetSpec()) -> List[TableRow]:
    """Regenerate Table 2 from the fleet specification."""
    return [TableRow(key=key, value=value) for key, value in spec.rows()]


def render_rows(title: str, rows: List[TableRow], key_header: str = "Parameter", value_header: str = "Values") -> str:
    """Render rows as an aligned text table."""
    key_width = max(len(key_header), *(len(row.key) for row in rows))
    lines = [title, f"{key_header:<{key_width}}  {value_header}", "-" * (key_width + 2 + len(value_header))]
    for row in rows:
        lines.append(f"{row.key:<{key_width}}  {row.value}")
    return "\n".join(lines)
