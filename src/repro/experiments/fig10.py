"""Fig. 10 — number of filtered devices vs. the user's two-qubit error bound.

Section 4.5: over the 100-backend fleet, the user tightens the maximum
average two-qubit error rate they can tolerate; the figure reports how many
devices survive the scheduler's filtering stage at each bound.  At 0.07 no
device survives (the job is unschedulable); at 0.68 the entire cluster
survives because every device's error rate is at most 0.7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.backend import Backend
from repro.cluster.job import DeviceConstraints, Job, JobSpec, ResourceRequest
from repro.cluster.node import Node
from repro.core.scheduler import DeviceCharacteristicsFilter, QubitCountFilter
from repro.experiments.config import ExperimentConfig, default_config

#: The ten thresholds swept in the paper's Fig. 10.
PAPER_THRESHOLDS: Tuple[float, ...] = (0.07, 0.147, 0.214, 0.280, 0.347, 0.414, 0.480, 0.547, 0.613, 0.680)


@dataclass
class Fig10Row:
    """One bar of Fig. 10."""

    max_two_qubit_error: float
    filtered_devices: int

    def as_dict(self) -> Dict[str, float]:
        """Serialisable form used by reports."""
        return {
            "max_two_qubit_error": self.max_two_qubit_error,
            "filtered_devices": self.filtered_devices,
        }


@dataclass
class Fig10Result:
    """The full filtering sweep."""

    rows: List[Fig10Row]
    fleet_size: int
    config_description: str

    def counts(self) -> Dict[float, int]:
        """Mapping threshold -> surviving device count (the plotted series)."""
        return {row.max_two_qubit_error: row.filtered_devices for row in self.rows}

    def is_monotonic(self) -> bool:
        """``True`` when loosening the bound never removes devices."""
        counts = [row.filtered_devices for row in self.rows]
        return all(earlier <= later for earlier, later in zip(counts, counts[1:]))


def _probe_job(max_two_qubit_error: float) -> Job:
    """A minimal job carrying only the two-qubit error bound."""
    spec = JobSpec(
        name=f"filter-probe-{max_two_qubit_error:.3f}",
        image="qrio/filter-probe",
        circuit_qasm="OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\n",
        resources=ResourceRequest(qubits=1, cpu_millicores=0, memory_mb=0),
        constraints=DeviceConstraints(max_avg_two_qubit_error=max_two_qubit_error),
        strategy="fidelity",
        metadata={"fidelity_threshold": 1.0},
    )
    return Job(spec=spec)


def count_filtered_devices(fleet: Sequence[Backend], max_two_qubit_error: float) -> int:
    """Number of fleet devices passing the characteristics filter at one bound."""
    qubit_filter = QubitCountFilter()
    characteristics_filter = DeviceCharacteristicsFilter()
    job = _probe_job(max_two_qubit_error)
    survivors = 0
    for backend in fleet:
        node = Node(backend)
        feasible, _ = qubit_filter.filter(job, node)
        if not feasible:
            continue
        feasible, _ = characteristics_filter.filter(job, node)
        if feasible:
            survivors += 1
    return survivors


def run_fig10(
    config: Optional[ExperimentConfig] = None,
    fleet: Optional[List[Backend]] = None,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
) -> Fig10Result:
    """Regenerate Fig. 10 over the configured fleet."""
    config = config or default_config()
    fleet = fleet if fleet is not None else config.build_fleet()
    rows = [
        Fig10Row(max_two_qubit_error=threshold, filtered_devices=count_filtered_devices(fleet, threshold))
        for threshold in thresholds
    ]
    return Fig10Result(rows=rows, fleet_size=len(fleet), config_description=config.describe())
