"""Extension experiment — exact vs budgeted topology scoring on dense devices.

Section 5 of the paper flags Mapomatic-style exact scoring as the scalability
bottleneck of the topology workflow: on densely connected devices the scoring
can take tens of minutes once the requested topology reaches 12-15 qubits.
This ablation reproduces the blow-up in miniature — an exhaustive embedding
enumeration versus the budgeted matcher of :mod:`repro.matching.scalable` —
and reports both the runtime ratio and how much solution quality the budget
gives up (none, when exact embeddings exist on a dense device: every
placement is exact, so the heuristic lands on the same cost scale).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.backends.backend import Backend
from repro.backends.fleet import uniform_error_device
from repro.backends.topologies import fully_connected_topology, random_coupling_map
from repro.experiments.config import ExperimentConfig, default_config
from repro.matching.interaction import topology_as_graph
from repro.matching.mapomatic import match_device
from repro.matching.scalable import MatchBudget, scalable_match_device
from repro.utils.rng import derive_seed


@dataclass
class ScalableMatchingRow:
    """One (pattern, device) comparison."""

    pattern: str
    device: str
    exact_score: float
    scalable_score: float
    exact_seconds: float
    scalable_seconds: float

    @property
    def speedup(self) -> float:
        """How many times faster the budgeted matcher ran."""
        if self.scalable_seconds <= 0:
            return float("inf")
        return self.exact_seconds / self.scalable_seconds

    @property
    def score_ratio(self) -> float:
        """Budgeted score relative to the exact score (1.0 = no quality loss)."""
        if self.exact_score <= 0:
            return 1.0
        return self.scalable_score / self.exact_score

    def as_dict(self) -> Dict[str, object]:
        """Serialisable form used by reports."""
        return {
            "pattern": self.pattern,
            "device": self.device,
            "exact_score": self.exact_score,
            "scalable_score": self.scalable_score,
            "exact_seconds": self.exact_seconds,
            "scalable_seconds": self.scalable_seconds,
            "speedup": self.speedup,
            "score_ratio": self.score_ratio,
        }


@dataclass
class ScalableMatchingResult:
    """All comparisons of the ablation."""

    rows: List[ScalableMatchingRow]
    exhaustive_embedding_cap: int
    config_description: str

    def dense_row(self) -> ScalableMatchingRow:
        """The dense-pattern-on-dense-device row (the paper's pain point)."""
        return max(self.rows, key=lambda row: row.exact_seconds)

    def worst_score_ratio(self) -> float:
        """The largest quality loss across all comparisons."""
        return max((row.score_ratio for row in self.rows), default=1.0)


def _dense_pattern(num_qubits: int) -> nx.Graph:
    return topology_as_graph(num_qubits, fully_connected_topology(num_qubits))


def _ring_pattern(num_qubits: int) -> nx.Graph:
    edges = [(index, (index + 1) % num_qubits) for index in range(num_qubits)]
    return topology_as_graph(num_qubits, edges)


def ablation_devices(seed=None) -> List[Backend]:
    """A dense 16-qubit device and a mid-density 20-qubit device."""
    dense = uniform_error_device(
        "ablation_dense16",
        fully_connected_topology(16),
        16,
        two_qubit_error=0.03,
        one_qubit_error=0.005,
        readout_error=0.02,
    )
    medium = uniform_error_device(
        "ablation_medium20",
        random_coupling_map(20, 0.45, seed=derive_seed(seed, "scalable-medium")),
        20,
        two_qubit_error=0.05,
        one_qubit_error=0.01,
        readout_error=0.03,
    )
    return [dense, medium]


def run_scalable_matching(
    config: Optional[ExperimentConfig] = None,
    devices: Optional[Sequence[Backend]] = None,
    exhaustive_embedding_cap: int = 3000,
    budget: Optional[MatchBudget] = None,
) -> ScalableMatchingResult:
    """Time exact (exhaustively enumerated) vs budgeted matching on each device."""
    config = config or default_config()
    devices = list(devices) if devices is not None else ablation_devices(seed=config.seed)
    budget = budget or MatchBudget(exact_embedding_cap=0, anneal_iterations=300, restarts=2)
    patterns: List[Tuple[str, nx.Graph]] = [
        ("dense-9", _dense_pattern(9)),
        ("ring-10", _ring_pattern(10)),
    ]
    rows: List[ScalableMatchingRow] = []
    for pattern_name, pattern in patterns:
        for device in devices:
            # qrio: allow[QRIO-D002] perf-timing experiment: measuring matcher wall time is the point
            start = time.perf_counter()
            exact = match_device(pattern, device, max_embeddings=exhaustive_embedding_cap, seed=config.seed)
            exact_seconds = time.perf_counter() - start  # qrio: allow[QRIO-D002] perf timing
            start = time.perf_counter()  # qrio: allow[QRIO-D002] perf timing
            scalable = scalable_match_device(pattern, device, budget=budget, seed=config.seed)
            scalable_seconds = time.perf_counter() - start  # qrio: allow[QRIO-D002] perf timing
            if exact is None or scalable is None:
                continue
            rows.append(
                ScalableMatchingRow(
                    pattern=pattern_name,
                    device=device.name,
                    exact_score=exact.score,
                    scalable_score=scalable.score,
                    exact_seconds=exact_seconds,
                    scalable_seconds=scalable_seconds,
                )
            )
    return ScalableMatchingResult(
        rows=rows,
        exhaustive_embedding_cap=exhaustive_embedding_cap,
        config_description=config.describe(),
    )


def render_scalable_matching(result: ScalableMatchingResult) -> str:
    """Text report of the exact-vs-budgeted comparison."""
    header = (
        f"{'pattern':>10} {'device':>20} {'exact score':>12} {'budget score':>13} "
        f"{'exact s':>9} {'budget s':>9} {'speedup':>8}"
    )
    lines = [
        f"Scalable topology scoring ablation (exhaustive cap = {result.exhaustive_embedding_cap}; "
        f"{result.config_description})",
        header,
        "-" * len(header),
    ]
    for row in result.rows:
        lines.append(
            f"{row.pattern:>10} {row.device:>20} {row.exact_score:>12.4f} {row.scalable_score:>13.4f} "
            f"{row.exact_seconds:>9.3f} {row.scalable_seconds:>9.3f} {row.speedup:>8.1f}x"
        )
    return "\n".join(lines)
