"""Fig. 6 — device selection from default topologies (QRIO vs random).

Section 4.2: for each of five default topology requests, QRIO's topology
ranking plugin scores all devices in the cluster and picks the lowest-score
device; a random scheduler picks uniformly among the (here: all) filtered
devices.  The reported metric is the *average decrease in score* of QRIO's
pick relative to the random pick over 25 repetitions.  The paper's headline
shape: QRIO always wins, the gap is largest for the fully connected request
(only the handful of high-connectivity devices suit it) and smallest for the
ring request (almost every device can host a ring).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backends.backend import Backend
from repro.core.strategies import INFEASIBLE_SCORE, TopologyRankingStrategy
from repro.experiments.config import ExperimentConfig, default_config
from repro.utils.exceptions import ReproError
from repro.utils.rng import derive_seed, ensure_generator
from repro.workloads.default_topologies import DefaultTopology, default_topologies


@dataclass
class Fig6Row:
    """One bar of Fig. 6."""

    topology: str
    label: str
    qrio_device: str
    qrio_score: float
    average_random_score: float
    average_decrease: float
    repetitions: int

    def as_dict(self) -> Dict[str, object]:
        """Serialisable form used by reports."""
        return {
            "topology": self.topology,
            "label": self.label,
            "qrio_device": self.qrio_device,
            "qrio_score": self.qrio_score,
            "average_random_score": self.average_random_score,
            "average_decrease": self.average_decrease,
            "repetitions": self.repetitions,
        }


@dataclass
class Fig6Result:
    """All bars of Fig. 6 plus the configuration that produced them."""

    rows: List[Fig6Row]
    config_description: str

    def decreases(self) -> Dict[str, float]:
        """Mapping topology label -> average decrease (the plotted series)."""
        return {row.label: row.average_decrease for row in self.rows}


def _score_topology_on_fleet(
    topology: DefaultTopology,
    fleet: List[Backend],
    seed,
) -> Dict[str, float]:
    """Score one topology request on every feasible device (lower is better)."""
    strategy = TopologyRankingStrategy(topology.topology_circuit(), seed=seed)
    scores: Dict[str, float] = {}
    for backend in fleet:
        if backend.num_qubits < topology.num_qubits:
            continue
        value = strategy.score(backend)
        if value != INFEASIBLE_SCORE:
            scores[backend.name] = value
    if not scores:
        raise ReproError(f"No device in the fleet can host the '{topology.key}' request")
    return scores


def run_fig6(
    config: Optional[ExperimentConfig] = None,
    fleet: Optional[List[Backend]] = None,
) -> Fig6Result:
    """Regenerate Fig. 6.

    For every default topology the QRIO score is deterministic (lowest score
    over the fleet); the random baseline is re-drawn ``fig6_repetitions``
    times and the decrease is averaged, exactly as in the paper.
    """
    config = config or default_config()
    fleet = fleet if fleet is not None else config.build_fleet()
    rows: List[Fig6Row] = []
    for topology in default_topologies():
        scores = _score_topology_on_fleet(
            topology, fleet, seed=derive_seed(config.seed, "fig6", topology.key)
        )
        qrio_device = min(scores, key=lambda name: (scores[name], name))
        qrio_score = scores[qrio_device]
        rng = ensure_generator(derive_seed(config.seed, "fig6-random", topology.key))
        candidate_names = sorted(scores)
        random_scores = []
        for _ in range(config.fig6_repetitions):
            pick = candidate_names[int(rng.integers(0, len(candidate_names)))]
            random_scores.append(scores[pick])
        average_random = sum(random_scores) / len(random_scores)
        rows.append(
            Fig6Row(
                topology=topology.key,
                label=topology.label,
                qrio_device=qrio_device,
                qrio_score=qrio_score,
                average_random_score=average_random,
                average_decrease=average_random - qrio_score,
                repetitions=config.fig6_repetitions,
            )
        )
    return Fig6Result(rows=rows, config_description=config.describe())
