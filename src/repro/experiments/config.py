"""Experiment configuration shared by every table/figure driver.

The paper's evaluation uses the full 100-device fleet, 25 repetitions for
Fig. 6 and 50 repetitions for Figs. 8/9.  Because the reproduction simulates
every noisy execution in pure Python, the default configuration used by the
benchmark harness trims the fleet and shot counts to keep a full benchmark
run in CI-friendly time; :func:`paper_scale` restores the published scale.
EXPERIMENTS.md records which configuration produced the committed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.backends.backend import Backend
from repro.backends.fleet import FleetSpec, generate_fleet
from repro.utils.rng import DEFAULT_SEED


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling experiment scale and determinism."""

    #: Number of fleet devices to use (``None`` = the full 100 of Table 2).
    fleet_limit: Optional[int] = 24
    #: Repetitions of the random-scheduler comparison (Fig. 6; paper uses 25).
    fig6_repetitions: int = 25
    #: Repetitions of the user-topology selection (Figs. 8/9; paper uses 50).
    fig8_repetitions: int = 50
    #: Shots used for canary and achieved-fidelity executions.
    shots: int = 256
    #: Base seed for fleet generation, noise sampling and random baselines.
    seed: int = DEFAULT_SEED

    def build_fleet(self) -> List[Backend]:
        """Generate the (possibly truncated) Table 2 fleet."""
        return generate_fleet(spec=FleetSpec(), seed=self.seed, limit=self.fleet_limit)

    def describe(self) -> str:
        """One-line description recorded alongside experiment outputs."""
        fleet = self.fleet_limit if self.fleet_limit is not None else 100
        return (
            f"fleet={fleet} devices, shots={self.shots}, "
            f"fig6_reps={self.fig6_repetitions}, fig8_reps={self.fig8_repetitions}, seed={self.seed}"
        )


def quick_config() -> ExperimentConfig:
    """Small configuration used by the test suite (seconds, not minutes)."""
    return ExperimentConfig(fleet_limit=10, fig6_repetitions=5, fig8_repetitions=5, shots=128)


def default_config() -> ExperimentConfig:
    """The configuration the benchmark harness runs by default."""
    return ExperimentConfig()


def paper_scale_config() -> ExperimentConfig:
    """The full published scale: 100 devices, 25/50 repetitions."""
    return ExperimentConfig(fleet_limit=None, fig6_repetitions=25, fig8_repetitions=50, shots=512)
