"""Experiment drivers regenerating every table and figure of the paper.

Modules named ``figN``/``tables`` regenerate the paper's own evaluation;
``cloud_policies``, ``calibration_drift`` and ``scalable_matching`` are
extension experiments for the future-work directions this reproduction
implements (multi-job scheduling, calibration-aware re-scoring and budgeted
topology scoring).
"""

from repro.experiments.calibration_drift import (
    CalibrationDriftResult,
    DriftCycleRow,
    drift_testbed_fleet,
    render_calibration_drift,
    run_calibration_drift,
)
from repro.experiments.cloud_policies import (
    CloudPolicyComparisonResult,
    CloudPolicyRow,
    cloud_testbed_fleet,
    render_cloud_policy_comparison,
    run_cloud_policy_comparison,
)
from repro.experiments.config import (
    ExperimentConfig,
    default_config,
    paper_scale_config,
    quick_config,
)
from repro.experiments.fig6 import Fig6Result, Fig6Row, run_fig6
from repro.experiments.fig7 import Fig7Result, Fig7Row, run_fig7
from repro.experiments.fig8_9 import Fig89Result, run_fig8_9, user_topology_canvas
from repro.experiments.fig10 import PAPER_THRESHOLDS, Fig10Result, Fig10Row, count_filtered_devices, run_fig10
from repro.experiments.report import render_fig6, render_fig7, render_fig8_9, render_fig10
from repro.experiments.scalable_matching import (
    ScalableMatchingResult,
    ScalableMatchingRow,
    ablation_devices,
    render_scalable_matching,
    run_scalable_matching,
)
from repro.experiments.tables import TableRow, render_rows, table1_rows, table2_rows

__all__ = [
    "CalibrationDriftResult",
    "CloudPolicyComparisonResult",
    "CloudPolicyRow",
    "DriftCycleRow",
    "ExperimentConfig",
    "Fig10Result",
    "Fig10Row",
    "Fig6Result",
    "Fig6Row",
    "Fig7Result",
    "Fig7Row",
    "Fig89Result",
    "PAPER_THRESHOLDS",
    "ScalableMatchingResult",
    "ScalableMatchingRow",
    "TableRow",
    "ablation_devices",
    "cloud_testbed_fleet",
    "count_filtered_devices",
    "default_config",
    "drift_testbed_fleet",
    "paper_scale_config",
    "quick_config",
    "render_calibration_drift",
    "render_cloud_policy_comparison",
    "render_fig10",
    "render_fig6",
    "render_fig7",
    "render_fig8_9",
    "render_rows",
    "render_scalable_matching",
    "run_calibration_drift",
    "run_cloud_policy_comparison",
    "run_fig10",
    "run_fig6",
    "run_fig7",
    "run_fig8_9",
    "run_scalable_matching",
    "table1_rows",
    "table2_rows",
    "user_topology_canvas",
]
