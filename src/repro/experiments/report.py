"""Rendering experiment results as the rows/series the paper reports."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Result
from repro.experiments.fig8_9 import Fig89Result
from repro.experiments.fig10 import Fig10Result

#: The values read off the paper's figures, used for side-by-side reporting.
PAPER_FIG6_DECREASES: Dict[str, float] = {
    "Grid": 16.76,
    "Heavy Square": 14.72,
    "Fully Connected": 26.76,
    "Line": 11.95,
    "Ring": 8.3,
}

PAPER_FIG10_COUNTS: Dict[float, int] = {
    0.07: 0,
    0.68: 100,
}


def render_fig6(result: Fig6Result) -> str:
    """Fig. 6 as a text table: average decrease of QRIO's score vs random."""
    lines = [
        "Fig. 6 — Average decrease in score of QRIO scheduler vs random scheduler",
        f"({result.config_description})",
        f"{'Topology':<16s} {'QRIO score':>11s} {'Random avg':>11s} {'Decrease':>9s} {'Paper':>7s}",
    ]
    for row in result.rows:
        paper = PAPER_FIG6_DECREASES.get(row.label)
        paper_text = f"{paper:7.2f}" if paper is not None else "    n/a"
        lines.append(
            f"{row.label:<16s} {row.qrio_score:>11.3f} {row.average_random_score:>11.3f} "
            f"{row.average_decrease:>9.3f} {paper_text}"
        )
    return "\n".join(lines)


def render_fig7(result: Fig7Result) -> str:
    """Fig. 7 as a text table: achieved fidelity per policy and workload."""
    lines = [
        "Fig. 7 — Achieved fidelity for user circuits (demanded fidelity 100%)",
        f"({result.config_description})",
        f"{'Workload':<9s} {'Oracle':>7s} {'Clifford':>9s} {'Random':>7s} {'Average':>8s} {'Median':>7s}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.label:<9s} {row.oracle:>7.3f} {row.clifford:>9.3f} {row.random:>7.3f} "
            f"{row.average:>8.3f} {row.median:>7.3f}"
        )
    return "\n".join(lines)


def render_fig8_9(result: Fig89Result) -> str:
    """Figs. 8/9 as text: per-device selections and scores."""
    lines = [
        "Figs. 8/9 — Device choice for the user-drawn tree topology",
        f"({result.config_description})",
        f"Chosen device: {result.chosen_device} "
        f"({result.selections[result.chosen_device]}/{result.repetitions} repetitions"
        f"{', every run' if result.always_same_choice else ''})",
        f"{'Device':<16s} {'Selections':>10s} {'Score':>9s}",
    ]
    for device in sorted(result.selections):
        score = result.scores.get(device)
        score_text = f"{score:9.3f}" if score is not None else "      n/a"
        lines.append(f"{device:<16s} {result.selections[device]:>10d} {score_text}")
    return "\n".join(lines)


def render_fig10(result: Fig10Result) -> str:
    """Fig. 10 as a text table: surviving devices per error bound."""
    lines = [
        "Fig. 10 — Number of filtered devices vs. maximum two-qubit error bound",
        f"({result.config_description}; fleet of {result.fleet_size})",
        f"{'Max 2q error':>12s} {'Devices':>8s}",
    ]
    for row in result.rows:
        lines.append(f"{row.max_two_qubit_error:>12.3f} {row.filtered_devices:>8d}")
    lines.append(f"Monotonic: {result.is_monotonic()}")
    return "\n".join(lines)
