"""Extension experiment — multi-job allocation policies on a shared cloud.

The paper's evaluation schedules one job at a time; its future-work section
asks for multi-job scheduling.  This experiment runs the same Poisson arrival
trace through the policy roster of :mod:`repro.cloud.policies` on a regional
fleet of simulated devices and reports, per policy, the mean/p95 wait, the
mean estimated fidelity of the chosen devices, fairness across users and the
makespan — the quantities a cloud operator would use to pick a policy.

The expected shape: the random and round-robin baselines sit at mediocre
fidelity, the pure fidelity policy maximises fidelity but piles every job on
the best device (long waits), the least-loaded policy minimises waits but
ignores fidelity, and the queue-aware fidelity policy recovers most of the
fidelity at a fraction of the queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backends.backend import Backend
from repro.backends.fleet import generate_device
from repro.scenarios.arrivals import ArrivalSpec, JobRequest, generate_trace
from repro.scenarios.metrics import render_metric_table
from repro.cloud.policies import builtin_policies
from repro.cloud.simulation import CloudSimulationConfig, CloudSimulationResult, compare_policies
from repro.experiments.config import ExperimentConfig, default_config
from repro.utils.rng import derive_seed
from repro.workloads.suites import nisq_mix_suite


@dataclass
class CloudPolicyRow:
    """One policy's row in the comparison table."""

    policy: str
    mean_wait_s: float
    p95_wait_s: float
    mean_fidelity: float
    fairness: float
    makespan_s: float
    busiest_device_share: float

    def as_dict(self) -> Dict[str, object]:
        """Serialisable form used by reports."""
        return {
            "policy": self.policy,
            "mean_wait_s": self.mean_wait_s,
            "p95_wait_s": self.p95_wait_s,
            "mean_fidelity": self.mean_fidelity,
            "fairness": self.fairness,
            "makespan_s": self.makespan_s,
            "busiest_device_share": self.busiest_device_share,
        }


@dataclass
class CloudPolicyComparisonResult:
    """All policy rows plus the trace and fleet description."""

    rows: List[CloudPolicyRow]
    num_jobs: int
    num_devices: int
    config_description: str

    def row(self, policy_prefix: str) -> CloudPolicyRow:
        """The first row whose policy name starts with ``policy_prefix``."""
        for row in self.rows:
            if row.policy.startswith(policy_prefix):
                return row
        raise KeyError(f"No policy row starts with '{policy_prefix}'")

    def by_policy(self) -> Dict[str, CloudPolicyRow]:
        """Rows keyed by full policy name."""
        return {row.policy: row for row in self.rows}


def cloud_testbed_fleet(num_devices: int = 8, seed: Optional[int] = None) -> List[Backend]:
    """A regional cloud: moderate-size devices spanning quality tiers.

    The full Table 2 fleet contains 100-qubit devices that make analytic
    scoring needlessly slow for a multi-job trace; a regional testbed of
    15-27 qubit devices with spread-out connectivity and error levels keeps
    the experiment minutes-fast while preserving the heterogeneity that makes
    policy choice matter.
    """
    qubit_counts = (15, 20, 27)
    edge_probabilities = (0.15, 0.45, 0.78)
    fleet: List[Backend] = []
    index = 0
    while len(fleet) < num_devices:
        qubits = qubit_counts[index % len(qubit_counts)]
        edges = edge_probabilities[(index // len(qubit_counts)) % len(edge_probabilities)]
        fleet.append(
            generate_device(
                qubits,
                edges,
                seed=derive_seed(seed, "cloud-fleet", index),
                name=f"cloud_q{qubits}_{index:02d}",
            )
        )
        index += 1
    return fleet


def _busiest_share(result: CloudSimulationResult) -> float:
    counts = result.jobs_per_device()
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return max(counts.values()) / total


def run_cloud_policy_comparison(
    config: Optional[ExperimentConfig] = None,
    fleet: Optional[Sequence[Backend]] = None,
    trace: Optional[Sequence[JobRequest]] = None,
    num_jobs: int = 60,
    num_devices: int = 8,
    rate_per_hour: float = 360.0,
) -> CloudPolicyComparisonResult:
    """Run the policy roster over one shared trace and summarise each policy."""
    config = config or default_config()
    fleet = list(fleet) if fleet is not None else cloud_testbed_fleet(num_devices, seed=config.seed)
    if trace is None:
        spec = ArrivalSpec(
            rate_per_hour=rate_per_hour,
            num_jobs=num_jobs,
            num_users=8,
            shots=config.shots,
            suite=nisq_mix_suite(),
        )
        trace = generate_trace(spec, seed=derive_seed(config.seed, "cloud-trace"))
    simulation_config = CloudSimulationConfig(fidelity_report="esp", seed=config.seed)
    results = compare_policies(fleet, trace, builtin_policies(seed=config.seed), simulation_config)
    rows = []
    for name, result in results.items():
        summary = result.summary()
        rows.append(
            CloudPolicyRow(
                policy=name,
                mean_wait_s=float(summary["mean_wait_s"]),
                p95_wait_s=float(summary["p95_wait_s"]),
                mean_fidelity=float(summary["mean_fidelity"]),
                fairness=float(summary["fairness"]),
                makespan_s=float(summary["makespan_s"]),
                busiest_device_share=_busiest_share(result),
            )
        )
    return CloudPolicyComparisonResult(
        rows=rows,
        num_jobs=len(list(trace)),
        num_devices=len(fleet),
        config_description=config.describe(),
    )


def render_cloud_policy_comparison(result: CloudPolicyComparisonResult) -> str:
    """Text table of the policy comparison."""
    columns = [
        "policy",
        "mean_wait_s",
        "p95_wait_s",
        "mean_fidelity",
        "fairness",
        "busiest_device_share",
        "makespan_s",
    ]
    title = (
        f"Cloud policy comparison — {result.num_jobs} jobs on {result.num_devices} devices "
        f"({result.config_description})"
    )
    return render_metric_table([row.as_dict() for row in result.rows], columns, title)
