"""Runtime race sanitizer: traced locks that record what threads actually do.

The static lock-order rule (QRIO-C002) reasons about code; this module
watches executions.  :class:`TracedLock` and :class:`TracedCondition` are
drop-in replacements for :class:`threading.Lock` / :class:`threading.Condition`
that report every acquisition to a shared :class:`RaceMonitor`, which

* maintains each thread's stack of currently-held locks,
* records the directed *acquisition-order* edge ``A -> B`` whenever a thread
  takes ``B`` while holding ``A``,
* flags a **lock-order inversion** the moment the reverse edge of an
  existing edge appears (two code paths disagree on the order — the classic
  deadlock precondition, caught even when the interleaving that would
  actually deadlock never happens in this run),
* flags a **self-deadlock** (re-acquiring a non-reentrant lock the thread
  already holds), and
* reports **unreleased holds** — locks still held when
  :meth:`RaceMonitor.assert_clean` runs (a leaked ``acquire`` without a
  paired ``release``).

Wiring it into real code never requires editing that code:
:func:`traced_threading` builds a module-shaped shim whose ``Lock`` /
``Condition`` constructors hand out traced instances, so a test can
``monkeypatch.setattr(repro.service.runtime, "threading", shim)`` and run
the ordinary :class:`~repro.service.ServiceRuntime` suite under the
sanitizer (``tests/service/conftest.py`` does exactly that when
``QRIO_RACETRACE=1``).
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "LockOrderViolation",
    "RaceMonitor",
    "RaceTraceError",
    "TracedCondition",
    "TracedLock",
    "traced_threading",
]


class RaceTraceError(AssertionError):
    """Raised by :meth:`RaceMonitor.assert_clean` when the run was not clean."""


@dataclass(frozen=True)
class LockOrderViolation:
    """One detected ordering conflict (or self-deadlock)."""

    kind: str  # "inversion" | "self-deadlock"
    first: str  # lock acquired first (outer)
    second: str  # lock acquired second (inner)
    thread: str
    #: Where the conflicting (second) acquisition happened, as file:line.
    site: str
    #: Where the *original* opposite-order edge was recorded.
    prior_site: str

    def __str__(self) -> str:
        if self.kind == "self-deadlock":
            return (
                f"self-deadlock: thread '{self.thread}' re-acquired non-reentrant "
                f"'{self.first}' at {self.site} (held since {self.prior_site})"
            )
        return (
            f"lock-order inversion: thread '{self.thread}' took '{self.second}' while "
            f"holding '{self.first}' at {self.site}, but the opposite order "
            f"'{self.second}' -> '{self.first}' was recorded at {self.prior_site}"
        )


def _call_site(depth: int = 2) -> str:
    """``file:line`` of the caller ``depth`` frames up (best effort)."""
    try:
        frame = sys._getframe(depth)
        return f"{frame.f_code.co_filename.rsplit('/', 1)[-1]}:{frame.f_lineno}"
    except (ValueError, AttributeError):  # pragma: no cover - shallow stacks
        return "<unknown>"


class RaceMonitor:
    """Shared recorder of per-thread lock acquisition sequences."""

    def __init__(self) -> None:
        #: Internal guard; a plain lock so the monitor never participates in
        #: the orders it audits.
        self._mutex = threading.Lock()
        self._counter = 0
        #: thread ident -> stack of (lock name, acquire site).
        self._held: Dict[int, List[Tuple[str, str]]] = {}
        #: (outer, inner) -> site where that order was first observed.
        self._edges: Dict[Tuple[str, str], str] = {}
        self._violations: List[LockOrderViolation] = []

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #
    def lock(self, name: Optional[str] = None) -> "TracedLock":
        """A new traced lock (named after its creation site by default)."""
        return TracedLock(self, name or self._auto_name("Lock"))

    def condition(self, lock: Optional["TracedLock"] = None, name: Optional[str] = None) -> "TracedCondition":
        """A new traced condition, optionally sharing an existing traced lock."""
        return TracedCondition(self, lock=lock, name=name)

    def _auto_name(self, kind: str) -> str:
        with self._mutex:
            self._counter += 1
            counter = self._counter
        return f"{kind}-{counter}@{_call_site(3)}"

    # ------------------------------------------------------------------ #
    # Event hooks (called by the traced primitives)
    # ------------------------------------------------------------------ #
    def on_acquire_attempt(self, name: str) -> None:
        """Record ordering facts *before* blocking (deadlock risk exists now)."""
        ident = threading.get_ident()
        site = _call_site(3)
        thread = threading.current_thread().name
        with self._mutex:
            stack = self._held.setdefault(ident, [])
            for held_name, held_site in stack:
                if held_name == name:
                    self._violations.append(
                        LockOrderViolation(
                            kind="self-deadlock",
                            first=name,
                            second=name,
                            thread=thread,
                            site=site,
                            prior_site=held_site,
                        )
                    )
                    continue
                edge = (held_name, name)
                reverse = (name, held_name)
                if reverse in self._edges and edge not in self._edges:
                    self._violations.append(
                        LockOrderViolation(
                            kind="inversion",
                            first=held_name,
                            second=name,
                            thread=thread,
                            site=site,
                            prior_site=self._edges[reverse],
                        )
                    )
                self._edges.setdefault(edge, site)

    def on_acquired(self, name: str) -> None:
        ident = threading.get_ident()
        with self._mutex:
            self._held.setdefault(ident, []).append((name, _call_site(3)))

    def on_release(self, name: str) -> None:
        ident = threading.get_ident()
        with self._mutex:
            stack = self._held.get(ident, [])
            for index in range(len(stack) - 1, -1, -1):
                if stack[index][0] == name:
                    del stack[index]
                    return

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def violations(self) -> List[LockOrderViolation]:
        """Every ordering violation recorded so far."""
        with self._mutex:
            return list(self._violations)

    def held_locks(self) -> Dict[str, List[str]]:
        """Currently held locks, keyed by thread name-ish ident."""
        with self._mutex:
            return {
                f"thread-{ident}": [f"{name} (acquired at {site})" for name, site in stack]
                for ident, stack in self._held.items()
                if stack
            }

    def edges(self) -> Dict[Tuple[str, str], str]:
        """The observed acquisition-order graph (edge -> first site)."""
        with self._mutex:
            return dict(self._edges)

    def assert_clean(self) -> None:
        """Fail loudly when violations were recorded or locks are still held.

        Call this after every traced thread has finished (e.g. after
        ``service.close()``), so still-held locks really are leaks rather
        than work in progress.
        """
        problems = [str(violation) for violation in self.violations()]
        for thread, held in sorted(self.held_locks().items()):
            problems.append(f"unreleased hold: {thread} still holds {', '.join(held)}")
        if problems:
            raise RaceTraceError(
                "race sanitizer found {} problem(s):\n  - {}".format(
                    len(problems), "\n  - ".join(problems)
                )
            )


class TracedLock:
    """Drop-in :class:`threading.Lock` reporting to a :class:`RaceMonitor`."""

    def __init__(self, monitor: RaceMonitor, name: str) -> None:
        self._monitor = monitor
        self._name = name
        self._raw = threading.Lock()

    @property
    def name(self) -> str:
        """The lock's diagnostic name (unique per instance)."""
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._monitor.on_acquire_attempt(self._name)
        acquired = self._raw.acquire(blocking, timeout)
        if acquired:
            self._monitor.on_acquired(self._name)
        return acquired

    def release(self) -> None:
        self._monitor.on_release(self._name)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TracedLock({self._name!r}, locked={self._raw.locked()})"


class TracedCondition:
    """Drop-in :class:`threading.Condition` over a :class:`TracedLock`.

    Several conditions may share one traced lock (the
    :class:`~repro.service.ServiceRuntime` pattern of one mutex with
    ``_work`` / ``_not_full`` / ``_idle`` wake-up channels); they then share
    the underlying raw lock exactly as real conditions would.  ``wait``
    reports the release/re-acquire pair to the monitor, so a thread parked
    in ``wait`` holds nothing as far as the sanitizer is concerned.
    """

    def __init__(
        self,
        monitor: RaceMonitor,
        lock: Optional[TracedLock] = None,
        name: Optional[str] = None,
    ) -> None:
        self._monitor = monitor
        self._lock = lock if lock is not None else TracedLock(monitor, name or monitor._auto_name("ConditionLock"))
        #: The real condition runs on the *raw* lock, so its internal
        #: waiter bookkeeping and timeout handling stay stock CPython.
        self._cond = threading.Condition(self._lock._raw)

    @property
    def traced_lock(self) -> TracedLock:
        """The traced lock this condition acquires."""
        return self._lock

    # -- lock face ------------------------------------------------------ #
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    # -- condition face -------------------------------------------------- #
    def wait(self, timeout: Optional[float] = None) -> bool:
        # The raw condition releases and re-acquires the raw lock around the
        # park; mirror that for the monitor so a parked thread holds nothing.
        self._monitor.on_release(self._lock.name)
        try:
            return self._cond.wait(timeout)
        finally:
            self._monitor.on_acquire_attempt(self._lock.name)
            self._monitor.on_acquired(self._lock.name)

    def wait_for(self, predicate, timeout: Optional[float] = None) -> bool:
        self._monitor.on_release(self._lock.name)
        try:
            return self._cond.wait_for(predicate, timeout)
        finally:
            self._monitor.on_acquire_attempt(self._lock.name)
            self._monitor.on_acquired(self._lock.name)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TracedCondition({self._lock.name!r})"


class _TracedThreadingShim:
    """A module-shaped stand-in for :mod:`threading` with traced primitives.

    Everything not overridden (``Thread``, ``get_ident``, ``current_thread``,
    ``Event`` ...) resolves to the real :mod:`threading` module, so patched
    code keeps its full behaviour — only ``Lock`` and ``Condition`` hand out
    traced instances.
    """

    def __init__(self, monitor: RaceMonitor) -> None:
        self.monitor = monitor

    def Lock(self) -> TracedLock:  # noqa: N802 - mirrors threading.Lock
        return self.monitor.lock()

    def Condition(self, lock=None) -> TracedCondition:  # noqa: N802
        if lock is not None and not isinstance(lock, TracedLock):
            # A foreign (untraced) lock: trace the condition's own face only.
            raise TypeError(
                "traced_threading shim needs a TracedLock (or None) for Condition(); "
                f"got {type(lock).__name__}"
            )
        return self.monitor.condition(lock=lock)

    def __getattr__(self, attr: str):
        return getattr(threading, attr)


def traced_threading(monitor: RaceMonitor) -> _TracedThreadingShim:
    """A ``threading``-module stand-in wired to ``monitor``.

    Usage (pytest)::

        monitor = RaceMonitor()
        monkeypatch.setattr(repro.service.runtime, "threading", traced_threading(monitor))
        monkeypatch.setattr(repro.service.handle, "threading", traced_threading(monitor))
        ... run the concurrent workload, then ...
        monitor.assert_clean()
    """
    return _TracedThreadingShim(monitor)
