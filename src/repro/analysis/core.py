"""The AST-based rule engine behind ``repro-qrio analyze``.

The fleet's headline guarantees — bit-identical scenario replay,
compile-once plan reuse, thread-safe concurrent dispatch — rest on
*conventions*: all randomness flows through
:func:`repro.utils.rng.ensure_generator`, deterministic layers never read
wall clocks, cache keys never use the per-process-salted builtin ``hash()``,
and the plan/trace dataclasses stay frozen and picklable.  This module turns
those conventions into machine-checked invariants:

* :class:`Rule` — the protocol a lint pass implements: a ``rule_id``, a
  ``severity``, a human description, a per-module :meth:`Rule.check` and an
  optional cross-module :meth:`Rule.finalize` (used by the lock-order rule,
  whose graph spans files).
* :class:`Finding` — one violation, carrying rule id, severity and a
  clickable ``file:line`` location.
* :class:`Analyzer` — the runner: walks a package tree, parses every module
  once, feeds each :class:`ModuleInfo` through every rule, honours inline
  ``# qrio: allow[RULE-ID] reason`` pragmas, and subtracts the committed
  baseline (``analysis-baseline.json``) so grandfathered findings do not
  fail CI while *new* ones do.

Write a new rule in ≤40 lines: subclass nothing, just provide the three
attributes and ``check`` (see ``docs/analysis.md`` for a worked recipe),
then add it to :func:`repro.analysis.default_rules`.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

__all__ = [
    "Analyzer",
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Rule",
    "dotted_name",
    "load_baseline",
]

#: Inline suppression: ``# qrio: allow[QRIO-D002] reason`` on the offending
#: line (trailing comment) or on the line directly above it.
_PRAGMA = re.compile(r"#\s*qrio:\s*allow\[([A-Za-z0-9-]+)\]\s*(.*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    message: str

    @property
    def location(self) -> str:
        """Clickable ``file:line`` anchor of the finding."""
        return f"{self.path}:{self.line}"

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used to match against baseline entries.

        Deliberately excludes the line number so unrelated edits above a
        grandfathered finding do not un-baseline it.
        """
        return (self.rule_id, self.path, self.message)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the ``analyze --json`` payload)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.location}: {self.rule_id} [{self.severity}] {self.message}"


class ModuleInfo:
    """One parsed source module plus its suppression pragmas."""

    def __init__(self, relpath: str, source: str, *, path: Optional[Path] = None) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=self.relpath)
        self.lines = source.splitlines()
        #: line number -> list of (rule_id, comment-only?) pragmas there.
        self.pragmas: Dict[int, List[Tuple[str, bool]]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _PRAGMA.search(text)
            if match:
                standalone = text.lstrip().startswith("#")
                self.pragmas.setdefault(lineno, []).append((match.group(1), standalone))

    def allows(self, rule_id: str, lineno: int) -> bool:
        """``True`` when a pragma suppresses ``rule_id`` at ``lineno``.

        A trailing-comment pragma applies to its own line only; a pragma on
        a comment-only line applies to the line directly below it
        (annotation-above style), never further.
        """
        for allowed, _standalone in self.pragmas.get(lineno, ()):  # noqa: B007
            if allowed == rule_id:
                return True
        for allowed, standalone in self.pragmas.get(lineno - 1, ()):
            if standalone and allowed == rule_id:
                return True
        return False

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Optional[Finding]:
        """Build a finding for ``node`` unless a pragma suppresses it."""
        lineno = getattr(node, "lineno", 1)
        if self.allows(rule.rule_id, lineno):
            return None
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            path=self.relpath,
            line=lineno,
            message=message,
        )


@runtime_checkable
class Rule(Protocol):
    """The protocol every lint pass implements.

    ``check`` runs once per module and yields findings local to it;
    ``finalize`` (optional) runs once after every module has been checked
    and yields findings that need the whole-tree view (e.g. a lock-order
    graph spanning files).  Rules are instantiated fresh per analyzer run,
    so accumulating state across ``check`` calls is safe.
    """

    rule_id: str
    severity: str
    description: str

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        """Yield the findings of this rule in ``module``."""
        ...


def dotted_name(node: ast.AST) -> Optional[str]:
    """The dotted name of a ``Name``/``Attribute`` chain, or ``None``.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``; anything that
    is not a pure attribute chain (calls, subscripts) returns ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class Baseline:
    """The committed set of grandfathered findings.

    Matching is a multiset subtraction on :meth:`Finding.baseline_key`: a
    baseline entry absorbs at most one live finding, so a *second* identical
    violation in the same file is still reported as new.
    """

    entries: List[Dict[str, str]] = field(default_factory=list)

    def subtract(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Split ``findings`` into (new, baselined)."""
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            key = (entry["rule"], entry["path"], entry["message"])
            budget[key] = budget.get(key, 0) + 1
        new: List[Finding] = []
        absorbed: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                absorbed.append(finding)
            else:
                new.append(finding)
        return new, absorbed

    @staticmethod
    def from_findings(findings: Sequence[Finding], reason: str = "grandfathered") -> "Baseline":
        """A baseline absorbing exactly the given findings."""
        return Baseline(
            entries=[
                {
                    "rule": finding.rule_id,
                    "path": finding.path,
                    "message": finding.message,
                    "reason": reason,
                }
                for finding in findings
            ]
        )

    def save(self, path: Path) -> Path:
        """Write the baseline file (sorted, one finding per entry)."""
        payload = {
            "version": 1,
            "findings": sorted(
                self.entries, key=lambda entry: (entry["path"], entry["rule"], entry["message"])
            ),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        return path


def load_baseline(path: Path) -> Baseline:
    """Read ``analysis-baseline.json``; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != 1:
        raise ValueError(f"Unsupported analysis baseline version {payload.get('version')!r}")
    entries = []
    for entry in payload.get("findings", []):
        entries.append(
            {
                "rule": str(entry["rule"]),
                "path": str(entry["path"]),
                "message": str(entry["message"]),
                "reason": str(entry.get("reason", "")),
            }
        )
    return Baseline(entries=entries)


class Analyzer:
    """Run a set of rules over a package tree (or individual sources)."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)

    # ------------------------------------------------------------------ #
    def run_modules(self, modules: Iterable[ModuleInfo]) -> List[Finding]:
        """Check every module with every rule, then finalize cross-module rules."""
        findings: List[Finding] = []
        for module in modules:
            for rule in self.rules:
                findings.extend(rule.check(module))
        for rule in self.rules:
            finalize = getattr(rule, "finalize", None)
            if finalize is not None:
                findings.extend(finalize())
        findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
        return findings

    def run_source(self, source: str, relpath: str = "module.py") -> List[Finding]:
        """Analyze one in-memory module (the docs/doctest entry point)."""
        return self.run_modules([ModuleInfo(relpath, source)])

    def run(self, root: Path) -> List[Finding]:
        """Walk ``root`` (a package directory) and analyze every ``.py`` file."""
        return self.run_modules(self._load_tree(Path(root)))

    # ------------------------------------------------------------------ #
    @staticmethod
    def _load_tree(root: Path) -> Iterator[ModuleInfo]:
        if not root.is_dir():
            raise FileNotFoundError(f"Analysis root '{root}' is not a directory")
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            relpath = path.relative_to(root).as_posix()
            yield ModuleInfo(relpath, path.read_text(encoding="utf-8"), path=path)
