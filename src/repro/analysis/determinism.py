"""Determinism lint passes: QRIO-D001 / QRIO-D002 / QRIO-D003.

These three rules enforce the reproducibility contract documented in
``docs/analysis.md``:

* **QRIO-D001** — all randomness flows through
  :func:`repro.utils.rng.ensure_generator`.  Module-level ``random.*`` and
  ``np.random.*`` calls draw from hidden global state (invisible to seed
  threading), and a stray ``default_rng()`` outside ``utils/rng`` creates an
  unseeded stream, so both break bit-identical scenario replay.
* **QRIO-D002** — deterministic layers never read wall clocks.  Simulated
  time lives on logical clocks (``JobRequest.arrival_time``, the cloud
  session's discrete-event clock); a ``time.time()``/``time.monotonic()``
  read inside the simulators, cloud, scenarios, plans, service or
  experiments packages makes replay depend on host speed.  Intentional
  sites (the trace recorder's capture clock, perf-timing harnesses) carry
  ``# qrio: allow[QRIO-D002]`` pragmas.
* **QRIO-D003** — cache/dedup keys and persisted values never use the
  builtin ``hash()`` (salted per process via ``PYTHONHASHSEED``) or ``id()``
  (an address, unstable across processes and allocations).  PR 6 fixed a
  real scenario-replay regression caused by exactly this in
  ``service/engines.py``; use :func:`repro.core.cache.structural_circuit_hash`
  or a blake2/CRC digest instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["UnseededRandomRule", "WallClockRule", "ProcessSaltedKeyRule"]


def _walk_with_parents(tree: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that also records ``node.parent`` links on the way."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]
        yield node


def _numpy_aliases(tree: ast.AST) -> Tuple[Set[str], Set[str], Set[str]]:
    """(numpy aliases, numpy.random aliases, names bound to default_rng)."""
    numpy_names: Set[str] = set()
    np_random_names: Set[str] = set()
    default_rng_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or alias.name)
                elif alias.name == "numpy.random":
                    np_random_names.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        np_random_names.add(alias.asname or alias.name)
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng":
                        default_rng_names.add(alias.asname or alias.name)
    return numpy_names, np_random_names, default_rng_names


def _imports_stdlib_random(tree: ast.AST) -> Set[str]:
    """Names the module binds to the stdlib ``random`` module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    names.add(alias.asname or alias.name)
    return names


class UnseededRandomRule:
    """QRIO-D001: RNG draws outside the seeded-generator funnel."""

    rule_id = "QRIO-D001"
    severity = "error"
    description = (
        "Global/unseeded RNG: random.* and np.random.* module-level calls, or "
        "default_rng() outside utils/rng — thread a seeded Generator through "
        "repro.utils.rng.ensure_generator instead"
    )

    #: The funnel module is the one legitimate home of ``default_rng``.
    exempt_paths = ("utils/rng.py",)

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if module.relpath in self.exempt_paths:
            return []
        stdlib_random = _imports_stdlib_random(module.tree)
        numpy_names, np_random_names, default_rng_names = _numpy_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            finding = self._classify(
                module, node, name, stdlib_random, numpy_names, np_random_names, default_rng_names
            )
            if finding is not None:
                findings.append(finding)
        return findings

    def _classify(
        self,
        module: ModuleInfo,
        node: ast.Call,
        name: str,
        stdlib_random: Iterable[str],
        numpy_names: Iterable[str],
        np_random_names: Iterable[str],
        default_rng_names: Iterable[str],
    ) -> Optional[Finding]:
        head, _, rest = name.partition(".")
        if head in stdlib_random and rest and "." not in rest:
            return module.finding(
                self, node, f"call to global-state '{name}()'; draw from a seeded np.random.Generator"
            )
        if name in default_rng_names or (not rest and head in default_rng_names):
            return module.finding(
                self, node, "direct default_rng() call; route seeds through utils.rng.ensure_generator"
            )
        if rest:
            tail = rest.split(".")
            if head in numpy_names and len(tail) == 2 and tail[0] == "random":
                if tail[1] == "default_rng":
                    return module.finding(
                        self,
                        node,
                        "direct np.random.default_rng() call; route seeds through utils.rng.ensure_generator",
                    )
                return module.finding(
                    self, node, f"call to numpy global-state '{name}()'; use a seeded Generator"
                )
            if head in np_random_names and len(tail) == 1:
                if tail[0] == "default_rng":
                    return module.finding(
                        self,
                        node,
                        "direct default_rng() call; route seeds through utils.rng.ensure_generator",
                    )
                return module.finding(
                    self, node, f"call to numpy global-state '{name}()'; use a seeded Generator"
                )
        return None


class WallClockRule:
    """QRIO-D002: wall-clock reads inside deterministic packages."""

    rule_id = "QRIO-D002"
    severity = "error"
    description = (
        "Wall-clock read inside a deterministic layer; simulated time must come "
        "from logical clocks (arrival_time, session clock), never the host clock"
    )

    #: Packages whose behaviour must be a pure function of seeds + inputs.
    scoped_packages = ("simulators/", "cloud/", "scenarios/", "plans/", "service/", "experiments/")
    #: Dotted suffixes that read the host clock.  Matched on both calls and
    #: bare references (``field(default_factory=time.monotonic)`` counts).
    clock_names = (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.relpath.startswith(self.scoped_packages):
            return []
        from_time_names = self._from_time_imports(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            name: Optional[str] = None
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
            elif isinstance(node, ast.Name) and node.id in from_time_names:
                name = from_time_names[node.id]
            if name is None:
                continue
            if any(name == clock or name.endswith("." + clock) for clock in self.clock_names):
                finding = module.finding(
                    self, node, f"wall-clock read '{name}' in deterministic package"
                )
                if finding is not None:
                    findings.append(finding)
        return findings

    @staticmethod
    def _from_time_imports(tree: ast.AST) -> dict:
        """Local names bound by ``from time import monotonic`` style imports."""
        bound = {}
        clock_attrs = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in clock_attrs:
                        bound[alias.asname or alias.name] = f"time.{alias.name}"
        return bound


class ProcessSaltedKeyRule:
    """QRIO-D003: builtin ``hash()``/``id()`` feeding keys or persisted state.

    The heuristic flags a ``hash(...)``/``id(...)`` call when the value
    observably flows toward persistence or keying:

    * assigned to a name matching ``key|digest|fingerprint|memo|probe|token|seed``;
    * passed (at any nesting depth) to ``get``/``put``/``setdefault``/``store``
      on a receiver whose name contains ``cache``/``memo``/``store``/``seen``/
      ``dedup``, or used as a subscript index of such a receiver;
    * passed to ``pickle.dumps``/``pickle.dump``/``json.dump``/``json.dumps``;
    * returned from a function whose name matches the key pattern above.

    ``hash(self)`` inside ``__hash__`` and identity *comparisons*
    (``id(a) == id(b)``) are idiomatic and stay silent.
    """

    rule_id = "QRIO-D003"
    severity = "error"
    description = (
        "builtin hash()/id() feeding a cache key, dedup key or persisted value; "
        "hash() is salted per process and id() is an address — use "
        "structural_circuit_hash / calibration_fingerprint / a digest instead"
    )

    _KEYISH = ("key", "digest", "fingerprint", "memo", "probe", "token", "seed")
    _STOREISH = ("cache", "memo", "store", "seen", "dedup", "index", "registry")
    _STORE_METHODS = {"get", "put", "setdefault", "store", "add", "insert", "register"}
    _PICKLERS = {"pickle.dumps", "pickle.dump", "json.dump", "json.dumps", "marshal.dumps"}

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in _walk_with_parents(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Name) or node.func.id not in ("hash", "id"):
                continue
            builtin = node.func.id
            if self._inside_dunder_hash(node):
                continue
            sink = self._persistence_sink(node)
            if sink is None:
                continue
            finding = module.finding(
                self, node, f"builtin {builtin}() flows into {sink}; use a process-stable digest"
            )
            if finding is not None:
                findings.append(finding)
        return findings

    # ------------------------------------------------------------------ #
    @classmethod
    def _inside_dunder_hash(cls, node: ast.AST) -> bool:
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, ast.FunctionDef) and current.name == "__hash__":
                return True
            current = getattr(current, "parent", None)
        return False

    @classmethod
    def _persistence_sink(cls, node: ast.AST) -> Optional[str]:
        """Name of the key/persistence sink this call flows into, if any."""
        current = node
        parent = getattr(node, "parent", None)
        while parent is not None:
            if isinstance(parent, ast.Compare):
                return None  # identity comparison, not a key
            if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = parent.targets if isinstance(parent, ast.Assign) else [parent.target]
                for target in targets:
                    label = cls._target_label(target)
                    if label is not None:
                        return f"assignment to '{label}'"
                return None
            if isinstance(parent, ast.Subscript) and parent.slice is current:
                receiver = dotted_name(parent.value) or ""
                if cls._matches(receiver, cls._STOREISH):
                    return f"subscript key of '{receiver}'"
            if isinstance(parent, ast.Call) and current in parent.args:
                callee = dotted_name(parent.func)
                if callee is not None:
                    if callee in cls._PICKLERS:
                        return f"'{callee}' argument"
                    head, _, method = callee.rpartition(".")
                    if method in cls._STORE_METHODS and cls._matches(head, cls._STOREISH):
                        return f"'{callee}()' argument"
                    if cls._matches(callee, cls._KEYISH):
                        return f"'{callee}()' argument"
            if isinstance(parent, ast.Return):
                function = cls._enclosing_function(parent)
                if function is not None and cls._matches(function.name, cls._KEYISH):
                    return f"return value of '{function.name}'"
                return None
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)):
                return None
            current, parent = parent, getattr(parent, "parent", None)
        return None

    @classmethod
    def _target_label(cls, target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                label = cls._target_label(element)
                if label is not None:
                    return label
            return None
        name = dotted_name(target)
        if isinstance(target, ast.Subscript):
            name = dotted_name(target.value)
            if name is not None and cls._matches(name, cls._STOREISH):
                return name
            return None
        if name is not None and cls._matches(name, cls._KEYISH):
            return name
        return None

    @staticmethod
    def _matches(name: str, needles: Tuple[str, ...]) -> bool:
        lowered = name.lower()
        return any(needle in lowered for needle in needles)

    @staticmethod
    def _enclosing_function(node: ast.AST) -> Optional[ast.FunctionDef]:
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = getattr(current, "parent", None)
        return None
