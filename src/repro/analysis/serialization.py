"""Serialization lint pass: QRIO-S001.

The process-shard roadmap (ROADMAP item 1) ships :class:`repro.plans.ExecutionPlan`
and :class:`repro.scenarios.Trace` objects across process boundaries, and the
service dedups batches on frozen :class:`repro.service.JobSpec` keys.  That
only works while those dataclasses stay

* **frozen** (hashable, safe to share across threads without copying), and
* **picklable by construction** (no lock, lambda, generator, thread or
  module-valued fields).

QRIO-S001 pins both properties structurally: the configured classes must be
``@dataclass(frozen=True)`` and no field annotation or default may reference
a threading primitive, ``Callable``/``lambda``, or an ``Iterator``/
``Generator`` type.  The executable twin of this rule is the spawned-
subprocess pickle round-trip test in ``tests/analysis/``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["FrozenPicklableRule", "DEFAULT_PICKLE_CONTRACT"]

#: relpath -> class names that must stay frozen + picklable there.
DEFAULT_PICKLE_CONTRACT: Dict[str, Tuple[str, ...]] = {
    "plans/plan.py": ("ExecutionPlan",),
    "scenarios/trace.py": ("Trace",),
    "scenarios/arrivals.py": ("JobRequest",),
    "service/api.py": ("JobRequirements", "JobSpec", "JobEvent", "JobStatus", "ServiceResult"),
    "tenancy/api.py": ("Tenant",),
    "tenancy/sharding.py": ("EngineSpec", "ShardRequest", "ShardJob", "ShardOutcome"),
}

#: Type names that make a field unpicklable (or mutable shared state).
_FORBIDDEN_TYPE_NAMES = (
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
    "Thread",
    "Callable",
    "Iterator",
    "Generator",
    "Coroutine",
)


class FrozenPicklableRule:
    """QRIO-S001: shard-crossing dataclasses stay frozen and picklable."""

    rule_id = "QRIO-S001"
    severity = "error"
    description = (
        "Shard-crossing dataclasses (ExecutionPlan, Trace, JobSpec and friends) "
        "must be @dataclass(frozen=True) with no lock/lambda/generator-valued "
        "fields — the picklability precondition for process shards"
    )

    def __init__(self, contract: Optional[Dict[str, Tuple[str, ...]]] = None) -> None:
        self.contract = dict(DEFAULT_PICKLE_CONTRACT if contract is None else contract)

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        expected = self.contract.get(module.relpath)
        if not expected:
            return []
        findings: List[Finding] = []
        found: Dict[str, ast.ClassDef] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in expected:
                found[node.name] = node
        for name in expected:
            node = found.get(name)
            if node is None:
                finding = module.finding(
                    self,
                    _loc(1),
                    f"contracted class '{name}' is missing from {module.relpath}; "
                    "update the QRIO-S001 contract if it moved",
                )
                if finding is not None:
                    findings.append(finding)
                continue
            findings.extend(self._check_class(module, node))
        return findings

    # ------------------------------------------------------------------ #
    def _check_class(self, module: ModuleInfo, node: ast.ClassDef) -> Iterable[Finding]:
        findings: List[Finding] = []
        if not self._is_frozen_dataclass(node):
            finding = module.finding(
                self, node, f"'{node.name}' must be declared @dataclass(frozen=True)"
            )
            if finding is not None:
                findings.append(finding)
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
                continue
            field_name = stmt.target.id
            bad_type = self._forbidden_annotation(stmt.annotation)
            if bad_type is not None:
                finding = module.finding(
                    self,
                    stmt,
                    f"field '{node.name}.{field_name}' is annotated with unpicklable "
                    f"type '{bad_type}'",
                )
                if finding is not None:
                    findings.append(finding)
            bad_default = self._forbidden_default(stmt.value)
            if bad_default is not None:
                finding = module.finding(
                    self,
                    stmt,
                    f"field '{node.name}.{field_name}' has unpicklable default {bad_default}",
                )
                if finding is not None:
                    findings.append(finding)
        return findings

    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                name = dotted_name(decorator.func)
                if name is not None and name.split(".")[-1] == "dataclass":
                    for keyword in decorator.keywords:
                        if keyword.arg == "frozen":
                            value = keyword.value
                            return isinstance(value, ast.Constant) and value.value is True
                    return False  # dataclass(...) without frozen=True
            else:
                name = dotted_name(decorator)
                if name is not None and name.split(".")[-1] == "dataclass":
                    return False  # bare @dataclass defaults to frozen=False
        return False

    @classmethod
    def _forbidden_annotation(cls, annotation: ast.AST) -> Optional[str]:
        for node in ast.walk(annotation):
            name = None
            if isinstance(node, (ast.Name, ast.Attribute)):
                name = dotted_name(node)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                name = node.value  # string annotation
            if name is None:
                continue
            tail = name.split(".")[-1].split("[")[0]
            if tail in _FORBIDDEN_TYPE_NAMES:
                return name
        return None

    @classmethod
    def _forbidden_default(cls, value: Optional[ast.AST]) -> Optional[str]:
        if value is None:
            return None
        if isinstance(value, ast.Lambda):
            return "a lambda (unpicklable when stored on the instance)"
        # ``field(default=lambda ...)`` stores the lambda itself; a
        # ``default_factory`` only *runs* at init time, so its result decides
        # picklability, not the factory — lambdas there are fine.
        if isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee is not None and callee.split(".")[-1] == "field":
                for keyword in value.keywords:
                    if keyword.arg == "default" and isinstance(keyword.value, ast.Lambda):
                        return "a lambda (unpicklable when stored on the instance)"
        return None


def _loc(lineno: int):
    class _Node:
        pass

    node = _Node()
    node.lineno = lineno
    return node
