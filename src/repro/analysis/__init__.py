"""Static invariant analysis + runtime race sanitizer for the QRIO repo.

``repro.analysis`` machine-checks the conventions the fleet's guarantees
rest on (deterministic replay, process-stable cache keys, lock discipline,
picklable shard-crossing dataclasses).  Two halves:

* **Static rules** (``repro-qrio analyze``): AST passes over ``src/repro``
  — see :mod:`repro.analysis.determinism` (QRIO-D001..D003),
  :mod:`repro.analysis.concurrency` (QRIO-C001..C002) and
  :mod:`repro.analysis.serialization` (QRIO-S001).  Intentional violations
  carry inline ``# qrio: allow[RULE-ID] reason`` pragmas; historical ones
  live in the committed ``analysis-baseline.json``.
* **Runtime sanitizer** (:mod:`repro.analysis.racetrace`): traced lock /
  condition drop-ins that detect lock-order inversions and unreleased holds
  while the real :class:`~repro.service.ServiceRuntime` suite runs
  (``QRIO_RACETRACE=1`` in CI).

The rule catalog, a worked "write a new rule in ≤40 lines" recipe and the
triage workflow are documented in ``docs/analysis.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.concurrency import BareSharedWriteRule, LockOrderRule
from repro.analysis.core import (
    Analyzer,
    Baseline,
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    load_baseline,
)
from repro.analysis.determinism import ProcessSaltedKeyRule, UnseededRandomRule, WallClockRule
from repro.analysis.racetrace import (
    LockOrderViolation,
    RaceMonitor,
    RaceTraceError,
    TracedCondition,
    TracedLock,
    traced_threading,
)
from repro.analysis.serialization import DEFAULT_PICKLE_CONTRACT, FrozenPicklableRule

__all__ = [
    "Analyzer",
    "Baseline",
    "BareSharedWriteRule",
    "DEFAULT_PICKLE_CONTRACT",
    "Finding",
    "FrozenPicklableRule",
    "LockOrderRule",
    "LockOrderViolation",
    "ModuleInfo",
    "ProcessSaltedKeyRule",
    "RaceMonitor",
    "RaceTraceError",
    "Rule",
    "TracedCondition",
    "TracedLock",
    "UnseededRandomRule",
    "WallClockRule",
    "analysis_root",
    "analyze_tree",
    "default_baseline_path",
    "default_rules",
    "dotted_name",
    "load_baseline",
    "traced_threading",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every built-in rule (stateful rules require this)."""
    return [
        UnseededRandomRule(),
        WallClockRule(),
        ProcessSaltedKeyRule(),
        BareSharedWriteRule(),
        LockOrderRule(),
        FrozenPicklableRule(),
    ]


def analysis_root() -> Path:
    """The package directory ``analyze`` scans by default (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def default_baseline_path() -> Path:
    """``analysis-baseline.json`` at the repo root (may not exist when installed)."""
    return analysis_root().parent.parent / "analysis-baseline.json"


def analyze_tree(
    root: Optional[Path] = None,
    *,
    baseline_path: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> Dict[str, object]:
    """Run the full analysis and apply the baseline.

    Returns a dict with ``new`` (non-baselined findings — the CI-failing
    set), ``baselined`` (absorbed by ``analysis-baseline.json``) and
    ``baseline_path``/``root`` provenance.  This is the one entry point the
    CLI, the benchmark preflight and the tests share.
    """
    scan_root = Path(root) if root is not None else analysis_root()
    chosen_baseline = Path(baseline_path) if baseline_path is not None else default_baseline_path()
    analyzer = Analyzer(list(rules) if rules is not None else default_rules())
    findings = analyzer.run(scan_root)
    new, baselined = load_baseline(chosen_baseline).subtract(findings)
    return {
        "root": str(scan_root),
        "baseline_path": str(chosen_baseline),
        "new": new,
        "baselined": baselined,
    }
