"""Concurrency lint passes: QRIO-C001 / QRIO-C002.

* **QRIO-C001** — an instance attribute written both *under* a lock
  (``with self._lock: self.x = ...``) and *bare* in the same class is a data
  race waiting for a scheduler to expose it: the guarded sites prove the
  author considered the attribute shared, so every unguarded write (outside
  ``__init__``/``__post_init__``, which happen before publication) is
  flagged.
* **QRIO-C002** — a static lock-order graph over the concurrency-bearing
  modules (``service/runtime.py``, ``service/handle.py``, ``core/cache.py``,
  ``cloud/simulation.py`` by default).  Each lexically nested acquisition
  ``with self._a: ... with self._b:`` adds the edge ``A -> B``; calling a
  *same-class* method while holding a lock adds edges to every lock that
  method acquires.  A cycle in the accumulated graph is a potential
  deadlock: two threads can acquire the participating locks in opposite
  orders.  The runtime twin of this rule is
  :mod:`repro.analysis.racetrace`, which checks the orders threads actually
  take.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["BareSharedWriteRule", "LockOrderRule"]

#: Attribute-name fragments that identify a lock-like guard object.
_LOCKISH = ("lock", "mutex", "cv", "cond", "guard", "sem")


def _is_lock_attr(name: str) -> bool:
    lowered = name.lower().lstrip("_")
    return any(lowered == frag or lowered.startswith(frag) or lowered.endswith(frag) for frag in _LOCKISH)


def _with_lock_names(node: ast.With) -> List[str]:
    """Names of ``self.<lock>`` context managers acquired by a ``with``."""
    names = []
    for item in node.items:
        expr = item.context_expr
        # ``with self._lock:`` and ``with self._cv:`` both acquire; a call
        # form like ``with self._lock.acquire_timeout(...)`` is ignored.
        name = dotted_name(expr)
        if name is not None and name.startswith("self.") and _is_lock_attr(name.split(".", 1)[1]):
            names.append(name.split(".", 1)[1])
    return names


class _ClassScan:
    """Per-class write/acquisition facts the two rules share."""

    def __init__(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        #: attr -> list of (method, lineno, guarded-by locks or ()).
        self.writes: Dict[str, List[Tuple[str, int, Tuple[str, ...]]]] = defaultdict(list)
        #: (outer lock, inner lock) -> first site observed.
        self.nested: Dict[Tuple[str, str], Tuple[int, str]] = {}
        #: lock -> same-class methods called while holding it (with sites).
        self.calls_under_lock: Dict[str, List[Tuple[str, int]]] = defaultdict(list)
        #: method -> locks it acquires anywhere in its body.
        self.method_acquires: Dict[str, Set[str]] = defaultdict(set)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(item.name, item.body, held=())

    # ------------------------------------------------------------------ #
    def _scan_function(self, method: str, body: Sequence[ast.stmt], held: Tuple[str, ...]) -> None:
        for stmt in body:
            self._scan_stmt(method, stmt, held)

    def _scan_stmt(self, method: str, stmt: ast.stmt, held: Tuple[str, ...]) -> None:
        if isinstance(stmt, ast.With):
            acquired = _with_lock_names(stmt)
            for lock in acquired:
                self.method_acquires[method].add(lock)
                for outer in held:
                    if outer != lock:
                        self.nested.setdefault((outer, lock), (stmt.lineno, f"{self.name}.{method}"))
            self._scan_function(method, stmt.body, held + tuple(acquired))
            return
        # Record self-attribute writes with the current guard set.
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                for attr in self._self_attr_targets(target):
                    self.writes[attr].append((method, stmt.lineno, held))
        # Same-class method calls made while holding a lock.
        if held:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    callee = dotted_name(node.func)
                    if callee is not None and callee.startswith("self."):
                        callee_method = callee.split(".", 1)[1]
                        if "." not in callee_method:
                            for lock in held:
                                self.calls_under_lock[lock].append((callee_method, node.lineno))
        for child_body in self._nested_bodies(stmt):
            self._scan_function(method, child_body, held)

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> Iterable[Sequence[ast.stmt]]:
        for field_name in ("body", "orelse", "finalbody"):
            body = getattr(stmt, field_name, None)
            if body and not isinstance(stmt, ast.With):
                yield body
        for handler in getattr(stmt, "handlers", ()):
            yield handler.body

    @staticmethod
    def _self_attr_targets(target: ast.AST) -> Iterable[str]:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                yield from _ClassScan._self_attr_targets(element)
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield target.attr


def _scan_classes(module: ModuleInfo) -> Iterable[_ClassScan]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            yield _ClassScan(module, node)


class BareSharedWriteRule:
    """QRIO-C001: attribute written both under ``self.<lock>`` and bare."""

    rule_id = "QRIO-C001"
    severity = "error"
    description = (
        "Instance attribute written both under a lock and without one in the "
        "same class — every write to a lock-guarded attribute must hold the lock"
    )

    #: Methods that run before the object is visible to other threads.
    construction_methods = ("__init__", "__post_init__", "__new__")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for scan in _scan_classes(module):
            for attr, sites in scan.writes.items():
                if _is_lock_attr(attr):
                    continue  # assigning the lock object itself
                guarded = [site for site in sites if site[2]]
                if not guarded:
                    continue
                for method, lineno, held in sites:
                    if held or method in self.construction_methods:
                        continue
                    locks = sorted({lock for _, _, held_locks in guarded for lock in held_locks})
                    finding = module.finding(
                        self,
                        _Loc(lineno),
                        f"'{scan.name}.{attr}' is written under lock(s) {locks} elsewhere "
                        f"but bare in '{method}'",
                    )
                    if finding is not None:
                        findings.append(finding)
        return findings


class _Loc:
    """Minimal node stand-in carrying just a line number."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno


class LockOrderRule:
    """QRIO-C002: acquisition-order cycles in the static lock graph."""

    rule_id = "QRIO-C002"
    severity = "error"
    description = (
        "Lock-order cycle: these locks are acquired in opposite orders on "
        "different code paths, which can deadlock under concurrent dispatch"
    )

    #: Modules whose lock graphs are stitched together.  ``None`` scans every
    #: module the analyzer feeds in (the unit-test configuration).
    default_modules = (
        "service/runtime.py",
        "service/handle.py",
        "service/service.py",
        "service/engines.py",
        "core/cache.py",
        "cloud/simulation.py",
        "scenarios/trace.py",
    )

    def __init__(self, modules: Optional[Sequence[str]] = None) -> None:
        self.modules = tuple(modules) if modules is not None else self.default_modules
        self._edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        self._suppressed: Set[Tuple[str, str]] = set()

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if self.modules and module.relpath not in self.modules:
            return []
        for scan in _scan_classes(module):
            for (outer, inner), (lineno, where) in scan.nested.items():
                self._add_edge(module, scan, outer, inner, lineno, where)
            # One level of intra-class flow: holding L and calling a method
            # that acquires M orders L before M.
            for lock, calls in scan.calls_under_lock.items():
                for callee, lineno in calls:
                    for inner in scan.method_acquires.get(callee, ()):
                        if inner != lock:
                            self._add_edge(
                                module, scan, lock, inner, lineno, f"{scan.name}.{callee}()"
                            )
        return []

    def _add_edge(
        self, module: ModuleInfo, scan: _ClassScan, outer: str, inner: str, lineno: int, where: str
    ) -> None:
        qualified = (f"{scan.name}.{outer}", f"{scan.name}.{inner}")
        if module.allows(self.rule_id, lineno):
            self._suppressed.add(qualified)
            return
        self._edges.setdefault(qualified, (module.relpath, lineno, where))

    def finalize(self) -> Iterable[Finding]:
        graph: Dict[str, Set[str]] = defaultdict(set)
        for outer, inner in self._edges:
            graph[outer].add(inner)
        findings: List[Finding] = []
        reported: Set[Tuple[str, str]] = set()
        for (outer, inner), (path, lineno, where) in sorted(self._edges.items()):
            if (outer, inner) in reported or (inner, outer) in reported:
                continue
            if self._reaches(graph, inner, outer):
                reported.add((outer, inner))
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        severity=self.severity,
                        path=path,
                        line=lineno,
                        message=(
                            f"acquisition-order cycle: '{outer}' is taken before '{inner}' at "
                            f"{where}, but '{inner}' also precedes '{outer}' on another path"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _reaches(graph: Dict[str, Set[str]], start: str, goal: str) -> bool:
        stack, seen = [start], set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False
