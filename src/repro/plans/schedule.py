"""Cross-job schedule merging: one sign-matrix evolution for N Clifford plans.

The batched stabilizer engine (PR 1) vectorises *shots* within one circuit:
a shared ``(2n, n)`` structural tableau plus a ``(shots, 2n)`` sign matrix.
This module extends the batch axis to ``(jobs x shots)``: the precompiled
tableau programs of N structurally *different* Clifford plans are aligned
into one merged gate schedule, identity-padded per job to a common width and
a common position count, and evolved as stacked ``(jobs, 2n, n)`` /
``(jobs, shots, 2n)`` arrays — one NumPy call per schedule position per
device per scheduling tick instead of one program walk per job.

Why identity padding is bit-transparent
---------------------------------------
A job with ``n_j < n_max`` qubits embeds into the padded tableau with its
destabilizer rows at the same indices and its stabilizer rows shifted from
``n_j + i`` to ``n_max + i``.  Every gate touches only columns ``q < n_j``,
where the padding rows (whose single set bit sits at column ``i >= n_j``)
are identically zero — so padding rows never enter a sign mask, a collapse
row set or a ``g``-sum, and the extra all-zero columns of the real rows
contribute nothing either.  Positions past the end of a shorter job's
schedule apply no operation at all.  Hence per-job outcomes, sign algebra
*and RNG draw counts* match the solo ``_run_batched`` execution exactly:
merged execution under per-job seeds is bit-identical to solo execution.

The merged artifact
-------------------
:func:`merge_programs` produces a :class:`MergedExecutionProgram` — a frozen,
picklable plain-data bundle (QRIO-S001 contract) whose lanes are sorted by a
content digest so the same multiset of member programs always builds the
same artifact.  The fleet-wide :class:`~repro.core.cache.MergedProgramCache`
memoizes it across scheduling ticks; the derived per-position index arrays
(the *kernel*) are memoized process-locally here, keyed by the program's
content digest.

:func:`execute_merged_program` then runs the merged schedule with one
independent RNG and noise model per lane, drawing each job's random numbers
in exactly the order the solo engine would.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import LRUCache
from repro.simulators.batched_stabilizer import _counts_from_bits, _phase_exponents
from repro.simulators.noise import NoiseModel
from repro.simulators.noisy import _PAULI_LABELS, _TWO_QUBIT_PAULIS
from repro.simulators.stabilizer import _CLIFFORD_DECOMPOSITIONS, TableauStep
from repro.utils.exceptions import StabilizerError
from repro.utils.rng import SeedLike, ensure_generator

__all__ = [
    "MergedJobLane",
    "MergedExecutionProgram",
    "program_digest",
    "compile_lane",
    "merge_programs",
    "execute_merged_program",
]


# --------------------------------------------------------------------------- #
# Content digests
# --------------------------------------------------------------------------- #
def _digest_parts(parts) -> str:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def program_digest(
    program: Sequence[TableauStep], num_qubits: int, num_clbits: int
) -> str:
    """Content digest of one member's tableau program + register widths.

    Equal digests imply equal flattened lanes (flattening is a pure function
    of the program), so this is the key under which merged programs are
    cached *without* paying the flattening walk on a warm tick.
    """

    def parts():
        yield f"n{num_qubits}c{num_clbits}"
        for step in program:
            qubits = ",".join(str(q) for q in step.qubits)
            primitives = ",".join(step.primitives)
            yield f"{step.kind}|{qubits}|{primitives}|{step.clbit}"

    return _digest_parts(parts())


# --------------------------------------------------------------------------- #
# Frozen merged artifact
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MergedJobLane:
    """One member job's micro-op stream inside a merged schedule.

    ``ops`` is the flattened form of the member's tableau program: every
    gate step is decomposed into its ``h``/``s``/``cx`` primitives (one
    position each) followed by one ``noise`` marker carrying the gate's
    operand qubits, and measure/reset steps occupy one position each.  The
    marker is unconditional — whether an error is actually *drawn* depends
    on the runtime noise model, exactly as in the solo engine — which keeps
    the lane (and the whole merged program) noise-model-independent and
    therefore cacheable across calibration epochs.
    """

    #: Flattened micro-ops: ``("h", q)``, ``("s", q)``, ``("cx", c, t)``,
    #: ``("noise", qubits)``, ``("measure", q, clbit)``, ``("reset", q)``.
    ops: Tuple[Tuple, ...]
    #: The member circuit's qubit count (before padding to the merge width).
    num_qubits: int
    #: The member circuit's classical register width.
    num_clbits: int
    #: Content digest (:func:`program_digest`) of the source program.
    digest: str


@dataclass(frozen=True)
class MergedExecutionProgram:
    """Frozen, picklable merged schedule of N member tableau programs.

    Lanes are sorted by digest, so the same *multiset* of member programs
    always produces the same artifact — callers map their requests onto
    lanes by stable-sorting the request digests the same way.  Plain data
    only (QRIO-S001): safe to pickle into spawned shard processes and to
    share through the fleet-wide merged-program cache.
    """

    #: Content digest over the ordered lane digests (the cache identity).
    merge_key: str
    #: Padded tableau width: ``max(lane.num_qubits)`` over the lanes.
    num_qubits: int
    #: Schedule length: ``max(len(lane.ops))`` over the lanes.
    num_positions: int
    #: Member lanes, sorted by :attr:`MergedJobLane.digest`.
    lanes: Tuple[MergedJobLane, ...]


def compile_lane(
    program: Sequence[TableauStep], num_qubits: int, num_clbits: int
) -> MergedJobLane:
    """Flatten one tableau program into a merge-alignable micro-op lane."""
    if num_qubits <= 0:
        raise StabilizerError("A merged lane needs at least one qubit")
    ops: List[Tuple] = []
    for step in program:
        if step.kind == "measure":
            ops.append(("measure", step.qubits[0], step.clbit))
        elif step.kind == "reset":
            ops.append(("reset", step.qubits[0]))
        else:
            for name in step.primitives:
                for primitive, operand_indices in _CLIFFORD_DECOMPOSITIONS[name]:
                    operands = tuple(step.qubits[i] for i in operand_indices)
                    ops.append((primitive,) + operands)
            ops.append(("noise", tuple(step.qubits)))
    return MergedJobLane(
        ops=tuple(ops),
        num_qubits=num_qubits,
        num_clbits=num_clbits,
        digest=program_digest(program, num_qubits, num_clbits),
    )


def merge_programs(
    members: Sequence[Tuple[Sequence[TableauStep], int, int]]
) -> MergedExecutionProgram:
    """Align N ``(program, num_qubits, num_clbits)`` members into one schedule."""
    if not members:
        raise StabilizerError("merge_programs needs at least one member program")
    lanes = sorted(
        (compile_lane(program, num_qubits, num_clbits) for program, num_qubits, num_clbits in members),
        key=lambda lane: lane.digest,
    )
    return MergedExecutionProgram(
        merge_key=_digest_parts(lane.digest for lane in lanes),
        num_qubits=max(lane.num_qubits for lane in lanes),
        num_positions=max((len(lane.ops) for lane in lanes), default=0),
        lanes=tuple(lanes),
    )


# --------------------------------------------------------------------------- #
# Runtime kernel: per-position grouped index arrays
# --------------------------------------------------------------------------- #
@dataclass
class _Position:
    """Op groups of one schedule position (index arrays over the lane axis)."""

    h: Optional[Tuple[np.ndarray, np.ndarray]] = None
    s: Optional[Tuple[np.ndarray, np.ndarray]] = None
    cx: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
    noise: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    measure: Tuple[Tuple[int, int, int], ...] = ()
    reset: Tuple[Tuple[int, int], ...] = ()


def _build_kernel(merged: MergedExecutionProgram) -> List[_Position]:
    positions: List[_Position] = []
    for index in range(merged.num_positions):
        h_j: List[int] = []
        h_q: List[int] = []
        s_j: List[int] = []
        s_q: List[int] = []
        cx_j: List[int] = []
        cx_c: List[int] = []
        cx_t: List[int] = []
        noise: List[Tuple[int, Tuple[int, ...]]] = []
        measure: List[Tuple[int, int, int]] = []
        reset: List[Tuple[int, int]] = []
        for lane_index, lane in enumerate(merged.lanes):
            if index >= len(lane.ops):
                continue
            op = lane.ops[index]
            kind = op[0]
            if kind == "h":
                h_j.append(lane_index)
                h_q.append(op[1])
            elif kind == "s":
                s_j.append(lane_index)
                s_q.append(op[1])
            elif kind == "cx":
                cx_j.append(lane_index)
                cx_c.append(op[1])
                cx_t.append(op[2])
            elif kind == "noise":
                noise.append((lane_index, op[1]))
            elif kind == "measure":
                width = max(lane.num_clbits, 1)
                measure.append((lane_index, op[1], width - 1 - op[2]))
            else:
                reset.append((lane_index, op[1]))
        positions.append(
            _Position(
                h=(np.asarray(h_j, dtype=np.intp), np.asarray(h_q, dtype=np.intp)) if h_j else None,
                s=(np.asarray(s_j, dtype=np.intp), np.asarray(s_q, dtype=np.intp)) if s_j else None,
                cx=(
                    np.asarray(cx_j, dtype=np.intp),
                    np.asarray(cx_c, dtype=np.intp),
                    np.asarray(cx_t, dtype=np.intp),
                )
                if cx_j
                else None,
                noise=tuple(noise),
                measure=tuple(measure),
                reset=tuple(reset),
            )
        )
    return positions


#: Kernels derived from a merged program, memoized by its content digest
#: (merge_key) — process-local, rebuilt cheaply after unpickling elsewhere.
_KERNEL_CACHE = LRUCache(maxsize=64)


def _kernel_for(merged: MergedExecutionProgram) -> List[_Position]:
    kernel = _KERNEL_CACHE.get(merged.merge_key)
    if kernel is None:
        kernel = _build_kernel(merged)
        _KERNEL_CACHE.put(merged.merge_key, kernel)
    return kernel


# --------------------------------------------------------------------------- #
# Merged execution
# --------------------------------------------------------------------------- #
#: Pauli-component row index of the stacked per-operand flip tables:
#: 0 = identity, 1 = "x" (flips by the Z column), 2 = "y", 3 = "z".
_COMPONENT_INDEX = {None: 0, "x": 1, "y": 2, "z": 3}
_PAIR_A = np.asarray([_COMPONENT_INDEX[a] for a, _ in _TWO_QUBIT_PAULIS], dtype=np.intp)
_PAIR_B = np.asarray([_COMPONENT_INDEX[b] for _, b in _TWO_QUBIT_PAULIS], dtype=np.intp)


def _measure_lane(
    x: np.ndarray,
    z: np.ndarray,
    r: np.ndarray,
    n: int,
    qubit: int,
    rng: np.random.Generator,
    shots: int,
) -> np.ndarray:
    """One lane's measurement, cloned from the solo engine's ``measure``.

    Identical algebra and identical RNG draws (one ``integers(0, 2)`` batch
    on the random branch, nothing on the deterministic branch); the only
    difference is that the solo engine's per-row Python scan for the rows to
    fix is a vectorised ``nonzero`` here — same rows, same ascending order.
    """
    x_col = x[:, qubit]
    stabilizer_rows = np.nonzero(x_col[n:])[0]
    if stabilizer_rows.size > 0:
        # Random outcome: same collapse structure for every shot, fresh
        # random bits per shot.
        p = int(stabilizer_rows[0]) + n
        involved_rows = np.nonzero(x_col)[0]
        rows_to_fix = involved_rows[involved_rows != p]
        if rows_to_fix.size:
            exponents = _phase_exponents(x[p], z[p], x[rows_to_fix], z[rows_to_fix])
            phase_bits = (exponents == 2).astype(np.uint8)
            r[:, rows_to_fix] ^= r[:, p : p + 1] ^ phase_bits[None, :]
            x[rows_to_fix] ^= x[p][None, :]
            z[rows_to_fix] ^= z[p][None, :]
        x[p - n] = x[p]
        z[p - n] = z[p]
        r[:, p - n] = r[:, p]
        x[p] = 0
        z[p] = 0
        z[p, qubit] = 1
        outcomes = rng.integers(0, 2, size=shots, dtype=np.uint8)
        r[:, p] = outcomes
        return outcomes
    # Deterministic outcome: shared phase chain, per-shot sign parity.
    involved = np.nonzero(x_col[:n])[0]
    if involved.size == 0:
        return np.zeros(shots, dtype=np.uint8)
    scratch_x = np.zeros(n, dtype=np.uint8)
    scratch_z = np.zeros(n, dtype=np.uint8)
    phase_bit = 0
    for row in involved:
        exponent = _phase_exponents(
            x[n + row], z[n + row], scratch_x[None, :], scratch_z[None, :]
        )[0]
        phase_bit ^= int(exponent == 2)
        scratch_x ^= x[n + row]
        scratch_z ^= z[n + row]
    sign_parity = r[:, n + involved].sum(axis=1, dtype=np.int64) & 1
    return (sign_parity ^ phase_bit).astype(np.uint8)


def _reset_lane(
    x: np.ndarray,
    z: np.ndarray,
    r: np.ndarray,
    n: int,
    qubit: int,
    rng: np.random.Generator,
    shots: int,
) -> None:
    """One lane's reset: measure, then flip the shots that read 1."""
    outcomes = _measure_lane(x, z, r, n, qubit, rng, shots)
    flipped = np.nonzero(outcomes)[0]
    if flipped.size:
        r[flipped] ^= z[:, qubit][None, :]


def _inject_noise(
    entries: Sequence[Tuple[int, Tuple[int, ...]]],
    x: np.ndarray,
    z: np.ndarray,
    r: np.ndarray,
    noise_models: Sequence[NoiseModel],
    rngs: Sequence[np.random.Generator],
    shots: int,
) -> None:
    """Draw each lane's Pauli errors solo-style, apply them sparsely.

    Per lane, the RNG draws replicate the solo engine exactly: no draw at
    all when the gate's error rate is zero, a single full-width uniform draw
    when it is positive, and the full-width channel-choice draw only when at
    least one shot errored.  The sign-flip *application* is then batched
    across every lane active at this position and touches only the
    ``~rate * shots`` shots that actually errored — XOR is commutative, so
    flipping a sparse shot subset in place is exact, unlike the solo
    engine's dense masked table gather over every shot.
    """
    one: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
    two: List[Tuple[int, Tuple[int, ...], np.ndarray, np.ndarray]] = []
    for lane_index, qubits in entries:
        error_rate = noise_models[lane_index].gate_error(qubits)
        if error_rate <= 0.0:
            continue
        error_mask = rngs[lane_index].random(shots) < error_rate
        if not error_mask.any():
            continue
        if len(qubits) == 1:
            choices = rngs[lane_index].integers(0, len(_PAULI_LABELS), size=shots)
            one.append((lane_index, qubits[0], error_mask, choices))
        else:
            choices = rngs[lane_index].integers(0, len(_TWO_QUBIT_PAULIS), size=shots)
            two.append((lane_index, qubits, error_mask, choices))
    if one:
        if len(one) == 1:
            lane_index, qubit, error_mask, choices = one[0]
            z_col = z[lane_index, :, qubit]
            x_col = x[lane_index, :, qubit]
            # Rows follow _PAULI_LABELS = ("x", "y", "z"): an X error flips
            # by the Z column, Y by Z^X, Z by X — the solo engine's tables.
            table = np.stack([z_col, z_col ^ x_col, x_col])
            errored = np.nonzero(error_mask)[0]
            r[lane_index, errored] ^= table[choices[errored]]
        else:
            j_arr = np.asarray([entry[0] for entry in one], dtype=np.intp)
            q_arr = np.asarray([entry[1] for entry in one], dtype=np.intp)
            z_col = z[j_arr, :, q_arr]
            x_col = x[j_arr, :, q_arr]
            tables = np.stack([z_col, z_col ^ x_col, x_col], axis=1)
            masks = np.stack([entry[2] for entry in one])
            choices = np.stack([entry[3] for entry in one])
            event, shot = np.nonzero(masks)
            r[j_arr[event], shot] ^= tables[event, choices[event, shot]]
    if two:
        j_arr = np.asarray([entry[0] for entry in two], dtype=np.intp)
        q0_arr = np.asarray([entry[1][0] for entry in two], dtype=np.intp)
        q1_arr = np.asarray([entry[1][1] for entry in two], dtype=np.intp)
        z0 = z[j_arr, :, q0_arr]
        x0 = x[j_arr, :, q0_arr]
        z1 = z[j_arr, :, q1_arr]
        x1 = x[j_arr, :, q1_arr]
        zero = np.zeros_like(z0)
        component_a = np.stack([zero, z0, z0 ^ x0, x0], axis=1)
        component_b = np.stack([zero, z1, z1 ^ x1, x1], axis=1)
        tables = component_a[:, _PAIR_A] ^ component_b[:, _PAIR_B]
        masks = np.stack([entry[2] for entry in two])
        choices = np.stack([entry[3] for entry in two])
        event, shot = np.nonzero(masks)
        r[j_arr[event], shot] ^= tables[event, choices[event, shot]]


def execute_merged_program(
    merged: MergedExecutionProgram,
    noise_models: Sequence[NoiseModel],
    seeds: Sequence[SeedLike],
    shots: int,
) -> List[Dict[str, int]]:
    """Run a merged schedule; returns one counts dictionary per lane.

    ``noise_models`` and ``seeds`` align with ``merged.lanes``.  Every lane
    draws from its own seeded generator in exactly the order the solo
    :class:`~repro.simulators.batched_stabilizer.BatchedStabilizerSimulator`
    would, so lane ``j``'s counts are bit-identical to running its member
    program alone under ``seeds[j]`` and ``noise_models[j]``.
    """
    if shots <= 0:
        raise StabilizerError("shots must be positive")
    num_lanes = len(merged.lanes)
    if len(noise_models) != num_lanes or len(seeds) != num_lanes:
        raise StabilizerError(
            f"Merged program has {num_lanes} lanes; got {len(noise_models)} noise "
            f"models and {len(seeds)} seeds"
        )
    n = merged.num_qubits
    x = np.zeros((num_lanes, 2 * n, n), dtype=np.uint8)
    z = np.zeros((num_lanes, 2 * n, n), dtype=np.uint8)
    r = np.zeros((num_lanes, shots, 2 * n), dtype=np.uint8)
    diagonal = np.arange(n)
    x[:, diagonal, diagonal] = 1
    z[:, n + diagonal, diagonal] = 1
    # Gate sign-flip masks are shot-independent and XOR commutes with the
    # sparse noise flips, so gates accumulate into a per-lane (2n,) pending
    # mask that is flushed into the (shots, 2n) sign matrix only when a
    # measure/reset is about to *read* it — O(2n) per gate instead of
    # O(shots * 2n), the structural speedup over the per-job solo walk.
    pending = np.zeros((num_lanes, 2 * n), dtype=np.uint8)
    rngs = [ensure_generator(seed) for seed in seeds]
    bits = [
        np.zeros((shots, max(lane.num_clbits, 1)), dtype=np.uint8) for lane in merged.lanes
    ]

    def flush(lane_index: int) -> None:
        lane_pending = pending[lane_index]
        if lane_pending.any():
            r[lane_index] ^= lane_pending[None, :]
            lane_pending[:] = 0

    for position in _kernel_for(merged):
        if position.h is not None:
            j_arr, q_arr = position.h
            x_col = x[j_arr, :, q_arr]
            z_col = z[j_arr, :, q_arr]
            pending[j_arr] ^= x_col & z_col
            x[j_arr, :, q_arr] = z_col
            z[j_arr, :, q_arr] = x_col
        if position.s is not None:
            j_arr, q_arr = position.s
            x_col = x[j_arr, :, q_arr]
            z_col = z[j_arr, :, q_arr]
            pending[j_arr] ^= x_col & z_col
            z[j_arr, :, q_arr] = z_col ^ x_col
        if position.cx is not None:
            j_arr, c_arr, t_arr = position.cx
            x_c = x[j_arr, :, c_arr]
            z_c = z[j_arr, :, c_arr]
            x_t = x[j_arr, :, t_arr]
            z_t = z[j_arr, :, t_arr]
            pending[j_arr] ^= x_c & z_t & (x_t ^ z_c ^ 1)
            x[j_arr, :, t_arr] = x_t ^ x_c
            z[j_arr, :, c_arr] = z_c ^ z_t
        if position.noise:
            _inject_noise(position.noise, x, z, r, noise_models, rngs, shots)
        for lane_index, qubit, bit_position in position.measure:
            flush(lane_index)
            outcomes = _measure_lane(
                x[lane_index], z[lane_index], r[lane_index], n, qubit, rngs[lane_index], shots
            )
            flip_probability = noise_models[lane_index].measurement_error(qubit)
            if flip_probability > 0.0:
                flips = rngs[lane_index].random(shots) < flip_probability
                outcomes = outcomes ^ flips.astype(np.uint8)
            bits[lane_index][:, bit_position] = outcomes
        for lane_index, qubit in position.reset:
            flush(lane_index)
            _reset_lane(
                x[lane_index], z[lane_index], r[lane_index], n, qubit, rngs[lane_index], shots
            )
    return [
        _fast_counts(lane_bits, max(lane.num_clbits, 1))
        for lane, lane_bits in zip(merged.lanes, bits)
    ]


def _fast_counts(bits: np.ndarray, width: int) -> Dict[str, int]:
    """Counts dictionary from an outcome-bit matrix via integer packing.

    Equivalent to the solo engine's per-row string construction (same keys,
    same values) but packs each row into one integer so the unique pass runs
    over a 1-D array and only the unique outcomes are formatted as strings.
    """
    if width > 62:  # packing would overflow int64; registers never get here
        return _counts_from_bits(bits)
    weights = np.left_shift(1, np.arange(width - 1, -1, -1, dtype=np.int64))
    packed = bits.astype(np.int64) @ weights
    values, counts = np.unique(packed, return_counts=True)
    return {
        format(int(value), f"0{width}b"): int(count)
        for value, count in zip(values, counts)
    }
