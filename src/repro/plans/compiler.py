"""The :class:`PlanCompiler`: run every compile stage once, bundle the result.

The compiler is deliberately dumb about *placement*: it does not rank
devices.  The engines hand it the device their cold MATCHING stage chose
(plus the :class:`~repro.transpiler.TranspileResult` their cold RUNNING stage
already produced, so nothing is compiled twice), and it derives the rest —
fusion, structural hashes, calibration fingerprint, the precompiled execution
dispatch and the sibling-cache references.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.core.cache import calibration_fingerprint, pattern_hash, structural_circuit_hash
from repro.plans.plan import ExecutionPlan
from repro.simulators.noisy import precompile_execution
from repro.transpiler.fusion import fuse_clifford_runs
from repro.transpiler.preset import TranspileResult, transpile
from repro.utils.rng import SeedLike

__all__ = ["PlanCompiler"]


class PlanCompiler:
    """Build :class:`~repro.plans.ExecutionPlan` bundles from cold submits."""

    def __init__(self) -> None:
        self._compiled = 0

    @property
    def plans_compiled(self) -> int:
        """How many plans this compiler instance has built (cold compiles)."""
        return self._compiled

    def compile(
        self,
        circuit: QuantumCircuit,
        backend: Backend,
        *,
        engine: str = "",
        shots: int = 1024,
        transpiled: Optional[TranspileResult] = None,
        transpile_seed: SeedLike = None,
        score: Optional[float] = None,
        num_feasible: int = 0,
        scores: Optional[Dict[str, float]] = None,
    ) -> ExecutionPlan:
        """Compile ``circuit`` for ``backend`` into a frozen plan.

        ``circuit`` is the logical circuit as submitted (measurements are
        appended if missing, exactly as the engines do).  ``transpiled``
        should be the cold path's own :class:`~repro.transpiler.TranspileResult`
        when available — passing it avoids transpiling twice and guarantees
        the plan replays the *identical* artifact; when omitted the compiler
        transpiles itself under ``transpile_seed``.
        """
        measured = circuit
        if not measured.has_measurements():
            measured = measured.copy()
            measured.measure_all()
        structural = structural_circuit_hash(measured)
        fused = fuse_clifford_runs(measured)
        fused_digest = structural_circuit_hash(fused)
        if transpiled is None:
            transpiled = transpile(measured, backend, seed=transpile_seed)
        execution = precompile_execution(transpiled.circuit)
        embedding_reference = None
        try:
            from repro.matching.interaction import interaction_graph

            graph = interaction_graph(measured)
            if graph.number_of_edges():
                embedding_reference = pattern_hash(graph)
        except Exception:  # noqa: BLE001 - references are best-effort metadata
            embedding_reference = None
        self._compiled += 1
        return ExecutionPlan(
            structural_hash=structural,
            device=backend.name,
            calibration_fingerprint=calibration_fingerprint(backend.properties),
            engine=engine,
            shots=shots,
            fused_circuit=fused,
            fused_hash=fused_digest,
            transpiled=transpiled,
            execution=execution,
            embedding_reference=embedding_reference,
            canary_reference=(fused_digest, shots),
            score=score,
            num_feasible=num_feasible,
            scores=dict(scores or {}),
        )
