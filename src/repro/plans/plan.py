"""The :class:`ExecutionPlan` artifact: everything a warm submit replays.

A plan is the frozen, picklable outcome of one cold submit's compile stages:

* the **fused** logical circuit (adjacent single-qubit Clifford runs
  collapsed by :func:`repro.transpiler.fusion.fuse_clifford_runs`) and its
  structural hash — the canonical workload identity;
* the **transpiled**, placement-bound circuit
  (:class:`~repro.transpiler.TranspileResult`, carrying layouts and SWAP
  counts) exactly as the cold path produced it;
* the **precompiled execution** dispatch
  (:class:`~repro.simulators.noisy.PrecompiledExecution`: compacted circuit,
  noise-restriction mapping, engine choice, and — on the stabilizer path —
  the compiled tableau program), so replay skips every per-gate walk;
* **references** into the sibling caches: the embedding pattern digest
  (:func:`repro.core.cache.pattern_hash` of the interaction graph) and the
  canary ideal-distribution key, so a warm submit finds its neighbours'
  cached artifacts without recomputing their keys;
* the cold placement verdict (device, score, per-device scores, feasible
  count) so MATCHING can be skipped wholesale on the native path.

Plans live in :class:`repro.core.cache.PlanCache`, keyed by
``(structural_hash, device, calibration_fingerprint, *engine context)``; a
calibration-drift cycle changes the fingerprint and the stale plan simply
stops matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.cache import PlanCache
from repro.simulators.noisy import PrecompiledExecution
from repro.transpiler.preset import TranspileResult

__all__ = ["ExecutionPlan"]


@dataclass(frozen=True)
class ExecutionPlan:
    """A frozen compile-once bundle replayed by warm submits.

    Built by :class:`~repro.plans.PlanCompiler`; every field is plain Python
    data (circuits, instructions, layouts, tableau steps), so plans pickle —
    the contract that keeps them shippable to the process-sharded runtime.
    """

    #: Structural hash of the logical (measured) circuit — the workload key.
    structural_hash: str
    #: Device the cold submit was placed on.
    device: str
    #: Calibration fingerprint of that device at compile time.
    calibration_fingerprint: str
    #: Engine that compiled the plan (``orchestrator``/``cluster``/``cloud``).
    engine: str
    #: Shot budget the plan was compiled for.
    shots: int
    #: The fused logical circuit (single-qubit Clifford runs collapsed).
    fused_circuit: QuantumCircuit
    #: Structural hash of :attr:`fused_circuit` (the canary/ideal-cache key
    #: component for the canonical form of this workload).
    fused_hash: str
    #: The transpiled, placement-bound circuit with its compile metadata.
    transpiled: TranspileResult
    #: Precomputed execution dispatch of :attr:`transpiled`'s circuit.
    execution: PrecompiledExecution
    #: Reference into the embedding cache: the interaction-graph pattern
    #: digest (``None`` when the circuit has no two-qubit structure).
    embedding_reference: Optional[str] = None
    #: Reference into the ideal-distribution cache: ``(fused_hash, shots)``.
    canary_reference: Optional[Tuple[str, int]] = None
    #: Cold placement score (``None`` when the scheduler reported none).
    score: Optional[float] = None
    #: Number of devices that survived the cold submit's filters.
    num_feasible: int = 0
    #: Per-device score breakdown of the cold MATCHING stage.
    scores: Dict[str, float] = field(default_factory=dict)

    def cache_key(self, *extra: Hashable) -> Tuple[Hashable, ...]:
        """The plan's :class:`~repro.core.cache.PlanCache` key.

        ``extra`` must carry the same engine context (engine name, base seed,
        requirements, shots) the storing engine used, or the key will not
        match — which is the point: plans never leak across configurations.
        """
        return PlanCache.key(
            self.structural_hash, self.device, self.calibration_fingerprint, *extra
        )

    def __post_init__(self) -> None:
        if self.shots <= 0:
            raise ValueError("shots must be positive")
