"""Compiled execution plans: the compile-once/execute-many submit path.

The paper's matching→canary→execute cycle re-derives every stage on every
submit.  This package separates *compile once* (fusion, transpilation,
execution-dispatch analysis, cache-key derivation — bundled into a frozen
:class:`ExecutionPlan` by the :class:`PlanCompiler`) from *execute many*
(replaying the bundle through the engines with fresh shots).  Plans live in
the fleet-wide :func:`repro.core.cache.plan_cache`, keyed by
``(structural_circuit_hash, device, calibration_fingerprint)`` plus engine
context, and are wired through every :mod:`repro.service` engine — a warm
submit skips transpile, match and lower entirely.  See ``docs/plans.md``.

:mod:`repro.plans.schedule` extends the idea across *jobs*: the tableau
programs of N structurally different plans are aligned into one merged gate
schedule (:class:`MergedExecutionProgram`) whose batched execution evolves a
single ``(jobs × shots)`` sign matrix per device per scheduling tick —
bit-identical, per job, to N solo runs under the same seeds.
"""

from repro.plans.compiler import PlanCompiler
from repro.plans.plan import ExecutionPlan
from repro.plans.schedule import (
    MergedExecutionProgram,
    MergedJobLane,
    compile_lane,
    execute_merged_program,
    merge_programs,
    program_digest,
)

__all__ = [
    "ExecutionPlan",
    "PlanCompiler",
    "MergedExecutionProgram",
    "MergedJobLane",
    "compile_lane",
    "execute_merged_program",
    "merge_programs",
    "program_digest",
]
