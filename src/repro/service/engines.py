"""The :class:`~repro.service.ExecutionEngine` adapters.

Each adapter maps the engine protocol's MATCHING/RUNNING split onto one of
the existing subsystems:

* :class:`OrchestratorEngine` — the paper's full Fig. 2 cycle through the
  :class:`~repro.core.QRIO` facade (visualizer form → meta server → master
  server → scheduler → device);
* :class:`ClusterEngine` — the bare k8s-style path: jobs go straight into
  the cluster registry and through the scheduling framework's filter/score
  plugins, skipping the visualizer and container machinery;
* :class:`CloudEngine` — the discrete-event cloud simulator via its
  incremental :class:`~repro.cloud.CloudSession`: each submission becomes an
  arrival routed by an allocation policy onto per-device FCFS queues;
* :class:`DeviceLatencyEngine` — a decorator adding wall-clock device
  occupancy around any inner engine's execution, so the concurrent runtime's
  multi-device overlap is observable in real time (the
  ``BENCH_concurrency.json`` workload).

All adapters consume the same :class:`~repro.service.JobSpec` and produce the
same :class:`~repro.service.Placement` / :class:`~repro.service.EngineResult`
pair, which is what lets :class:`~repro.service.QRIOService` treat them
interchangeably.

Concurrency: ``match()`` is always serialized by the service (dispatcher
thread or caller thread), so adapters may mutate shared matching state
freely.  ``run()`` is only called concurrently when an engine sets
``supports_concurrent_run = True`` — :class:`CloudEngine` does (its session
is internally locked), :class:`OrchestratorEngine` and :class:`ClusterEngine`
do not (their execution path mutates the shared cluster registry), and
:class:`DeviceLatencyEngine` does by construction (the inner engine's run is
re-serialized when it needs to be, only the latency overlaps).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Sequence

from repro.backends.backend import Backend
from repro.scenarios.arrivals import JobRequest
from repro.cloud.policies import AllocationPolicy, LeastLoadedPolicy
from repro.cloud.simulation import CloudSession, CloudSimulationConfig, CloudSimulationResult, CloudSimulator
from repro.cluster.job import DeviceConstraints, JobSpec as ClusterJobSpec, ResourceRequest
from repro.cluster.node import Node
from repro.cluster.registry import ClusterState
from repro.core.cache import (
    PlanCache,
    calibration_fingerprint,
    fleet_calibration_epoch,
    plan_cache,
    structural_circuit_hash,
)
from repro.core.meta_server import MetaServer
from repro.core.scheduler import QRIOScheduler
from repro.core.visualizer import MetaServerPayload, TopologyCanvas
from repro.plans import ExecutionPlan, PlanCompiler
from repro.policies.adapters import as_allocation_policy
from repro.policies.api import PlacementContext, PlacementPolicy
from repro.policies.registry import PolicyLike, resolve_policy
from repro.qasm.exporter import dump_qasm
from repro.service.api import EngineResult, ExecutionEngine, JobSpec, Placement
from repro.transpiler.preset import transpile
from repro.utils.exceptions import ServiceError
from repro.utils.rng import SeedLike, derive_seed


class _PolicyResolver:
    """Shared per-engine policy resolution: default + per-job overrides.

    Engines accept ``policy`` as a registry name or a
    :class:`~repro.policies.PlacementPolicy` instance, and every job may
    override it through ``JobRequirements.policy``.  Resolved string specs
    are cached per engine so stateful policies (round-robin cursors, RNG
    streams) keep their state across the jobs of one engine rather than
    being rebuilt per submission.
    """

    def __init__(self, default: Optional[PolicyLike], seed: SeedLike = None) -> None:
        self._default = default
        self._seed = seed
        self._resolved: dict = {}

    @property
    def default(self) -> Optional[PolicyLike]:
        """The engine-level default policy spec (``None`` = native path)."""
        return self._default

    def for_requirements(self, requirements) -> Optional[PlacementPolicy]:
        """The effective policy for one job, or ``None`` for the native path."""
        spec = requirements.policy if requirements.policy is not None else self._default
        if spec is None:
            return None
        if isinstance(spec, PlacementPolicy):
            return spec
        if spec not in self._resolved:
            self._resolved[spec] = resolve_policy(
                spec, seed=derive_seed(self._seed, "placement-policy", spec)
            )
        return self._resolved[spec]


class _PlanStore:
    """One engine's view over the fleet-wide execution-plan cache.

    The shared :func:`~repro.core.cache.plan_cache` holds the plans; this
    helper adds the two pieces an engine needs around it: the *placement
    memo* (a warm lookup must know which device the workload compiled for —
    the device is an output of MATCHING, not an input) and the engine
    context folded into every key (engine name, base seed, the frozen
    requirements and the shot budget), so plans never replay across engines,
    seeds or requirement sets that would have compiled differently.

    Plans only serve the engines' *native* scheduling paths.  Registry
    policies are load- and state-dependent by design (round-robin cursors,
    queue-aware scores), so policy-routed jobs always run the full
    filter → score → select pipeline and are never stored or replayed.
    """

    def __init__(self, engine_name: str, seed: SeedLike) -> None:
        self._engine = engine_name
        self._seed = seed
        self._device_memo: dict = {}
        self._lock = threading.Lock()
        self.compiler = PlanCompiler()

    def _context(self, spec: JobSpec) -> tuple:
        return (self._engine, self._seed, spec.requirements, spec.shots)

    def lookup(self, spec: JobSpec, backends: dict) -> Optional[ExecutionPlan]:
        """The warm plan for ``spec``, or ``None`` (recorded as a miss).

        A miss with a known placement memo means the device's calibration
        fingerprint moved since the plan was compiled; the stale entries for
        that device are eagerly invalidated before the cold path recompiles.
        """
        digest = structural_circuit_hash(spec.circuit)
        context = self._context(spec)
        with self._lock:
            device = self._device_memo.get((digest, context))
        backend = backends.get(device) if device is not None else None
        if backend is None:
            plan_cache().record_miss()
            return None
        fingerprint = calibration_fingerprint(backend.properties)
        plan = plan_cache().get(PlanCache.key(digest, device, fingerprint, *context))
        if plan is None:
            plan_cache().invalidate_device(device, keep_fingerprint=fingerprint)
        return plan

    def store(self, spec: JobSpec, plan: ExecutionPlan) -> None:
        """Publish a cold submit's plan and remember its placement."""
        digest = structural_circuit_hash(spec.circuit)
        context = self._context(spec)
        with self._lock:
            self._device_memo[(digest, context)] = plan.device
        plan_cache().put(
            PlanCache.key(digest, plan.device, plan.calibration_fingerprint, *context), plan
        )


def _prepare_plan_batch(candidates):
    """Merge warm-plan placements into one cross-job execution context.

    ``candidates`` are ``(plan, backend, seed, shots)`` tuples — jobs whose
    warm :class:`~repro.plans.ExecutionPlan` carries a stabilizer-engine
    precompiled dispatch.  With two or more of them the batch executes as one
    merged sign-matrix evolution (per-job seeds, bit-identical to solo runs)
    and the results ride back in a
    :class:`~repro.simulators.noisy.BatchExecutionContext`; with fewer there
    is nothing to merge and the caller's solo path proceeds untouched.
    """
    from repro.simulators.noisy import (
        BatchExecutionContext,
        ExecutionRequest,
        execute_many_with_noise,
    )

    if len(candidates) < 2:
        return None
    requests = [
        ExecutionRequest(
            circuit=plan.transpiled.circuit,
            noise_model=backend.noise_model(),
            shots=shots,
            seed=seed,
            precompiled=plan.execution,
            device=backend.name,
            calibration=calibration_fingerprint(backend.properties),
        )
        for plan, backend, seed, shots in candidates
    ]
    results = execute_many_with_noise(requests)
    context = BatchExecutionContext()
    for (plan, _backend, seed, shots), result in zip(candidates, results):
        context.add(plan.execution, seed, shots, result)
    return context


def _set_node_availability(cluster, device: str, available: bool) -> None:
    """Cordon/uncordon the node hosting ``device`` (scenario outage events)."""
    for node in cluster.nodes():
        if node.backend.name == device:
            if available:
                node.uncordon()
                cluster.events.record("NodeUncordoned", node.name, "scenario outage ended")
            else:
                node.cordon()
                cluster.events.record("NodeCordoned", node.name, "scenario outage")
            return
    raise ServiceError(f"Cannot change availability: unknown device '{device}'")


def _node_admits(node: Node, requirements) -> bool:
    """Cheap warm-path revalidation: the memoized node can take the job now."""
    return node.is_schedulable() and node.can_host(
        requirements.cpu_millicores, requirements.memory_mb
    )


def _placement_from_plan(
    cluster: ClusterState, spec: JobSpec, job_name: str, plan: ExecutionPlan
) -> Optional[Placement]:
    """Bind ``job_name`` straight from a warm plan, skipping the scheduler.

    Returns ``None`` when the plan's device is gone, cordoned or full — the
    caller then falls back to the cold MATCHING path (the plan stays cached;
    only this submission pays the full cycle).
    """
    node = next((n for n in cluster.nodes() if n.backend.name == plan.device), None)
    if node is None or not _node_admits(node, spec.requirements):
        return None
    cluster.bind(job_name, node.name, score=plan.score)
    cluster.events.record(
        "PlanScheduled", job_name, f"replayed cached execution plan on {plan.device}"
    )
    return Placement(
        job_name=job_name,
        spec=spec,
        device=plan.device,
        score=plan.score,
        num_feasible=plan.num_feasible,
        detail={"scores": dict(plan.scores), "plan": plan},
    )


def _schedule_with_policy(
    cluster: ClusterState,
    scheduler: QRIOScheduler,
    policy: PlacementPolicy,
    spec: JobSpec,
    job_name: str,
    fidelity_cache: dict,
) -> Placement:
    """One unified scheduling cycle over a cluster: filters, then the policy.

    The scheduler's requirement filters (qubit count, classical resources,
    device characteristics) still shortlist the nodes — user requirements
    bind under every engine — and the policy's filter → score → select
    pipeline then decides among the survivors.  The winning node is bound in
    the cluster exactly as the native path would, so the RUNNING stage is
    oblivious to how the decision was made.
    """
    job = cluster.job(job_name)
    report = scheduler.run_filters(job)
    nodes = {cluster.node(name).backend.name: cluster.node(name) for name in report.feasible}
    rejected = {
        cluster.node(name).backend.name: reason for name, reason in report.rejected.items()
    }
    requirements = spec.requirements
    fleet = [node.backend for node in nodes.values()]
    # Fidelity estimates are reused across jobs through the engine-lifetime
    # cache, keyed by circuit *structure* plus a fleet-calibration epoch, so
    # repeat submissions pay one estimate per device while recalibration
    # silently invalidates every stale entry.  The epoch is the stable digest
    # from core.cache — the builtin hash() is salted per process, which would
    # break any key that outlives a restart.
    epoch = fleet_calibration_epoch(fleet)
    ctx = PlacementContext(
        fleet=fleet,
        circuit=spec.circuit,
        job_name=job_name,
        workload_key=structural_circuit_hash(spec.circuit),
        strategy=requirements.strategy,
        fidelity_threshold=requirements.effective_fidelity_threshold,
        topology_edges=requirements.topology_edges,
        shots=spec.shots,
        required_qubits=requirements.qubits_for(spec.circuit),
        calibration_epoch=epoch,
        fidelity_cache=fidelity_cache,
        native={"job": job, "nodes": nodes},
    )
    decision = policy.decide(ctx, rejected=rejected)
    if decision.device is None:
        job.mark_unschedulable(f"no feasible device under policy '{decision.policy}'")
        cluster.events.record(
            "Unschedulable", job.name, f"0 feasible nodes under policy '{decision.policy}'"
        )
        return Placement(
            job_name=job_name,
            spec=spec,
            device=None,
            num_feasible=0,
            detail={"decision": decision},
        )
    cluster.bind(job.name, nodes[decision.device].name, score=decision.score)
    cluster.events.record(
        "PolicyScheduled",
        job.name,
        f"policy '{decision.policy}' selected {decision.device} (score {decision.score:.4f})",
    )
    return Placement(
        job_name=job_name,
        spec=spec,
        device=decision.device,
        score=decision.score,
        num_feasible=decision.num_feasible,
        detail={"scores": decision.scores, "decision": decision},
    )


class OrchestratorEngine(ExecutionEngine):
    """Run jobs through the full QRIO facade (the paper's one-at-a-time path)."""

    def __init__(
        self,
        qrio=None,
        *,
        cluster_name: str = "service-cluster",
        canary_shots: int = 512,
        policy: Optional[PolicyLike] = None,
        seed: SeedLike = None,
    ) -> None:
        """Wrap (or lazily build) a QRIO facade as an execution engine.

        Args:
            qrio: An existing facade to drive; ``None`` builds one on attach.
            cluster_name: Cluster name of a lazily-built facade.
            canary_shots: Clifford-canary shots of the meta server.
            policy: Default placement policy (registry name or
                :class:`~repro.policies.PlacementPolicy`) applied to jobs
                that do not set ``JobRequirements.policy``; ``None`` keeps
                the native meta-server ranking path.
            seed: Base seed for the facade and policy resolution.
        """
        self._qrio = qrio
        self._cluster_name = cluster_name
        self._canary_shots = canary_shots
        self._seed = seed
        self._policies = _PolicyResolver(policy, seed=seed)
        self._policy_fidelity_cache: dict = {}
        self._plans = _PlanStore("orchestrator", seed)

    @property
    def name(self) -> str:
        return "orchestrator"

    @property
    def qrio(self):
        """The wrapped facade (available after :meth:`attach`)."""
        if self._qrio is None:
            raise ServiceError("OrchestratorEngine is not attached to a fleet yet")
        return self._qrio

    def attach(self, fleet: Sequence[Backend]) -> None:
        if self._qrio is None:
            from repro.core.orchestrator import QRIO

            self._qrio = QRIO(
                cluster_name=self._cluster_name,
                canary_shots=self._canary_shots,
                seed=self._seed,
            )
        registered = {backend.name for backend in self._qrio.devices()}
        for backend in fleet:
            if backend.name not in registered:
                self._qrio.register_device(backend)

    def fleet(self):
        return self.qrio.devices()

    def set_device_available(self, device: str, available: bool) -> None:
        """Outage events cordon/uncordon the device's cluster node.

        Cordoned nodes drop out of ``schedulable_nodes()``, so the native
        scheduler, the policy filter path and warm-plan replay all stop
        placing onto the device until recovery.
        """
        super().set_device_available(device, available)
        _set_node_availability(self.qrio.cluster, device, available)

    def match(self, spec: JobSpec, job_name: str) -> Placement:
        requirements = spec.requirements
        form = (
            self.qrio.new_submission_form()
            .choose_circuit(spec.circuit)
            .set_job_details(
                job_name=job_name,
                image_name=spec.image_name or f"qrio/{job_name}",
                num_qubits=requirements.qubits_for(spec.circuit),
                cpu_millicores=requirements.cpu_millicores,
                memory_mb=requirements.memory_mb,
                shots=spec.shots,
            )
            .set_device_characteristics(
                max_avg_two_qubit_error=requirements.max_avg_two_qubit_error,
                max_avg_readout_error=requirements.max_avg_readout_error,
                min_avg_t1=requirements.min_avg_t1,
                min_avg_t2=requirements.min_avg_t2,
            )
        )
        if requirements.strategy == "topology":
            canvas = TopologyCanvas(requirements.qubits_for(spec.circuit))
            canvas.load_edges(list(requirements.topology_edges))
            form.request_topology(canvas)
        else:
            form.request_fidelity(requirements.effective_fidelity_threshold)
        self.qrio.submit_form(form)
        policy = self._policies.for_requirements(requirements)
        if policy is not None:
            return _schedule_with_policy(
                self.qrio.cluster,
                self.qrio.scheduler,
                policy,
                spec,
                job_name,
                self._policy_fidelity_cache,
            )
        # Warm path: a cached plan for (structure, device, calibration) binds
        # the job directly — no canary ranking, no meta-server cycle.
        plan = self._plans.lookup(spec, {b.name: b for b in self.qrio.devices()})
        if plan is not None:
            placement = _placement_from_plan(self.qrio.cluster, spec, job_name, plan)
            if placement is not None:
                return placement
        outcome = self.qrio.schedule_job(job_name)
        return Placement(
            job_name=job_name,
            spec=spec,
            device=outcome.device,
            score=outcome.score,
            num_feasible=outcome.num_filtered,
            detail={"scores": dict(outcome.scores)},
        )

    def run(self, placement: Placement) -> EngineResult:
        from repro.core.orchestrator import JobOutcome

        plan: Optional[ExecutionPlan] = placement.detail.get("plan")
        if plan is not None:
            # Warm path: replay the plan's transpiled circuit and precompiled
            # execution dispatch through the master server (parse and
            # transpile are skipped); shots are sampled fresh per job.
            result = self.qrio.master_server.execute_bound_job(placement.job_name, plan=plan)
            job = self.qrio.cluster.job(placement.job_name)
            outcome = JobOutcome(
                job=job,
                device=plan.device,
                score=job.score,
                result=result,
                scores=dict(placement.detail.get("scores", {})),
                num_filtered=placement.num_feasible,
            )
        else:
            outcome = self.qrio.run_job(placement.job_name)
            if outcome.result is None:
                raise ServiceError(f"Job '{placement.job_name}' produced no execution result")
            # run_job saw an already-bound job (match() scheduled it), so its
            # outcome carries no ranking data; graft the MATCHING stage's scores
            # back on to keep the legacy JobOutcome shape intact.
            outcome.scores = dict(placement.detail.get("scores", {}))
            outcome.num_filtered = placement.num_feasible
            self._store_plan(placement, outcome)
        return EngineResult(
            device=outcome.device,
            counts=dict(outcome.result.counts),
            shots=outcome.result.shots,
            score=outcome.score,
            detail={"outcome": outcome, "plan_replay": plan is not None},
        )

    def prepare_run_batch(self, placements: Sequence[Placement]):
        """Merge this tick's warm-plan stabilizer placements into one run."""
        candidates = []
        for placement in placements:
            plan: Optional[ExecutionPlan] = placement.detail.get("plan")
            if plan is None or plan.execution.engine != "stabilizer":
                continue
            job = self.qrio.cluster.job(placement.job_name)
            if job.node_name is None:
                continue
            node = self.qrio.cluster.node(job.node_name)
            candidates.append(
                (
                    plan,
                    node.backend,
                    self.qrio.master_server.execution_seed(placement.job_name, node.backend.name),
                    placement.spec.shots,
                )
            )
        return _prepare_plan_batch(candidates)

    def _store_plan(self, placement: Placement, outcome) -> None:
        """Publish a cold native-path submit as a reusable execution plan."""
        if "decision" in placement.detail or placement.device is None:
            return  # policy-routed or unplaced: nothing to replay
        compiled = getattr(outcome.job, "transpile_result", None)
        if compiled is None:
            return
        backend = next((b for b in self.qrio.devices() if b.name == placement.device), None)
        if backend is None:
            return
        plan = self._plans.compiler.compile(
            placement.spec.circuit,
            backend,
            engine=self.name,
            shots=placement.spec.shots,
            transpiled=compiled,
            score=outcome.score,
            num_feasible=placement.num_feasible,
            scores=dict(placement.detail.get("scores", {})),
        )
        self._plans.store(placement.spec, plan)


class ClusterEngine(ExecutionEngine):
    """Run jobs straight through the k8s-style scheduling framework.

    Compared with :class:`OrchestratorEngine` this skips the visualizer form
    and the container/image machinery: cluster-level job specs are built
    directly, the :class:`~repro.core.QRIOScheduler` (default QRIO filter
    chain + meta-server ranking, optionally extended with extra filter
    plugins) binds them, and the node executes the transpiled circuit.
    """

    def __init__(
        self,
        *,
        cluster_name: str = "service-cluster-engine",
        canary_shots: int = 512,
        extra_filters: Optional[Sequence] = None,
        policy: Optional[PolicyLike] = None,
        seed: SeedLike = None,
    ) -> None:
        """Build a standalone cluster-framework engine.

        Args:
            cluster_name: Name of the cluster registry built on attach.
            canary_shots: Clifford-canary shots of the meta server.
            extra_filters: Additional framework filter plugins appended to
                the default QRIO filter chain.
            policy: Default placement policy (registry name or
                :class:`~repro.policies.PlacementPolicy`) applied to jobs
                that do not set ``JobRequirements.policy``; ``None`` keeps
                the native filter/score-plugin path.
            seed: Base seed for the meta server, transpilation and policy
                resolution.
        """
        self._cluster_name = cluster_name
        self._canary_shots = canary_shots
        self._extra_filters = list(extra_filters) if extra_filters else None
        self._seed = seed
        self._cluster: Optional[ClusterState] = None
        self._meta: Optional[MetaServer] = None
        self._scheduler: Optional[QRIOScheduler] = None
        self._policies = _PolicyResolver(policy, seed=seed)
        self._policy_fidelity_cache: dict = {}
        self._plans = _PlanStore("cluster", seed)

    @property
    def name(self) -> str:
        return "cluster"

    @property
    def cluster(self) -> ClusterState:
        """The cluster registry (available after :meth:`attach`)."""
        if self._cluster is None:
            raise ServiceError("ClusterEngine is not attached to a fleet yet")
        return self._cluster

    def attach(self, fleet: Sequence[Backend]) -> None:
        self._cluster = ClusterState(name=self._cluster_name)
        self._meta = MetaServer(canary_shots=self._canary_shots, seed=derive_seed(self._seed, "service-meta"))
        for backend in fleet:
            self._cluster.register_backend(backend)
            self._meta.register_backend(backend)
        self._scheduler = QRIOScheduler(self._cluster, self._meta, extra_filters=self._extra_filters)

    def fleet(self) -> List[Backend]:
        return self.cluster.backends()

    def set_device_available(self, device: str, available: bool) -> None:
        """Outage events cordon/uncordon the device's cluster node."""
        super().set_device_available(device, available)
        _set_node_availability(self.cluster, device, available)

    def match(self, spec: JobSpec, job_name: str) -> Placement:
        requirements = spec.requirements
        circuit_qasm = dump_qasm(spec.circuit)
        cluster_spec = ClusterJobSpec(
            name=job_name,
            image=spec.image_name or f"service/{job_name}",
            circuit_qasm=circuit_qasm,
            resources=ResourceRequest(
                qubits=requirements.qubits_for(spec.circuit),
                cpu_millicores=requirements.cpu_millicores,
                memory_mb=requirements.memory_mb,
            ),
            constraints=DeviceConstraints(
                max_avg_two_qubit_error=requirements.max_avg_two_qubit_error,
                max_avg_readout_error=requirements.max_avg_readout_error,
                min_avg_t1=requirements.min_avg_t1,
                min_avg_t2=requirements.min_avg_t2,
            ),
            strategy=requirements.strategy,
            shots=spec.shots,
        )
        if requirements.strategy == "topology":
            canvas = TopologyCanvas(requirements.qubits_for(spec.circuit))
            canvas.load_edges(list(requirements.topology_edges))
            payload = MetaServerPayload(
                job_name=job_name,
                strategy="topology",
                topology_qasm=dump_qasm(canvas.to_topology_circuit(name=f"{job_name}_topology")),
            )
        else:
            payload = MetaServerPayload(
                job_name=job_name,
                strategy="fidelity",
                fidelity_threshold=requirements.effective_fidelity_threshold,
                circuit_qasm=circuit_qasm,
            )
        self._meta.upload_job_metadata(payload)
        job = self.cluster.submit_job(cluster_spec)
        policy = self._policies.for_requirements(requirements)
        if policy is not None:
            return _schedule_with_policy(
                self.cluster,
                self._scheduler,
                policy,
                spec,
                job_name,
                self._policy_fidelity_cache,
            )
        # Warm path: a cached plan binds the job directly, skipping the
        # filter chain and the meta-server canary ranking.
        plan = self._plans.lookup(spec, {b.name: b for b in self.cluster.backends()})
        if plan is not None:
            placement = _placement_from_plan(self.cluster, spec, job_name, plan)
            if placement is not None:
                return placement
        decision = self._scheduler.schedule(job)
        return Placement(
            job_name=job_name,
            spec=spec,
            device=None if decision.node_name is None else self.cluster.node(decision.node_name).backend.name,
            score=decision.score,
            num_feasible=decision.filter_report.num_feasible,
            detail={"scores": dict(decision.scores)},
        )

    def run(self, placement: Placement) -> EngineResult:
        job = self.cluster.job(placement.job_name)
        node = self.cluster.node(job.node_name)
        job.mark_running()
        plan: Optional[ExecutionPlan] = placement.detail.get("plan")
        try:
            if plan is not None:
                # Warm path: the plan carries the transpiled circuit and the
                # precompiled execution dispatch; only fresh shots are drawn.
                compiled = plan.transpiled
                result = node.execute(
                    compiled.circuit,
                    shots=placement.spec.shots,
                    seed=derive_seed(self._seed, "service-execute", placement.job_name, node.backend.name),
                    precompiled=plan.execution,
                )
            else:
                circuit = placement.spec.circuit
                if not circuit.has_measurements():
                    circuit = circuit.copy()
                    circuit.measure_all()
                compiled = transpile(
                    circuit,
                    node.backend,
                    seed=derive_seed(self._seed, "service-transpile", placement.job_name, node.backend.name),
                )
                result = node.execute(
                    compiled.circuit,
                    shots=placement.spec.shots,
                    seed=derive_seed(self._seed, "service-execute", placement.job_name, node.backend.name),
                )
        except Exception as error:
            job.mark_failed(str(error))
            self.cluster.release(placement.job_name)
            raise
        job.mark_succeeded(result)
        self.cluster.release(placement.job_name)
        if plan is None and "decision" not in placement.detail:
            self._plans.store(
                placement.spec,
                self._plans.compiler.compile(
                    placement.spec.circuit,
                    node.backend,
                    engine=self.name,
                    shots=placement.spec.shots,
                    transpiled=compiled,
                    score=job.score,
                    num_feasible=placement.num_feasible,
                    scores=dict(placement.detail.get("scores", {})),
                ),
            )
        return EngineResult(
            device=node.backend.name,
            counts=dict(result.counts),
            shots=result.shots,
            score=job.score,
            detail={"swaps_inserted": compiled.swaps_inserted, "plan_replay": plan is not None},
        )

    def prepare_run_batch(self, placements: Sequence[Placement]):
        """Merge this tick's warm-plan stabilizer placements into one run."""
        candidates = []
        for placement in placements:
            plan: Optional[ExecutionPlan] = placement.detail.get("plan")
            if plan is None or plan.execution.engine != "stabilizer":
                continue
            job = self.cluster.job(placement.job_name)
            if job.node_name is None:
                continue
            node = self.cluster.node(job.node_name)
            candidates.append(
                (
                    plan,
                    node.backend,
                    derive_seed(self._seed, "service-execute", placement.job_name, node.backend.name),
                    placement.spec.shots,
                )
            )
        return _prepare_plan_batch(candidates)


def _within_device_bounds(backend: Backend, requirements) -> bool:
    """Whether a device satisfies the spec's device-characteristic bounds.

    Mirrors :class:`~repro.core.scheduler.DeviceCharacteristicsFilter` so a
    spec that is infeasible on the orchestrator/cluster engines is equally
    infeasible here — the unified-API contract.
    """
    properties = backend.properties
    if (
        requirements.max_avg_two_qubit_error is not None
        and properties.average_two_qubit_error() > requirements.max_avg_two_qubit_error
    ):
        return False
    if (
        requirements.max_avg_readout_error is not None
        and properties.average_readout_error() > requirements.max_avg_readout_error
    ):
        return False
    if requirements.min_avg_t1 is not None and properties.average_t1() < requirements.min_avg_t1:
        return False
    if requirements.min_avg_t2 is not None and properties.average_t2() < requirements.min_avg_t2:
        return False
    return True


class CloudEngine(ExecutionEngine):
    """Run jobs as arrivals of the discrete-event cloud simulation.

    Each submission becomes one :class:`~repro.cloud.JobRequest` arriving
    ``inter_arrival_s`` after the previous one; an allocation policy routes
    it at arrival time onto a per-device FCFS queue, restricted to the
    devices that satisfy the spec's qubit request and device-characteristic
    bounds.  The engine reports the simulated fidelity (per the config's
    ``fidelity_report`` mode) together with queueing detail (wait and
    turnaround times) instead of measurement counts — this is the
    latency-model engine, not a sampling engine.

    Because the simulation runs on a *logical* clock, all of its queueing
    and fidelity bookkeeping is performed in arrival order during MATCHING
    (which the service serializes) — ``route`` and ``execute`` happen
    back-to-back per arrival, so load-aware policies always observe the
    queue state every earlier arrival already produced, exactly as in a
    ``workers=0`` or trace-driven run.  The RUNNING stage then just reports
    the precomputed record, which makes it trivially safe to call
    concurrently; wall-clock overlap comes from wrapping this engine in
    :class:`DeviceLatencyEngine`.
    """

    supports_concurrent_run = True

    def __init__(
        self,
        policy: Optional[object] = None,
        config: Optional[CloudSimulationConfig] = None,
        *,
        inter_arrival_s: float = 1.0,
        user: str = "service",
    ) -> None:
        """Build a cloud-simulation engine.

        Args:
            policy: How arrivals are routed: a legacy
                :class:`~repro.cloud.policies.AllocationPolicy`, a unified
                :class:`~repro.policies.PlacementPolicy`, a registry name
                (e.g. ``"fidelity:queue_weight=0.3"``) or ``None`` for the
                least-loaded default.  Jobs may override it per submission
                via ``JobRequirements.policy``.
            config: Simulation knobs (fidelity reporting, time model, seed).
            inter_arrival_s: Logical gap between consecutive submissions.
            user: Submitting user recorded on every arrival.
        """
        if inter_arrival_s < 0:
            raise ServiceError("inter_arrival_s must be non-negative")
        self._policy = policy
        self._config = config
        self._inter_arrival_s = inter_arrival_s
        self._user = user
        self._fleet: List[Backend] = []
        self._session: Optional[CloudSession] = None
        self._alloc_policy: Optional[AllocationPolicy] = None
        self._overrides = _PolicyResolver(
            None, seed=derive_seed(config.seed if config is not None else None, "cloud-policy")
        )
        self._clock = 0.0
        self._index = 0
        self._epoch_memo: Optional[tuple] = None

    @property
    def name(self) -> str:
        return "cloud"

    def _fleet_epoch(self) -> str:
        """Memoized :func:`fleet_calibration_epoch` of the attached fleet.

        The full epoch digest costs ~100x a feasibility bounds check, so
        recomputing it per arrival would make the shortlist cache slower
        than no cache at all.  Instead the digest is memoized behind a
        cheap probe — the properties objects' identities plus their error
        tables' sums — which changes under both recalibration styles (a
        drift model swapping in new properties, or tables edited in place).
        """
        probe = tuple(
            (
                id(backend.properties),  # qrio: allow[QRIO-D003] process-local drift probe, never persisted or pickled
                sum(backend.properties.two_qubit_error.values()),
                sum(backend.properties.readout_error.values()),
            )
            for backend in self._fleet
        )
        if self._epoch_memo is None or self._epoch_memo[0] != probe:
            self._epoch_memo = (probe, fleet_calibration_epoch(self._fleet))
        return self._epoch_memo[1]

    @property
    def session(self) -> CloudSession:
        """The underlying incremental simulation session."""
        if self._session is None:
            raise ServiceError("CloudEngine is not attached to a fleet yet")
        return self._session

    def attach(self, fleet: Sequence[Backend]) -> None:
        self._fleet = list(fleet)
        self._epoch_memo = None
        policy = self._policy
        if policy is None:
            policy = LeastLoadedPolicy()
        elif isinstance(policy, (str, PlacementPolicy)):
            policy = as_allocation_policy(
                resolve_policy(
                    policy,
                    seed=derive_seed(
                        self._config.seed if self._config is not None else None, "cloud-policy"
                    ),
                )
            )
        elif not isinstance(policy, AllocationPolicy):
            raise ServiceError(
                "CloudEngine policy must be an AllocationPolicy, a PlacementPolicy, "
                "a registry name or None"
            )
        self._alloc_policy = policy
        simulator = CloudSimulator(self._fleet, policy, config=self._config)
        self._session = simulator.open_session()

    def fleet(self) -> List[Backend]:
        return list(self._fleet)

    def match(self, spec: JobSpec, job_name: str) -> Placement:
        requirements = spec.requirements
        # An explicit JobRequirements.arrival_time_s pins the job on the
        # simulated clock (how the scenario runner replays a trace's exact
        # timeline); otherwise submissions arrive inter_arrival_s apart.
        if requirements.arrival_time_s is not None:
            arrival = requirements.arrival_time_s
            self._clock = max(self._clock, arrival + self._inter_arrival_s)
        else:
            arrival = self._clock
            self._clock = arrival + self._inter_arrival_s
        request = JobRequest(
            index=self._index,
            arrival_time=arrival,
            workload_key=job_name,
            circuit=spec.circuit,
            strategy=requirements.strategy,
            fidelity_threshold=(
                requirements.effective_fidelity_threshold if requirements.strategy == "fidelity" else 0.0
            ),
            shots=spec.shots,
            user=self._user,
        )
        self._index += 1
        feasible = self._feasible_devices(spec)
        if not feasible:
            return Placement(job_name=job_name, spec=spec, device=None, num_feasible=0)
        override: Optional[AllocationPolicy] = None
        if requirements.policy is not None:
            override = as_allocation_policy(self._overrides.for_requirements(requirements))
        device = self.session.route(
            request, candidates=[backend.name for backend in feasible], policy=override
        )
        # Simulated-time queueing + fidelity reporting happens here, in
        # arrival order, so every later arrival's routing sees this job
        # already enqueued (the discrete-event contract) no matter how the
        # service interleaves the RUNNING stages.
        record = self.session.execute(request, device)
        detail = {"request": request, "record": record}
        decision = getattr(override if override is not None else self._alloc_policy, "last_decision", None)
        if decision is not None:
            detail["decision"] = decision
            detail["scores"] = decision.scores
        return Placement(
            job_name=job_name,
            spec=spec,
            device=device,
            score=None if decision is None else decision.score,
            num_feasible=len(feasible),
            detail=detail,
        )

    def _feasible_devices(self, spec: JobSpec) -> List[Backend]:
        """The devices this spec may route onto, via the plan cache.

        The cloud engine's discrete-event contract requires routing *per
        arrival* (queue state changes with every job), so there is no
        placement to replay — its slice of the plan cache is the feasibility
        shortlist, which depends only on the circuit structure, the device
        bounds and the fleet calibration epoch.  Calibration drift changes
        the epoch and the stale shortlist silently stops matching.
        """
        requirements = spec.requirements
        required_qubits = requirements.qubits_for(spec.circuit)
        key = PlanCache.key(
            structural_circuit_hash(spec.circuit),
            "*fleet*",
            self._fleet_epoch(),
            self.name,
            required_qubits,
            requirements.max_avg_two_qubit_error,
            requirements.max_avg_readout_error,
            requirements.min_avg_t1,
            requirements.min_avg_t2,
        )
        cached = plan_cache().get(key)
        if cached is not None:
            names = set(cached)
            return [
                backend
                for backend in self._fleet
                if backend.name in names and self.device_is_available(backend.name)
            ]
        feasible = [
            backend
            for backend in self._fleet
            if backend.num_qubits >= required_qubits and _within_device_bounds(backend, requirements)
        ]
        # The cached shortlist is availability-independent (structure, bounds
        # and calibration epoch only); outage windows filter at lookup time,
        # so a recovery needs no cache invalidation.
        plan_cache().put(key, tuple(backend.name for backend in feasible))
        return [backend for backend in feasible if self.device_is_available(backend.name)]

    def run(self, placement: Placement) -> EngineResult:
        record = placement.detail["record"]
        return EngineResult(
            device=record.device,
            counts={},
            shots=placement.spec.shots,
            score=placement.score,
            fidelity=record.fidelity,
            detail={
                "wait_time_s": record.wait_time,
                "turnaround_time_s": record.turnaround_time,
            },
        )

    @property
    def simulator(self):
        """The discrete-event simulator behind the session (after attach)."""
        return self.session.simulator

    def apply_calibration(self, device: str, properties) -> None:
        """Calibration jumps additionally advance the session's policy epoch.

        The shared-backend property swap (base implementation) already
        invalidates the plan-cache shortlist via the fleet-epoch probe; the
        session bump forces fidelity-aware routing policies to re-estimate
        against the drifted properties.
        """
        super().apply_calibration(device, properties)
        self._epoch_memo = None
        if self._session is not None:
            self._session.notice_calibration_change()

    def inject_queue_backlog(self, devices, *, at_time_s: float, backlog_s: float) -> int:
        """Queue-storm events enqueue synthetic occupancy on device queues."""
        affected = 0
        for device in devices:
            self.session.inject_backlog(device, at_time=at_time_s, backlog_s=backlog_s)
            affected += 1
        return affected

    def simulation_result(self) -> CloudSimulationResult:
        """Everything executed so far as a cloud-simulation result."""
        return self.session.result()


class DeviceLatencyEngine(ExecutionEngine):
    """Decorator engine: add wall-clock device occupancy to any inner engine.

    Every simulator in this repo completes a job as fast as Python allows —
    real quantum clouds do not: once a job is committed to a QPU, the device
    is occupied for milliseconds-to-seconds of pulse schedules, readout and
    classical I/O.  This wrapper makes that occupancy real by sleeping
    ``latency_s`` after the inner engine's execution, which is exactly the
    regime the concurrent runtime's per-device lanes are built for: with
    ``workers >= 2`` the occupancy windows of jobs on *different* devices
    overlap, while same-device jobs still serialize in their lane.
    ``BENCH_concurrency.json`` measures precisely this overlap.

    The inner engine's ``run`` is re-serialized under a lock when it does not
    advertise ``supports_concurrent_run`` itself — only the latency window
    (where a real deployment would be blocked on the device, not on Python)
    runs outside the lock.
    """

    supports_concurrent_run = True

    def __init__(self, inner: ExecutionEngine, *, latency_s: float = 0.05) -> None:
        """Wrap ``inner``, occupying the placed device ``latency_s`` per job.

        Args:
            inner: Any execution engine; matching is delegated untouched.
            latency_s: Wall-clock seconds of device occupancy per executed
                job group (must be >= 0).

        Raises:
            ServiceError: Negative ``latency_s``.
        """
        if latency_s < 0:
            raise ServiceError("latency_s must be >= 0")
        self._inner = inner
        self._latency_s = latency_s
        self._run_lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"{self._inner.name}+latency"

    @property
    def inner(self) -> ExecutionEngine:
        """The wrapped engine."""
        return self._inner

    @property
    def session(self):
        """The inner engine's cloud session, if it has one (else ``None``)."""
        return getattr(self._inner, "session", None)

    @property
    def latency_s(self) -> float:
        """Per-job device occupancy in wall-clock seconds."""
        return self._latency_s

    def attach(self, fleet: Sequence[Backend]) -> None:
        self._inner.attach(fleet)

    def fleet(self) -> List[Backend]:
        return self._inner.fleet()

    def match(self, spec: JobSpec, job_name: str) -> Placement:
        return self._inner.match(spec, job_name)

    # Fault hooks delegate to the inner engine (which owns the filter path);
    # the wrapper additionally stretches its own occupancy window while a
    # straggler slowdown is active on the placed device.
    def set_fault_injector(self, injector) -> None:
        super().set_fault_injector(injector)
        self._inner.set_fault_injector(injector)

    def set_device_available(self, device: str, available: bool) -> None:
        self._inner.set_device_available(device, available)

    def device_is_available(self, device: str) -> bool:
        return self._inner.device_is_available(device)

    def apply_calibration(self, device: str, properties) -> None:
        self._inner.apply_calibration(device, properties)

    def inject_queue_backlog(self, devices, *, at_time_s: float, backlog_s: float) -> int:
        return self._inner.inject_queue_backlog(devices, at_time_s=at_time_s, backlog_s=backlog_s)

    def run(self, placement: Placement) -> EngineResult:
        if self._inner.supports_concurrent_run:
            outcome = self._inner.run(placement)
        else:
            with self._run_lock:
                outcome = self._inner.run(placement)
        if self._latency_s:
            injector = self.fault_injector
            factor = 1.0 if injector is None else injector.straggler_factor(placement.device)
            time.sleep(self._latency_s * factor)
        return outcome

    def prepare_run_batch(self, placements: Sequence[Placement]):
        """Cross-job batching is the inner engine's business; latency is per-run."""
        return self._inner.prepare_run_batch(placements)
