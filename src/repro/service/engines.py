"""The :class:`~repro.service.ExecutionEngine` adapters.

Each adapter maps the engine protocol's MATCHING/RUNNING split onto one of
the existing subsystems:

* :class:`OrchestratorEngine` — the paper's full Fig. 2 cycle through the
  :class:`~repro.core.QRIO` facade (visualizer form → meta server → master
  server → scheduler → device);
* :class:`ClusterEngine` — the bare k8s-style path: jobs go straight into
  the cluster registry and through the scheduling framework's filter/score
  plugins, skipping the visualizer and container machinery;
* :class:`CloudEngine` — the discrete-event cloud simulator via its
  incremental :class:`~repro.cloud.CloudSession`: each submission becomes an
  arrival routed by an allocation policy onto per-device FCFS queues;
* :class:`DeviceLatencyEngine` — a decorator adding wall-clock device
  occupancy around any inner engine's execution, so the concurrent runtime's
  multi-device overlap is observable in real time (the
  ``BENCH_concurrency.json`` workload).

All adapters consume the same :class:`~repro.service.JobSpec` and produce the
same :class:`~repro.service.Placement` / :class:`~repro.service.EngineResult`
pair, which is what lets :class:`~repro.service.QRIOService` treat them
interchangeably.

Concurrency: ``match()`` is always serialized by the service (dispatcher
thread or caller thread), so adapters may mutate shared matching state
freely.  ``run()`` is only called concurrently when an engine sets
``supports_concurrent_run = True`` — :class:`CloudEngine` does (its session
is internally locked), :class:`OrchestratorEngine` and :class:`ClusterEngine`
do not (their execution path mutates the shared cluster registry), and
:class:`DeviceLatencyEngine` does by construction (the inner engine's run is
re-serialized when it needs to be, only the latency overlaps).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Sequence

from repro.backends.backend import Backend
from repro.cloud.arrivals import JobRequest
from repro.cloud.policies import AllocationPolicy, LeastLoadedPolicy
from repro.cloud.simulation import CloudSession, CloudSimulationConfig, CloudSimulationResult, CloudSimulator
from repro.cluster.job import DeviceConstraints, JobSpec as ClusterJobSpec, ResourceRequest
from repro.cluster.registry import ClusterState
from repro.core.meta_server import MetaServer
from repro.core.scheduler import QRIOScheduler
from repro.core.visualizer import MetaServerPayload, TopologyCanvas
from repro.qasm.exporter import dump_qasm
from repro.service.api import EngineResult, ExecutionEngine, JobSpec, Placement
from repro.transpiler.preset import transpile
from repro.utils.exceptions import ServiceError
from repro.utils.rng import SeedLike, derive_seed


class OrchestratorEngine(ExecutionEngine):
    """Run jobs through the full QRIO facade (the paper's one-at-a-time path)."""

    def __init__(
        self,
        qrio=None,
        *,
        cluster_name: str = "service-cluster",
        canary_shots: int = 512,
        seed: SeedLike = None,
    ) -> None:
        self._qrio = qrio
        self._cluster_name = cluster_name
        self._canary_shots = canary_shots
        self._seed = seed

    @property
    def name(self) -> str:
        return "orchestrator"

    @property
    def qrio(self):
        """The wrapped facade (available after :meth:`attach`)."""
        if self._qrio is None:
            raise ServiceError("OrchestratorEngine is not attached to a fleet yet")
        return self._qrio

    def attach(self, fleet: Sequence[Backend]) -> None:
        if self._qrio is None:
            from repro.core.orchestrator import QRIO

            self._qrio = QRIO(
                cluster_name=self._cluster_name,
                canary_shots=self._canary_shots,
                seed=self._seed,
            )
        registered = {backend.name for backend in self._qrio.devices()}
        for backend in fleet:
            if backend.name not in registered:
                self._qrio.register_device(backend)

    def fleet(self):
        return self.qrio.devices()

    def match(self, spec: JobSpec, job_name: str) -> Placement:
        requirements = spec.requirements
        form = (
            self.qrio.new_submission_form()
            .choose_circuit(spec.circuit)
            .set_job_details(
                job_name=job_name,
                image_name=spec.image_name or f"qrio/{job_name}",
                num_qubits=requirements.qubits_for(spec.circuit),
                cpu_millicores=requirements.cpu_millicores,
                memory_mb=requirements.memory_mb,
                shots=spec.shots,
            )
            .set_device_characteristics(
                max_avg_two_qubit_error=requirements.max_avg_two_qubit_error,
                max_avg_readout_error=requirements.max_avg_readout_error,
                min_avg_t1=requirements.min_avg_t1,
                min_avg_t2=requirements.min_avg_t2,
            )
        )
        if requirements.strategy == "topology":
            canvas = TopologyCanvas(requirements.qubits_for(spec.circuit))
            canvas.load_edges(list(requirements.topology_edges))
            form.request_topology(canvas)
        else:
            form.request_fidelity(requirements.effective_fidelity_threshold)
        self.qrio.submit_form(form)
        outcome = self.qrio.schedule_job(job_name)
        return Placement(
            job_name=job_name,
            spec=spec,
            device=outcome.device,
            score=outcome.score,
            num_feasible=outcome.num_filtered,
            detail={"scores": dict(outcome.scores)},
        )

    def run(self, placement: Placement) -> EngineResult:
        outcome = self.qrio.run_job(placement.job_name)
        if outcome.result is None:
            raise ServiceError(f"Job '{placement.job_name}' produced no execution result")
        # run_job saw an already-bound job (match() scheduled it), so its
        # outcome carries no ranking data; graft the MATCHING stage's scores
        # back on to keep the legacy JobOutcome shape intact.
        outcome.scores = dict(placement.detail.get("scores", {}))
        outcome.num_filtered = placement.num_feasible
        return EngineResult(
            device=outcome.device,
            counts=dict(outcome.result.counts),
            shots=outcome.result.shots,
            score=outcome.score,
            detail={"outcome": outcome},
        )


class ClusterEngine(ExecutionEngine):
    """Run jobs straight through the k8s-style scheduling framework.

    Compared with :class:`OrchestratorEngine` this skips the visualizer form
    and the container/image machinery: cluster-level job specs are built
    directly, the :class:`~repro.core.QRIOScheduler` (default QRIO filter
    chain + meta-server ranking, optionally extended with extra filter
    plugins) binds them, and the node executes the transpiled circuit.
    """

    def __init__(
        self,
        *,
        cluster_name: str = "service-cluster-engine",
        canary_shots: int = 512,
        extra_filters: Optional[Sequence] = None,
        seed: SeedLike = None,
    ) -> None:
        self._cluster_name = cluster_name
        self._canary_shots = canary_shots
        self._extra_filters = list(extra_filters) if extra_filters else None
        self._seed = seed
        self._cluster: Optional[ClusterState] = None
        self._meta: Optional[MetaServer] = None
        self._scheduler: Optional[QRIOScheduler] = None

    @property
    def name(self) -> str:
        return "cluster"

    @property
    def cluster(self) -> ClusterState:
        """The cluster registry (available after :meth:`attach`)."""
        if self._cluster is None:
            raise ServiceError("ClusterEngine is not attached to a fleet yet")
        return self._cluster

    def attach(self, fleet: Sequence[Backend]) -> None:
        self._cluster = ClusterState(name=self._cluster_name)
        self._meta = MetaServer(canary_shots=self._canary_shots, seed=derive_seed(self._seed, "service-meta"))
        for backend in fleet:
            self._cluster.register_backend(backend)
            self._meta.register_backend(backend)
        self._scheduler = QRIOScheduler(self._cluster, self._meta, extra_filters=self._extra_filters)

    def fleet(self) -> List[Backend]:
        return self.cluster.backends()

    def match(self, spec: JobSpec, job_name: str) -> Placement:
        requirements = spec.requirements
        circuit_qasm = dump_qasm(spec.circuit)
        cluster_spec = ClusterJobSpec(
            name=job_name,
            image=spec.image_name or f"service/{job_name}",
            circuit_qasm=circuit_qasm,
            resources=ResourceRequest(
                qubits=requirements.qubits_for(spec.circuit),
                cpu_millicores=requirements.cpu_millicores,
                memory_mb=requirements.memory_mb,
            ),
            constraints=DeviceConstraints(
                max_avg_two_qubit_error=requirements.max_avg_two_qubit_error,
                max_avg_readout_error=requirements.max_avg_readout_error,
                min_avg_t1=requirements.min_avg_t1,
                min_avg_t2=requirements.min_avg_t2,
            ),
            strategy=requirements.strategy,
            shots=spec.shots,
        )
        if requirements.strategy == "topology":
            canvas = TopologyCanvas(requirements.qubits_for(spec.circuit))
            canvas.load_edges(list(requirements.topology_edges))
            payload = MetaServerPayload(
                job_name=job_name,
                strategy="topology",
                topology_qasm=dump_qasm(canvas.to_topology_circuit(name=f"{job_name}_topology")),
            )
        else:
            payload = MetaServerPayload(
                job_name=job_name,
                strategy="fidelity",
                fidelity_threshold=requirements.effective_fidelity_threshold,
                circuit_qasm=circuit_qasm,
            )
        self._meta.upload_job_metadata(payload)
        job = self.cluster.submit_job(cluster_spec)
        decision = self._scheduler.schedule(job)
        return Placement(
            job_name=job_name,
            spec=spec,
            device=None if decision.node_name is None else self.cluster.node(decision.node_name).backend.name,
            score=decision.score,
            num_feasible=decision.filter_report.num_feasible,
            detail={"scores": dict(decision.scores)},
        )

    def run(self, placement: Placement) -> EngineResult:
        job = self.cluster.job(placement.job_name)
        node = self.cluster.node(job.node_name)
        job.mark_running()
        circuit = placement.spec.circuit
        if not circuit.has_measurements():
            circuit = circuit.copy()
            circuit.measure_all()
        try:
            compiled = transpile(
                circuit,
                node.backend,
                seed=derive_seed(self._seed, "service-transpile", placement.job_name, node.backend.name),
            )
            result = node.execute(
                compiled.circuit,
                shots=placement.spec.shots,
                seed=derive_seed(self._seed, "service-execute", placement.job_name, node.backend.name),
            )
        except Exception as error:
            job.mark_failed(str(error))
            self.cluster.release(placement.job_name)
            raise
        job.mark_succeeded(result)
        self.cluster.release(placement.job_name)
        return EngineResult(
            device=node.backend.name,
            counts=dict(result.counts),
            shots=result.shots,
            score=job.score,
            detail={"swaps_inserted": compiled.swaps_inserted},
        )


def _within_device_bounds(backend: Backend, requirements) -> bool:
    """Whether a device satisfies the spec's device-characteristic bounds.

    Mirrors :class:`~repro.core.scheduler.DeviceCharacteristicsFilter` so a
    spec that is infeasible on the orchestrator/cluster engines is equally
    infeasible here — the unified-API contract.
    """
    properties = backend.properties
    if (
        requirements.max_avg_two_qubit_error is not None
        and properties.average_two_qubit_error() > requirements.max_avg_two_qubit_error
    ):
        return False
    if (
        requirements.max_avg_readout_error is not None
        and properties.average_readout_error() > requirements.max_avg_readout_error
    ):
        return False
    if requirements.min_avg_t1 is not None and properties.average_t1() < requirements.min_avg_t1:
        return False
    if requirements.min_avg_t2 is not None and properties.average_t2() < requirements.min_avg_t2:
        return False
    return True


class CloudEngine(ExecutionEngine):
    """Run jobs as arrivals of the discrete-event cloud simulation.

    Each submission becomes one :class:`~repro.cloud.JobRequest` arriving
    ``inter_arrival_s`` after the previous one; an allocation policy routes
    it at arrival time onto a per-device FCFS queue, restricted to the
    devices that satisfy the spec's qubit request and device-characteristic
    bounds.  The engine reports the simulated fidelity (per the config's
    ``fidelity_report`` mode) together with queueing detail (wait and
    turnaround times) instead of measurement counts — this is the
    latency-model engine, not a sampling engine.

    Because the simulation runs on a *logical* clock, all of its queueing
    and fidelity bookkeeping is performed in arrival order during MATCHING
    (which the service serializes) — ``route`` and ``execute`` happen
    back-to-back per arrival, so load-aware policies always observe the
    queue state every earlier arrival already produced, exactly as in a
    ``workers=0`` or trace-driven run.  The RUNNING stage then just reports
    the precomputed record, which makes it trivially safe to call
    concurrently; wall-clock overlap comes from wrapping this engine in
    :class:`DeviceLatencyEngine`.
    """

    supports_concurrent_run = True

    def __init__(
        self,
        policy: Optional[AllocationPolicy] = None,
        config: Optional[CloudSimulationConfig] = None,
        *,
        inter_arrival_s: float = 1.0,
        user: str = "service",
    ) -> None:
        if inter_arrival_s < 0:
            raise ServiceError("inter_arrival_s must be non-negative")
        self._policy = policy
        self._config = config
        self._inter_arrival_s = inter_arrival_s
        self._user = user
        self._fleet: List[Backend] = []
        self._session: Optional[CloudSession] = None
        self._clock = 0.0
        self._index = 0

    @property
    def name(self) -> str:
        return "cloud"

    @property
    def session(self) -> CloudSession:
        """The underlying incremental simulation session."""
        if self._session is None:
            raise ServiceError("CloudEngine is not attached to a fleet yet")
        return self._session

    def attach(self, fleet: Sequence[Backend]) -> None:
        self._fleet = list(fleet)
        simulator = CloudSimulator(
            self._fleet,
            self._policy if self._policy is not None else LeastLoadedPolicy(),
            config=self._config,
        )
        self._session = simulator.open_session()

    def fleet(self) -> List[Backend]:
        return list(self._fleet)

    def match(self, spec: JobSpec, job_name: str) -> Placement:
        requirements = spec.requirements
        request = JobRequest(
            index=self._index,
            arrival_time=self._clock,
            workload_key=job_name,
            circuit=spec.circuit,
            strategy=requirements.strategy,
            fidelity_threshold=(
                requirements.effective_fidelity_threshold if requirements.strategy == "fidelity" else 0.0
            ),
            shots=spec.shots,
            user=self._user,
        )
        self._index += 1
        self._clock += self._inter_arrival_s
        required_qubits = requirements.qubits_for(spec.circuit)
        feasible = [
            backend
            for backend in self._fleet
            if backend.num_qubits >= required_qubits and _within_device_bounds(backend, requirements)
        ]
        if not feasible:
            return Placement(job_name=job_name, spec=spec, device=None, num_feasible=0)
        device = self.session.route(request, candidates=[backend.name for backend in feasible])
        # Simulated-time queueing + fidelity reporting happens here, in
        # arrival order, so every later arrival's routing sees this job
        # already enqueued (the discrete-event contract) no matter how the
        # service interleaves the RUNNING stages.
        record = self.session.execute(request, device)
        return Placement(
            job_name=job_name,
            spec=spec,
            device=device,
            num_feasible=len(feasible),
            detail={"request": request, "record": record},
        )

    def run(self, placement: Placement) -> EngineResult:
        record = placement.detail["record"]
        return EngineResult(
            device=record.device,
            counts={},
            shots=placement.spec.shots,
            fidelity=record.fidelity,
            detail={
                "wait_time_s": record.wait_time,
                "turnaround_time_s": record.turnaround_time,
            },
        )

    def simulation_result(self) -> CloudSimulationResult:
        """Everything executed so far as a cloud-simulation result."""
        return self.session.result()


class DeviceLatencyEngine(ExecutionEngine):
    """Decorator engine: add wall-clock device occupancy to any inner engine.

    Every simulator in this repo completes a job as fast as Python allows —
    real quantum clouds do not: once a job is committed to a QPU, the device
    is occupied for milliseconds-to-seconds of pulse schedules, readout and
    classical I/O.  This wrapper makes that occupancy real by sleeping
    ``latency_s`` after the inner engine's execution, which is exactly the
    regime the concurrent runtime's per-device lanes are built for: with
    ``workers >= 2`` the occupancy windows of jobs on *different* devices
    overlap, while same-device jobs still serialize in their lane.
    ``BENCH_concurrency.json`` measures precisely this overlap.

    The inner engine's ``run`` is re-serialized under a lock when it does not
    advertise ``supports_concurrent_run`` itself — only the latency window
    (where a real deployment would be blocked on the device, not on Python)
    runs outside the lock.
    """

    supports_concurrent_run = True

    def __init__(self, inner: ExecutionEngine, *, latency_s: float = 0.05) -> None:
        """Wrap ``inner``, occupying the placed device ``latency_s`` per job.

        Args:
            inner: Any execution engine; matching is delegated untouched.
            latency_s: Wall-clock seconds of device occupancy per executed
                job group (must be >= 0).

        Raises:
            ServiceError: Negative ``latency_s``.
        """
        if latency_s < 0:
            raise ServiceError("latency_s must be >= 0")
        self._inner = inner
        self._latency_s = latency_s
        self._run_lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"{self._inner.name}+latency"

    @property
    def inner(self) -> ExecutionEngine:
        """The wrapped engine."""
        return self._inner

    @property
    def latency_s(self) -> float:
        """Per-job device occupancy in wall-clock seconds."""
        return self._latency_s

    def attach(self, fleet: Sequence[Backend]) -> None:
        self._inner.attach(fleet)

    def fleet(self) -> List[Backend]:
        return self._inner.fleet()

    def match(self, spec: JobSpec, job_name: str) -> Placement:
        return self._inner.match(spec, job_name)

    def run(self, placement: Placement) -> EngineResult:
        if self._inner.supports_concurrent_run:
            outcome = self._inner.run(placement)
        else:
            with self._run_lock:
                outcome = self._inner.run(placement)
        if self._latency_s:
            time.sleep(self._latency_s)
        return outcome
