"""The unified QRIO job service: one submission API over every engine.

:class:`QRIOService` owns a device fleet plus one pluggable
:class:`~repro.service.ExecutionEngine` and exposes the production-shaped
front door the three historical entry points (the ``QRIO`` facade, the cloud
simulator's trace runner and the cluster scheduling framework) lacked:

* ``submit(circuit, requirements, shots=...)`` returns a
  :class:`~repro.service.JobHandle` with an explicit lifecycle
  (``QUEUED → MATCHING → RUNNING → DONE/FAILED``);
* ``submit_batch(...)`` groups structurally-identical submissions (via
  :func:`repro.core.cache.structural_circuit_hash`) so a batch of N repeats
  pays **one** embedding search, **one** canary distribution and **one**
  batched-engine execution, sharing the result across all N handles;
* ``process()`` drains the queue through the engine; ``JobHandle.result()``
  drives it lazily.

Execution model — synchronous or concurrent
-------------------------------------------
With the default ``workers=0`` the service is deliberately synchronous and
in-process: the lifecycle is a real state machine driven on the caller's
thread, which keeps every engine deterministic under a seed while still
exercising the exact API shape a networked deployment would expose.

With ``workers=N`` (N ≥ 1) the service owns a
:class:`~repro.service.ServiceRuntime`: submissions are admitted into a
priority queue (ordered by ``JobRequirements.priority`` then ``deadline_s``
then FIFO), a dispatcher thread runs the MATCHING stage serially, and the
RUNNING stage executes on a bounded worker pool with **per-device shard
lanes** — jobs placed on different devices run concurrently, jobs placed on
the same device serialize.  ``max_pending`` bounds the queue and
``submit(..., block=False)`` surfaces backpressure as a typed
:class:`~repro.utils.exceptions.ServiceOverloadedError`.  Handles become
futures: ``wait(timeout=...)``, ``done()``, ``add_done_callback`` and the
streaming ``events(follow=True)`` iterator all work from any thread.  A
concurrent service should be :meth:`close`\\ d (or used as a context manager)
so the pool is released deterministically.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.service.api import (
    EngineResult,
    ExecutionEngine,
    JobRequirements,
    JobSpec,
    JobState,
    Placement,
    ServiceResult,
)
from repro.core.cache import all_cache_stats, plan_cache
from repro.service.engines import OrchestratorEngine
from repro.service.handle import JobHandle, wall_wait_from_events
from repro.service.runtime import ServiceRuntime
from repro.tenancy.admission import AdmissionController
from repro.tenancy.api import Tenant
from repro.utils.exceptions import ReproError, ServiceError
from repro.utils.rng import SeedLike

#: What ``submit``'s ``requirements`` argument accepts: the typed dataclass,
#: a bare fidelity threshold, or ``None`` (= fidelity 1.0).
RequirementsLike = Union[JobRequirements, float, int, None]


def _coerce_requirements(requirements: RequirementsLike) -> JobRequirements:
    if requirements is None:
        return JobRequirements()
    if isinstance(requirements, JobRequirements):
        return requirements
    if isinstance(requirements, (int, float)) and not isinstance(requirements, bool):
        return JobRequirements(fidelity_threshold=float(requirements))
    raise ServiceError(
        f"requirements must be a JobRequirements, a fidelity threshold or None, "
        f"not {type(requirements).__name__}"
    )


def _apply_policy(requirements: JobRequirements, policy) -> JobRequirements:
    """Graft a ``policy`` argument onto coerced requirements.

    An explicit ``requirements.policy`` wins; passing *both* (and different)
    is ambiguous and raises.
    """
    if policy is None:
        return requirements
    if requirements.policy is not None and requirements.policy != policy:
        raise ServiceError(
            "Conflicting placement policies: requirements.policy="
            f"{requirements.policy!r} vs policy={policy!r}"
        )
    return replace(requirements, policy=policy)


@dataclass
class _JobGroup:
    """Pending unit of work: one representative spec, N handles sharing it."""

    spec: JobSpec
    handles: List[JobHandle] = field(default_factory=list)
    processed: bool = False

    @property
    def leader(self) -> JobHandle:
        return self.handles[0]

    def drain_callbacks(self) -> None:
        """Fire every handle's deferred done-callbacks (post-accounting)."""
        for handle in self.handles:
            handle._drain_callbacks()


class QRIOService:
    """Fleet + engine + job queue: the one front door for QRIO jobs."""

    def __init__(
        self,
        fleet: Sequence[Backend],
        engine: Optional[ExecutionEngine] = None,
        *,
        seed: SeedLike = None,
        workers: int = 0,
        max_pending: Optional[int] = None,
        plan_cache_size: Optional[int] = None,
        merge_batch_size: int = 8,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        """Bind a fleet to an engine, optionally with a concurrent runtime.

        Args:
            fleet: Devices this service schedules onto.
            engine: Execution engine; defaults to a fresh
                :class:`~repro.service.OrchestratorEngine`.
            seed: Seed for the *default* engine only (mutually exclusive with
                passing ``engine``).
            workers: Size of the worker pool.  ``0`` (default) keeps the
                fully synchronous caller-thread execution model; ``N >= 1``
                builds a :class:`~repro.service.ServiceRuntime` with priority
                dispatch and per-device shard lanes.
            max_pending: Backpressure bound on queued-but-undispatched jobs;
                only meaningful with ``workers >= 1``.
            plan_cache_size: Re-bound the fleet-wide execution-plan cache
                (:func:`repro.core.cache.plan_cache`) instead of keeping its
                default size.  The cache is process-wide — the knob resizes
                the shared instance, it does not create a private one.
            merge_batch_size: Upper bound on how many same-device job groups
                one scheduling tick of the concurrent runtime coalesces into
                a single cross-job batched execution (default 8).  ``1``
                disables cross-job batching; results are bit-identical either
                way.  Only meaningful with ``workers >= 1``.
            admission: An :class:`~repro.tenancy.AdmissionController` gating
                submissions per tenant — quota checks plus SLO-pressure
                accept/defer/shed — before any queue capacity is consumed.
                ``None`` (default) admits everything, leaving the runtime's
                ``max_pending`` backpressure as the only limit.

        Raises:
            ServiceError: ``seed`` combined with an explicit engine,
                ``workers < 0``, ``max_pending`` without workers, or a
                non-positive ``plan_cache_size``.
        """
        if engine is not None and seed is not None:
            raise ServiceError(
                "seed only configures the default engine; pass the seed to your "
                "ExecutionEngine instead (e.g. OrchestratorEngine(seed=...))"
            )
        if workers < 0:
            raise ServiceError("workers must be >= 0 (0 = synchronous, N = worker-pool size)")
        if max_pending is not None and workers == 0:
            raise ServiceError(
                "max_pending only bounds the concurrent runtime's queue; pass workers >= 1"
            )
        if plan_cache_size is not None:
            if plan_cache_size <= 0:
                raise ServiceError("plan_cache_size must be positive")
            plan_cache().resize(plan_cache_size)
        if merge_batch_size <= 0:
            raise ServiceError("merge_batch_size must be positive (1 disables cross-job batching)")
        self._merge_batch_size = merge_batch_size
        self._engine = engine if engine is not None else OrchestratorEngine(seed=seed)
        self._engine.attach(list(fleet))
        self._handles: Dict[str, JobHandle] = {}
        self._group_of: Dict[str, _JobGroup] = {}
        #: Names claimed by submissions not yet admitted by the runtime
        #: (reserved so concurrent submitters cannot reuse them, but not yet
        #: published — observers never see a job the runtime may still reject).
        self._reserved_names: set = set()
        self._pending: Deque[_JobGroup] = deque()
        self._names = itertools.count(1)
        self._counters = {
            "submitted": 0,
            "groups_executed": 0,
            "jobs_succeeded": 0,
            "jobs_failed": 0,
            "jobs_deduplicated": 0,
        }
        #: Guards the name counter, handle registry and counters; submissions
        #: and worker-thread completions may touch them concurrently.
        self._state_lock = threading.Lock()
        #: Optional per-tenant admission gate; all calls serialized under the
        #: state lock, which is also what keeps per-tenant accounting atomic.
        self._admission = admission
        #: Per-tenant occupancy (job counts): queued = admitted but not yet
        #: matched, inflight = matched but not yet terminal.
        self._tenant_queued: Dict[str, int] = {}
        self._tenant_inflight: Dict[str, int] = {}
        #: Latest Tenant definition seen per id (quota/weight source of truth
        #: for ``tenants_report``; the newest submission wins).
        self._tenants_seen: Dict[str, Tenant] = {}
        #: Observers of admitted submissions (``fn(job_name, spec)``), called
        #: in submission order after a batch is registered — the hook
        #: :class:`~repro.scenarios.TraceRecorder` captures live runs with.
        self._submission_listeners: List = []
        #: Scenario fault injector advanced inside the MATCHING funnel
        #: (``None`` = fault-free).  Set via :meth:`set_fault_injector`.
        self._fault_injector = None
        self._runtime: Optional[ServiceRuntime] = None
        if workers:
            self._runtime = ServiceRuntime(self, workers=workers, max_pending=max_pending)

    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine jobs run on."""
        return self._engine

    @property
    def fleet(self) -> List[Backend]:
        """The devices this service schedules onto (live view via the engine)."""
        return self._engine.fleet()

    @property
    def is_concurrent(self) -> bool:
        """``True`` when a worker-pool runtime executes jobs (``workers >= 1``)."""
        return self._runtime is not None

    @property
    def workers(self) -> int:
        """Worker-pool size (``0`` for the synchronous service)."""
        return self._runtime.workers if self._runtime is not None else 0

    @property
    def runtime(self) -> Optional[ServiceRuntime]:
        """The concurrent runtime, or ``None`` for a synchronous service."""
        return self._runtime

    @property
    def merge_batch_size(self) -> int:
        """Max same-device job groups merged into one cross-job batched run."""
        return self._merge_batch_size

    @property
    def admission(self) -> Optional[AdmissionController]:
        """The admission controller gating submissions, or ``None``."""
        return self._admission

    @property
    def fault_injector(self):
        """The attached scenario fault injector, or ``None``."""
        return self._fault_injector

    def set_fault_injector(self, injector) -> None:
        """Attach a :class:`~repro.scenarios.FaultInjector` to this service.

        The injector binds to the engine (resolving fleet-relative device
        references) and, on a concurrent service, to the runtime's quiesce
        barrier, so run-visible fault effects (calibration jumps, straggler
        windows) apply at a deterministic point regardless of worker count.
        Every job matched afterwards first advances the injector to the
        job's arrival time.  Pass ``None`` to detach.
        """
        self._fault_injector = injector
        self._engine.set_fault_injector(injector)
        if injector is not None:
            quiesce = self._runtime.quiesce_runs if self._runtime is not None else None
            injector.bind(self._engine, quiesce=quiesce)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        circuit: QuantumCircuit,
        requirements: RequirementsLike = None,
        *,
        shots: int = 1024,
        name: Optional[str] = None,
        policy: Optional[object] = None,
        block: bool = True,
    ) -> JobHandle:
        """Queue one job; returns its handle immediately (state QUEUED).

        Args:
            circuit: The circuit to schedule and execute.
            requirements: A :class:`~repro.service.JobRequirements`, a bare
                fidelity threshold, or ``None`` (= fidelity 1.0).
            shots: Measurement shots for the execution.
            name: Explicit job name (must be unique per service); ``None``
                auto-assigns ``svc-NNNN``.
            policy: Placement policy for this job — a registry name
                (``"fidelity:queue_weight=0.3"``) or a
                :class:`~repro.policies.PlacementPolicy`; shorthand for
                setting ``requirements.policy``.  ``None`` keeps the
                engine's native (or default) placement path.
            block: Backpressure mode of a concurrent service whose queue is
                full: ``True`` (default) waits for capacity, ``False`` raises
                immediately.  Ignored by a synchronous service (its queue is
                unbounded).

        Returns:
            The job's :class:`~repro.service.JobHandle` (state QUEUED; on a
            concurrent service the lifecycle advances in the background).

        Raises:
            ServiceError: Duplicate job name, or the service was closed.
            ServiceOverloadedError: Concurrent service, queue full and
                ``block=False``.
        """
        spec = JobSpec(
            circuit=circuit,
            requirements=_apply_policy(_coerce_requirements(requirements), policy),
            shots=shots,
            name=name,
        )
        return self.submit_specs([spec], block=block)[0]

    def submit_batch(
        self,
        circuits: Iterable[QuantumCircuit],
        requirements: RequirementsLike = None,
        *,
        shots: int = 1024,
        policy: Optional[object] = None,
        block: bool = True,
    ) -> List[JobHandle]:
        """Queue many jobs at once, deduplicating structurally-identical ones.

        Handles come back in input order; submissions whose circuit
        structure, requirements and shot budget coincide are grouped so the
        engine matches and executes each distinct group exactly once — on a
        concurrent service the whole group is one unit of work for one
        worker, and every handle of the group resolves together.

        Args:
            circuits: Circuits to submit (one job each).
            requirements: Shared requirements (same coercion as :meth:`submit`).
            shots: Shared shot budget.
            policy: Shared placement policy (see :meth:`submit`).
            block: Backpressure mode (see :meth:`submit`); the batch is
                admitted atomically — all groups or none.

        Returns:
            One handle per input circuit, in input order.

        Raises:
            ServiceOverloadedError: Concurrent service and the batch exceeds
                queue capacity (always, when larger than ``max_pending``;
                otherwise only with ``block=False``).
        """
        coerced = _apply_policy(_coerce_requirements(requirements), policy)
        specs = [JobSpec(circuit=circuit, requirements=coerced, shots=shots) for circuit in circuits]
        return self.submit_specs(specs, block=block)

    def submit_specs(self, specs: Sequence[JobSpec], *, block: bool = True) -> List[JobHandle]:
        """Queue pre-built specs (the core submission path).

        Atomic: every name is validated (and, on a concurrent service, queue
        capacity secured) before any spec is queued, so a rejected batch
        leaves the service untouched.

        Args:
            specs: Fully-built job specs.
            block: Backpressure mode (see :meth:`submit`).

        Returns:
            One handle per spec, in input order.

        Raises:
            ServiceError: A spec reuses an existing job name.
            ServiceOverloadedError: See :meth:`submit_batch`.
        """
        handles: List[JobHandle] = []
        groups: Dict[Tuple, _JobGroup] = {}
        ordered_groups: List[_JobGroup] = []
        membership: List[Tuple[str, _JobGroup]] = []
        # Name validation, handle construction and (for the synchronous path)
        # registration share one critical section, so two concurrent
        # submitters can never both claim the same job name.
        with self._state_lock:
            self._admit_specs_locked(specs)
            names: List[str] = []
            taken = lambda name: name in self._handles or name in self._reserved_names  # noqa: E731
            for spec in specs:
                if spec.name is None:
                    # Skip generated names a user already claimed explicitly.
                    name = f"svc-{next(self._names):04d}"
                    while taken(name) or name in names:
                        name = f"svc-{next(self._names):04d}"
                else:
                    name = spec.name
                    if taken(name) or name in names:
                        raise ServiceError(f"A job named '{name}' was already submitted to this service")
                names.append(name)
            for name, spec in zip(names, specs):
                handle = JobHandle(name=name, spec=spec, service=self)
                key = spec.dedup_key()
                group = groups.get(key)
                if group is None:
                    group = _JobGroup(spec=spec)
                    groups[key] = group
                    ordered_groups.append(group)
                group.handles.append(handle)
                membership.append((name, group))
                handles.append(handle)
            if self._runtime is None:
                self._register_submission(membership, handles)
                self._pending.extend(ordered_groups)
            else:
                # Concurrent path: only *reserve* the names for now.  Handles
                # are published after the runtime admits the batch, so
                # observers never see a job that backpressure may still reject
                # (and a parked block=True submission is invisible until it is
                # really queued).
                self._reserved_names.update(names)
        if self._runtime is not None:
            try:
                self._runtime.enqueue(ordered_groups, block=block)
            except ReproError:
                # Atomicity: a rejected batch leaves the service untouched.
                with self._state_lock:
                    self._reserved_names.difference_update(names)
                    self._release_queued_locked(specs)
                raise
            with self._state_lock:
                self._register_submission(membership, handles)
                self._reserved_names.difference_update(names)
        self._notify_submission(handles)
        return handles

    def _notify_submission(self, handles: Sequence[JobHandle]) -> None:
        """Tell every submission listener about an admitted batch, in order."""
        if not self._submission_listeners:
            return
        with self._state_lock:
            listeners = list(self._submission_listeners)
        for handle in handles:
            for listener in listeners:
                listener(handle.name, handle.spec)

    def add_submission_listener(self, listener) -> None:
        """Register ``fn(job_name, spec)`` to observe every admitted job.

        Listeners run on the submitting thread, after the batch is admitted
        and registered (a rejected batch is never observed).  Listener
        exceptions propagate to the submitter — a broken recorder should be
        loud, not silently produce a truncated trace.
        """
        with self._state_lock:
            self._submission_listeners.append(listener)

    def remove_submission_listener(self, listener) -> None:
        """Deregister a submission listener (no-op when absent)."""
        with self._state_lock:
            if listener in self._submission_listeners:
                self._submission_listeners.remove(listener)

    def _register_submission(
        self, membership: List[Tuple[str, _JobGroup]], handles: List[JobHandle]
    ) -> None:
        """Publish admitted handles to the registry (caller holds the lock)."""
        for (name, group), handle in zip(membership, handles):
            self._handles[name] = handle
            self._group_of[name] = group
        self._counters["submitted"] += len(handles)

    @staticmethod
    def _batch_by_tenant(specs: Sequence[JobSpec]) -> Tuple[Dict[str, List[int]], Dict[str, Tenant]]:
        """Aggregate a batch per tenant: ``{id: [jobs, shots]}`` + definitions."""
        batches: Dict[str, List[int]] = {}
        tenants: Dict[str, Tenant] = {}
        for spec in specs:
            tenant = spec.requirements.effective_tenant
            tenants[tenant.id] = tenant
            entry = batches.setdefault(tenant.id, [0, 0])
            entry[0] += 1
            entry[1] += spec.shots
        return batches, tenants

    def _admit_specs_locked(self, specs: Sequence[JobSpec]) -> None:
        """Admission-check one batch and claim its queued slots (lock held).

        Every tenant in the batch is checked against the live occupancy
        counts *before* any slot is charged, so a rejected batch leaves the
        accounting untouched.  (The one non-rollback: in a mixed-tenant batch
        an earlier tenant's token-bucket draw stands even if a later tenant
        rejects — rate budgets measure offered load, not admitted load.)

        Raises:
            AdmissionRejectedError: A tenant's quota or SLO state rejected
                its slice of the batch.
        """
        batches, tenants = self._batch_by_tenant(specs)
        if self._admission is not None:
            for tenant_id, (jobs, shots) in batches.items():
                self._admission.admit(
                    tenants[tenant_id],
                    queued=self._tenant_queued.get(tenant_id, 0),
                    inflight=self._tenant_inflight.get(tenant_id, 0),
                    batch_jobs=jobs,
                    batch_shots=shots,
                )
        for tenant_id, (jobs, _) in batches.items():
            self._tenants_seen[tenant_id] = tenants[tenant_id]
            self._tenant_queued[tenant_id] = self._tenant_queued.get(tenant_id, 0) + jobs

    def _release_queued_locked(self, specs: Sequence[JobSpec]) -> None:
        """Give back a rejected batch's queued slots (lock held)."""
        batches, _ = self._batch_by_tenant(specs)
        for tenant_id, (jobs, _) in batches.items():
            self._shift_tenant_locked(self._tenant_queued, tenant_id, -jobs)

    @staticmethod
    def _shift_tenant_locked(counts: Dict[str, int], tenant_id: str, delta: int) -> None:
        value = counts.get(tenant_id, 0) + delta
        if value > 0:
            counts[tenant_id] = value
        else:
            counts.pop(tenant_id, None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def job(self, name: str) -> JobHandle:
        """Look up a handle by job name.

        Raises:
            ServiceError: No job of that name was submitted here.
        """
        with self._state_lock:
            if name not in self._handles:
                raise ServiceError(f"Unknown service job '{name}'")
            return self._handles[name]

    def jobs(self, state: Optional[JobState] = None) -> List[JobHandle]:
        """Every handle, optionally filtered by lifecycle state."""
        with self._state_lock:
            handles = list(self._handles.values())
        if state is None:
            return handles
        return [handle for handle in handles if handle.state == state]

    def stats(self) -> Dict[str, object]:
        """Service-level counters (used by tests and the benchmark report).

        A concurrent service adds the runtime's occupancy counters
        (``workers``, ``queued_jobs``, ``inflight_groups``, ``active_lanes``).
        """
        with self._state_lock:
            counters = dict(self._counters)
        if self._runtime is not None:
            runtime = self._runtime.stats()
            # Same semantics as the synchronous path: groups not yet dispatched.
            return {
                "engine": self._engine.name,
                "pending_groups": runtime["queued_groups"],
                **counters,
                **runtime,
            }
        return {"engine": self._engine.name, "pending_groups": len(self._pending), **counters}

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss/eviction statistics of every shared cache.

        Includes the fleet-wide execution-plan cache (key ``"plan"``) and
        the merged cross-job program cache (key ``"batch"``) next to the
        embedding and canary ideal-distribution caches, so callers can see
        how many submits replayed a warm plan versus compiling cold, and how
        many scheduling ticks reused a previously merged gate schedule.
        """
        return all_cache_stats()

    def wait_report(self) -> Dict[str, object]:
        """Wall-clock wait/makespan statistics over every job submitted so far.

        A job's *wait* is the time from submission (its QUEUED event) to the
        start of execution (its RUNNING event); jobs that never reached
        RUNNING (still queued, or failed during matching) contribute no wait
        sample.  The *makespan* spans the first submission to the last
        terminal transition.  Waits are summarised with the same
        p50/p95/p99 percentile vocabulary the cloud simulator reports
        (:func:`repro.scenarios.metrics.summarise_waits`), so a concurrent
        runtime drain and a discrete-event simulation produce comparable
        rows — the cloud simulator on its logical clock, this report on the
        wall clock.
        """
        from repro.scenarios.metrics import summarise_waits

        handles = self.jobs()
        waits: List[float] = []
        tenant_waits: Dict[str, List[float]] = {}
        first_queued: Optional[float] = None
        last_terminal: Optional[float] = None
        finished = 0
        for handle in handles:
            events = handle.events()
            if not events:
                continue
            queued_at = events[0].timestamp
            first_queued = queued_at if first_queued is None else min(first_queued, queued_at)
            wait = wall_wait_from_events(events)
            if wait is not None:
                waits.append(wait)
                tenant_waits.setdefault(handle.spec.requirements.tenant_id, []).append(wait)
            if events[-1].state.terminal:
                finished += 1
                last_terminal = (
                    events[-1].timestamp
                    if last_terminal is None
                    else max(last_terminal, events[-1].timestamp)
                )
        makespan = 0.0
        if first_queued is not None and last_terminal is not None:
            makespan = max(0.0, last_terminal - first_queued)
        return {
            "jobs": len(handles),
            "finished": finished,
            "waits": summarise_waits(waits),
            "makespan_s": makespan,
            "clock": "wall",
            "tenants": {
                tenant: summarise_waits(samples)
                for tenant, samples in sorted(tenant_waits.items())
            },
        }

    def tenants_report(self) -> Dict[str, object]:
        """Live per-tenant occupancy, quotas and admission posture.

        One row per tenant this service has ever seen: the tenant's declared
        weight/quotas, its current queued and inflight job counts, and its
        admission state (always ``"accept"`` without a controller).  With a
        controller attached, the controller's own snapshot (pressure, p99,
        rejection counts) rides along under ``"admission"``.
        """
        with self._state_lock:
            tenant_ids = sorted(
                set(self._tenants_seen) | set(self._tenant_queued) | set(self._tenant_inflight)
            )
            rows: Dict[str, Dict[str, object]] = {}
            for tenant_id in tenant_ids:
                tenant = self._tenants_seen.get(tenant_id) or Tenant(id=tenant_id)
                rows[tenant_id] = {
                    "weight": tenant.weight,
                    "max_pending": tenant.max_pending,
                    "max_inflight": tenant.max_inflight,
                    "shots_per_second": tenant.shots_per_second,
                    "queued": self._tenant_queued.get(tenant_id, 0),
                    "inflight": self._tenant_inflight.get(tenant_id, 0),
                    "state": (
                        self._admission.state(tenant_id).value
                        if self._admission is not None
                        else "accept"
                    ),
                }
            report: Dict[str, object] = {"tenants": rows}
            if self._admission is not None:
                report["admission"] = self._admission.report()
            return report

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #
    def process(self, handle: Optional[JobHandle] = None) -> None:
        """Drain the queue through the engine.

        Synchronous service: groups run FIFO on the calling thread.  With
        ``handle`` given, processing stops as soon as that handle's group has
        run (earlier groups still run first — submission order is part of the
        API contract).  Without it, everything pending runs.

        Concurrent service: the workers are already executing; this blocks
        until ``handle`` (or, without one, every admitted job) reaches a
        terminal state — i.e. ``process()`` is the drain barrier.

        Raises:
            ServiceError: ``handle`` belongs to a different service.
        """
        if handle is not None:
            with self._state_lock:
                target = self._group_of.get(handle.name)
            if target is None:
                raise ServiceError(f"Job '{handle.name}' does not belong to this service")
        if self._runtime is not None:
            if handle is not None:
                self._runtime.wait_handle(handle, timeout=None)
            else:
                self._runtime.drain()
            return
        if handle is not None and self._group_of[handle.name].processed:
            return
        while self._pending:
            group = self._pending.popleft()
            self._execute_group(group)
            if handle is not None and group is self._group_of[handle.name]:
                return

    def process_all(self) -> List[JobHandle]:
        """Process everything pending; returns all handles for convenience."""
        self.process()
        return self.jobs()

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the concurrent runtime (drain, then shut the pool down).

        Queued jobs still execute — closing is a drain, not an abort; only
        new submissions are rejected afterwards.  A synchronous service has
        nothing to release, so this is a no-op there.  Idempotent.
        """
        if self._runtime is not None:
            self._runtime.close()

    def __enter__(self) -> "QRIOService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Lifecycle execution (shared by the sync path and the runtime)
    # ------------------------------------------------------------------ #
    def _drive(self, handle: JobHandle, timeout: Optional[float] = None) -> None:
        """Advance ``handle`` to completion: process (sync) or await (concurrent)."""
        if self._runtime is not None:
            self._runtime.wait_handle(handle, timeout)
        else:
            self.process(handle)

    def _execute_group(self, group: _JobGroup) -> None:
        """Synchronous path: MATCHING then RUNNING on the calling thread."""
        try:
            placement = self._match_group(group)
            if placement is not None:
                self._run_group(group, placement, reraise=True)
        finally:
            # Callbacks fire even when an engine crash is propagating — the
            # handles are terminal by then.
            group.drain_callbacks()

    def _match_group(self, group: _JobGroup) -> Optional[Placement]:
        """Run the engine's MATCHING stage for one group.

        Returns the placement on success, ``None`` when the group failed
        (infeasible requirements or an engine error — the handles are already
        terminal).  Non-library engine exceptions propagate *after* the
        group's lifecycle is terminated, so no handle is ever stuck in a
        non-terminal state; the runtime's dispatcher catches them.
        """
        group.processed = True
        size = len(group.handles)
        spec = group.spec
        leader = group.leader
        with self._state_lock:
            # Tenant accounting: the group leaves the queue and is now
            # inflight, whatever happens next (failures decrement inflight).
            tenant_id = spec.requirements.tenant_id
            self._shift_tenant_locked(self._tenant_queued, tenant_id, -size)
            self._shift_tenant_locked(self._tenant_inflight, tenant_id, size)
        dedup_note = f" (group of {size} structurally-identical jobs)" if size > 1 else ""
        for handle in group.handles:
            handle._transition(
                JobState.MATCHING,
                f"matching via '{self._engine.name}' engine{dedup_note}",
            )
        if self._fault_injector is not None:
            # Scenario fault events due at this job's arrival apply before it
            # is matched — the serialized MATCHING funnel makes this the one
            # deterministic point shared by the sync and concurrent paths.
            self._fault_injector.advance_to(spec.requirements.arrival_time_s)
        try:
            placement = self._engine.match(spec, leader.name)
        except ReproError as error:
            self._fail_group(group, f"matching failed: {error}", error)
            return None
        except Exception as error:
            # Engine bugs still terminate the lifecycle before propagating,
            # so no handle is ever stuck in a non-terminal state.
            self._fail_group(group, f"matching crashed: {error}", error)
            raise
        if placement.device is None:
            for handle in group.handles:
                handle._set_placement(None, None, {"num_feasible": placement.num_feasible, **placement.detail})
            self._fail_group(
                group,
                f"no feasible device ({placement.num_feasible} of {len(self._engine.fleet())} passed filtering)",
            )
            return None
        placement_detail = {"num_feasible": placement.num_feasible, **placement.detail}
        for handle in group.handles:
            handle._set_placement(placement.device, placement.score, dict(placement_detail))
        return placement

    def _prepare_run_batch(self, placements: Sequence[Placement]):
        """Pre-execute one lane gulp's mergeable placements (runtime hook).

        Delegates to the engine's
        :meth:`~repro.service.ExecutionEngine.prepare_run_batch`.  Batching
        is a pure optimisation, so any engine failure here degrades to the
        per-job path instead of failing the groups — the subsequent ``run``
        calls simply simulate solo.
        """
        try:
            return self._engine.prepare_run_batch(placements)
        except Exception:  # noqa: BLE001 - batching must never break execution
            return None

    def _run_group(self, group: _JobGroup, placement: Placement, *, reraise: bool) -> None:
        """Run the engine's RUNNING stage for one matched group.

        ``reraise=True`` (synchronous path) propagates non-library engine
        crashes to the caller after failing the group; the runtime passes
        ``False`` since there is no caller thread to surface them to — the
        exception is recorded on every handle instead.
        """
        for handle in group.handles:
            handle._transition(JobState.RUNNING, f"executing on '{placement.device}'")
        if self._admission is not None:
            # Feed the controller the same QUEUED->RUNNING waits wait_report()
            # summarises, one sample per job in the group.
            with self._state_lock:
                for handle in group.handles:
                    wait = wall_wait_from_events(handle.events())
                    if wait is not None:
                        self._admission.observe_wait(wait)
        try:
            outcome = self._engine.run(placement)
        except ReproError as error:
            self._fail_group(group, f"execution failed: {error}", error)
            return
        except Exception as error:
            self._fail_group(group, f"execution crashed: {error}", error)
            if reraise:
                raise
            return
        self._complete_group(group, placement, outcome)

    def _fail_group(
        self, group: _JobGroup, reason: str, exception: Optional[BaseException] = None
    ) -> None:
        for handle in group.handles:
            handle._fail(reason, exception)
        with self._state_lock:
            self._counters["jobs_failed"] += len(group.handles)
            self._shift_tenant_locked(
                self._tenant_inflight, group.spec.requirements.tenant_id, -len(group.handles)
            )

    def _complete_group(self, group: _JobGroup, placement: Placement, outcome: EngineResult) -> None:
        size = len(group.handles)
        for handle in group.handles:
            handle._complete(
                ServiceResult(
                    job_name=handle.name,
                    engine=self._engine.name,
                    device=outcome.device,
                    counts=dict(outcome.counts),
                    shots=outcome.shots,
                    score=outcome.score,
                    fidelity=outcome.fidelity,
                    num_feasible=placement.num_feasible,
                    group_size=size,
                    deduplicated=handle is not group.leader,
                    detail=dict(outcome.detail),
                )
            )
        with self._state_lock:
            self._counters["groups_executed"] += 1
            self._counters["jobs_succeeded"] += size
            self._counters["jobs_deduplicated"] += size - 1
            self._shift_tenant_locked(
                self._tenant_inflight, group.spec.requirements.tenant_id, -size
            )
