"""The unified QRIO job service: one submission API over every engine.

:class:`QRIOService` owns a device fleet plus one pluggable
:class:`~repro.service.ExecutionEngine` and exposes the production-shaped
front door the three historical entry points (the ``QRIO`` facade, the cloud
simulator's trace runner and the cluster scheduling framework) lacked:

* ``submit(circuit, requirements, shots=...)`` returns a
  :class:`~repro.service.JobHandle` with an explicit lifecycle
  (``QUEUED → MATCHING → RUNNING → DONE/FAILED``);
* ``submit_batch(...)`` groups structurally-identical submissions (via
  :func:`repro.core.cache.structural_circuit_hash`) so a batch of N repeats
  pays **one** embedding search, **one** canary distribution and **one**
  batched-engine execution, sharing the result across all N handles;
* ``process()`` drains the queue through the engine; ``JobHandle.result()``
  drives it lazily.

The service is deliberately synchronous and in-process — the lifecycle is a
real state machine, not a thread pool — which keeps every engine
deterministic under a seed while still exercising the exact API shape a
networked deployment would expose.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.service.api import (
    EngineResult,
    ExecutionEngine,
    JobRequirements,
    JobSpec,
    JobState,
    Placement,
    ServiceResult,
)
from repro.service.engines import OrchestratorEngine
from repro.service.handle import JobHandle
from repro.utils.exceptions import ReproError, ServiceError
from repro.utils.rng import SeedLike

#: What ``submit``'s ``requirements`` argument accepts: the typed dataclass,
#: a bare fidelity threshold, or ``None`` (= fidelity 1.0).
RequirementsLike = Union[JobRequirements, float, int, None]


def _coerce_requirements(requirements: RequirementsLike) -> JobRequirements:
    if requirements is None:
        return JobRequirements()
    if isinstance(requirements, JobRequirements):
        return requirements
    if isinstance(requirements, (int, float)) and not isinstance(requirements, bool):
        return JobRequirements(fidelity_threshold=float(requirements))
    raise ServiceError(
        f"requirements must be a JobRequirements, a fidelity threshold or None, "
        f"not {type(requirements).__name__}"
    )


@dataclass
class _JobGroup:
    """Pending unit of work: one representative spec, N handles sharing it."""

    spec: JobSpec
    handles: List[JobHandle] = field(default_factory=list)
    processed: bool = False

    @property
    def leader(self) -> JobHandle:
        return self.handles[0]


class QRIOService:
    """Fleet + engine + job queue: the one front door for QRIO jobs."""

    def __init__(
        self,
        fleet: Sequence[Backend],
        engine: Optional[ExecutionEngine] = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        if engine is not None and seed is not None:
            raise ServiceError(
                "seed only configures the default engine; pass the seed to your "
                "ExecutionEngine instead (e.g. OrchestratorEngine(seed=...))"
            )
        self._engine = engine if engine is not None else OrchestratorEngine(seed=seed)
        self._engine.attach(list(fleet))
        self._handles: Dict[str, JobHandle] = {}
        self._group_of: Dict[str, _JobGroup] = {}
        self._pending: Deque[_JobGroup] = deque()
        self._names = itertools.count(1)
        self._counters = {
            "submitted": 0,
            "groups_executed": 0,
            "jobs_succeeded": 0,
            "jobs_failed": 0,
            "jobs_deduplicated": 0,
        }

    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine jobs run on."""
        return self._engine

    @property
    def fleet(self) -> List[Backend]:
        """The devices this service schedules onto (live view via the engine)."""
        return self._engine.fleet()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        circuit: QuantumCircuit,
        requirements: RequirementsLike = None,
        *,
        shots: int = 1024,
        name: Optional[str] = None,
    ) -> JobHandle:
        """Queue one job; returns its handle immediately (state QUEUED)."""
        spec = JobSpec(
            circuit=circuit,
            requirements=_coerce_requirements(requirements),
            shots=shots,
            name=name,
        )
        return self.submit_specs([spec])[0]

    def submit_batch(
        self,
        circuits: Iterable[QuantumCircuit],
        requirements: RequirementsLike = None,
        *,
        shots: int = 1024,
    ) -> List[JobHandle]:
        """Queue many jobs at once, deduplicating structurally-identical ones.

        Handles come back in input order; submissions whose circuit
        structure, requirements and shot budget coincide are grouped so the
        engine matches and executes each distinct group exactly once.
        """
        coerced = _coerce_requirements(requirements)
        specs = [JobSpec(circuit=circuit, requirements=coerced, shots=shots) for circuit in circuits]
        return self.submit_specs(specs)

    def submit_specs(self, specs: Sequence[JobSpec]) -> List[JobHandle]:
        """Queue pre-built specs (the core submission path).

        Atomic: every name is validated before any spec is queued, so a
        rejected batch leaves the service untouched.
        """
        names: List[str] = []
        for spec in specs:
            if spec.name is None:
                # Skip generated names a user already claimed explicitly.
                name = f"svc-{next(self._names):04d}"
                while name in self._handles or name in names:
                    name = f"svc-{next(self._names):04d}"
            else:
                name = spec.name
                if name in self._handles or name in names:
                    raise ServiceError(f"A job named '{name}' was already submitted to this service")
            names.append(name)
        handles: List[JobHandle] = []
        groups: Dict[Tuple, _JobGroup] = {}
        for name, spec in zip(names, specs):
            handle = JobHandle(name=name, spec=spec, service=self)
            key = spec.dedup_key()
            group = groups.get(key)
            if group is None:
                group = _JobGroup(spec=spec)
                groups[key] = group
                self._pending.append(group)
            group.handles.append(handle)
            self._handles[name] = handle
            self._group_of[name] = group
            self._counters["submitted"] += 1
            handles.append(handle)
        return handles

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def job(self, name: str) -> JobHandle:
        """Look up a handle by job name."""
        if name not in self._handles:
            raise ServiceError(f"Unknown service job '{name}'")
        return self._handles[name]

    def jobs(self, state: Optional[JobState] = None) -> List[JobHandle]:
        """Every handle, optionally filtered by lifecycle state."""
        handles = list(self._handles.values())
        if state is None:
            return handles
        return [handle for handle in handles if handle.state == state]

    def stats(self) -> Dict[str, object]:
        """Service-level counters (used by tests and the benchmark report)."""
        return {
            "engine": self._engine.name,
            "pending_groups": len(self._pending),
            **self._counters,
        }

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #
    def process(self, handle: Optional[JobHandle] = None) -> None:
        """Drain the queue through the engine, FIFO by group.

        With ``handle`` given, processing stops as soon as that handle's
        group has run (earlier groups still run first — submission order is
        part of the API contract).  Without it, everything pending runs.
        """
        if handle is not None:
            target = self._group_of.get(handle.name)
            if target is None:
                raise ServiceError(f"Job '{handle.name}' does not belong to this service")
            if target.processed:
                return
        while self._pending:
            group = self._pending.popleft()
            self._execute_group(group)
            if handle is not None and group is self._group_of[handle.name]:
                return

    def process_all(self) -> List[JobHandle]:
        """Process everything pending; returns all handles for convenience."""
        self.process()
        return self.jobs()

    # ------------------------------------------------------------------ #
    def _execute_group(self, group: _JobGroup) -> None:
        group.processed = True
        size = len(group.handles)
        spec = group.spec
        leader = group.leader
        dedup_note = f" (group of {size} structurally-identical jobs)" if size > 1 else ""
        for handle in group.handles:
            handle._transition(
                JobState.MATCHING,
                f"matching via '{self._engine.name}' engine{dedup_note}",
            )
        try:
            placement = self._engine.match(spec, leader.name)
        except ReproError as error:
            self._fail_group(group, f"matching failed: {error}", error)
            return
        except Exception as error:
            # Engine bugs still terminate the lifecycle before propagating,
            # so no handle is ever stuck in a non-terminal state.
            self._fail_group(group, f"matching crashed: {error}", error)
            raise
        if placement.device is None:
            for handle in group.handles:
                handle._set_placement(None, None, {"num_feasible": placement.num_feasible, **placement.detail})
            self._fail_group(
                group,
                f"no feasible device ({placement.num_feasible} of {len(self._engine.fleet())} passed filtering)",
            )
            return
        placement_detail = {"num_feasible": placement.num_feasible, **placement.detail}
        for handle in group.handles:
            handle._set_placement(placement.device, placement.score, dict(placement_detail))
            handle._transition(JobState.RUNNING, f"executing on '{placement.device}'")
        try:
            outcome = self._engine.run(placement)
        except ReproError as error:
            self._fail_group(group, f"execution failed: {error}", error)
            return
        except Exception as error:
            self._fail_group(group, f"execution crashed: {error}", error)
            raise
        self._complete_group(group, placement, outcome)

    def _fail_group(
        self, group: _JobGroup, reason: str, exception: Optional[BaseException] = None
    ) -> None:
        for handle in group.handles:
            handle._fail(reason, exception)
        self._counters["jobs_failed"] += len(group.handles)

    def _complete_group(self, group: _JobGroup, placement: Placement, outcome: EngineResult) -> None:
        size = len(group.handles)
        for handle in group.handles:
            handle._complete(
                ServiceResult(
                    job_name=handle.name,
                    engine=self._engine.name,
                    device=outcome.device,
                    counts=dict(outcome.counts),
                    shots=outcome.shots,
                    score=outcome.score,
                    fidelity=outcome.fidelity,
                    num_feasible=placement.num_feasible,
                    group_size=size,
                    deduplicated=handle is not group.leader,
                    detail=dict(outcome.detail),
                )
            )
        self._counters["groups_executed"] += 1
        self._counters["jobs_succeeded"] += size
        self._counters["jobs_deduplicated"] += size - 1
