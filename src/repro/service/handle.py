"""The user's view of one submitted service job.

A :class:`JobHandle` is returned immediately by
:meth:`~repro.service.QRIOService.submit`; the job itself executes when the
service processes its queue — synchronously on the caller's thread for a
``workers=0`` service, or on the worker pool of a concurrent service
(``workers > 0``, see :class:`~repro.service.ServiceRuntime`).

The handle exposes the explicit lifecycle
(``QUEUED → MATCHING → RUNNING → DONE/FAILED``) through :meth:`status` and
:meth:`events`, and grows the :mod:`concurrent.futures`-style non-blocking
surface the runtime needs:

* :meth:`wait` accepts a ``timeout`` and returns the (possibly still
  non-terminal) status instead of raising on expiry;
* :attr:`done` / :attr:`failed` / :attr:`finished` answer both as legacy
  properties (``handle.done``) and as futures-style calls (``handle.done()``);
* :meth:`add_done_callback` registers completion callbacks that fire on the
  thread that finishes the job (immediately when already terminal);
* ``events(follow=True)`` streams lifecycle transitions as the runtime
  records them, ending once the job reaches a terminal state.

Every mutation happens under one condition variable, so handles are safe to
poll, wait on and stream from any thread while runtime workers drive the job.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.service.api import (
    ALLOWED_TRANSITIONS,
    JobEvent,
    JobSpec,
    JobState,
    JobStatus,
    ServiceResult,
)
from repro.utils.exceptions import JobFailedError, JobNotCompletedError, ServiceError


class _StateFlag(int):
    """A boolean that can also be *called* like a :class:`concurrent.futures.Future` method.

    PR 2 shipped ``handle.done`` / ``handle.failed`` / ``handle.finished`` as
    plain properties; the concurrent runtime adopts the futures convention of
    ``handle.done()``.  This int subclass keeps both spellings working:
    ``if handle.done:`` (truthiness) and ``if handle.done():`` (call) are
    equivalent, and ``str()`` renders ``True``/``False``.

    Caveat of the bridge: the value is *not* a ``bool`` instance, so use
    truthiness, never identity (``handle.done is True`` is always ``False``),
    and call ``bool(...)`` before serializing it.
    """

    __slots__ = ()

    def __call__(self) -> bool:
        return bool(self)

    def __repr__(self) -> str:
        return repr(bool(self))

    # int would render '1'/'0'; these flags must print like the bools they were.
    __str__ = __repr__


def wall_wait_from_events(events: List[JobEvent]) -> Optional[float]:
    """QUEUED→RUNNING wait of one event list, or ``None`` before RUNNING.

    The one definition of "a job's wall-clock wait", shared by
    :meth:`JobHandle.wall_wait_s` and callers that already hold an event
    snapshot (``QRIOService.wait_report`` scans each handle's events once).
    """
    if not events:
        return None
    queued_at = events[0].timestamp
    for event in events:
        if event.state == JobState.RUNNING:
            return event.timestamp - queued_at
    return None


class JobHandle:
    """Handle to one service job; created by the service, never directly."""

    def __init__(self, name: str, spec: JobSpec, service: "QRIOService") -> None:
        self._name = name
        self._spec = spec
        self._service = service
        self._state = JobState.QUEUED
        self._events: List[JobEvent] = []
        self._device: Optional[str] = None
        self._score: Optional[float] = None
        self._error: Optional[str] = None
        self._exception: Optional[BaseException] = None
        self._detail: Dict[str, object] = {}
        self._result: Optional[ServiceResult] = None
        self._callbacks: List[Callable[["JobHandle"], None]] = []
        #: One lock for every mutation; waiters (wait / result / events
        #: streaming) block on it until workers notify a transition.
        self._cv = threading.Condition()
        self._record(JobState.QUEUED, "submission accepted")

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Service-assigned unique job name."""
        return self._name

    @property
    def spec(self) -> JobSpec:
        """The submission this handle tracks."""
        return self._spec

    @property
    def state(self) -> JobState:
        """Current lifecycle state (a point-in-time read; may advance concurrently)."""
        return self._state

    @property
    def done(self) -> _StateFlag:
        """Truthy when the job completed successfully (usable as ``done`` or ``done()``)."""
        return _StateFlag(self._state == JobState.DONE)

    @property
    def failed(self) -> _StateFlag:
        """Truthy when the job failed, including "no feasible device" (``failed`` or ``failed()``)."""
        return _StateFlag(self._state == JobState.FAILED)

    @property
    def finished(self) -> _StateFlag:
        """Truthy once the job reached a terminal state (``finished`` or ``finished()``)."""
        return _StateFlag(self._state.terminal)

    @property
    def exception(self) -> Optional[BaseException]:
        """The engine exception behind a failure (``None`` for clean failures
        such as "no feasible device")."""
        return self._exception

    # ------------------------------------------------------------------ #
    def status(self) -> JobStatus:
        """Point-in-time lifecycle snapshot.

        Returns:
            A :class:`~repro.service.JobStatus` capturing state, device,
            score, last event message and failure reason at the moment of the
            call.  On a concurrent service the job may advance immediately
            after the snapshot is taken.
        """
        with self._cv:
            return JobStatus(
                name=self._name,
                state=self._state,
                engine=self._service.engine.name,
                device=self._device,
                score=self._score,
                message=self._events[-1].message if self._events else "",
                error=self._error,
                detail=dict(self._detail),
            )

    def events(
        self, follow: bool = False, timeout: Optional[float] = None
    ) -> Union[List[JobEvent], Iterator[JobEvent]]:
        """The job's lifecycle transitions.

        Args:
            follow: With the default ``False``, return the list of every
                transition recorded *so far*, in order.  With ``True``,
                return a streaming iterator that yields transitions as the
                runtime records them and ends once the job is terminal — the
                in-process analogue of tailing a job's event log.  On a
                synchronous (``workers=0``) service a pending job is driven
                to completion first, so the stream never blocks forever.
            timeout: Only meaningful with ``follow=True``: the maximum number
                of seconds the stream waits *between* events before giving
                up.

        Returns:
            ``List[JobEvent]`` when ``follow=False``; an ``Iterator[JobEvent]``
            otherwise.

        Raises:
            JobNotCompletedError: From the streaming iterator, when
                ``timeout`` elapses with no new event and the job is still
                not terminal.
        """
        if not follow:
            with self._cv:
                return list(self._events)
        if not self._state.terminal and not self._service.is_concurrent:
            # Synchronous service: there is no background worker to feed the
            # stream, so drive the job to completion before yielding.
            self._service.process(self)
        return self._follow_events(timeout)

    def _follow_events(self, timeout: Optional[float]) -> Iterator[JobEvent]:
        index = 0
        while True:
            with self._cv:
                while index >= len(self._events) and not self._state.terminal:
                    if not self._cv.wait(timeout=timeout):
                        raise JobNotCompletedError(
                            f"Job '{self._name}' produced no event within {timeout}s "
                            f"(still {self._state.value})"
                        )
                batch = list(self._events[index:])
                terminal = self._state.terminal
            for event in batch:
                yield event
            index += len(batch)
            if terminal:
                return

    def wall_wait_s(self) -> Optional[float]:
        """Wall-clock seconds from submission (QUEUED) to execution (RUNNING).

        ``None`` when the job has not reached RUNNING (still queued/matching,
        or failed before execution).  This is the per-job wait sample behind
        :meth:`QRIOService.wait_report` and the scenario reports.
        """
        with self._cv:
            events = list(self._events)
        return wall_wait_from_events(events)

    def result(self, wait: bool = True, timeout: Optional[float] = None) -> ServiceResult:
        """The job's outcome.

        Args:
            wait: With ``True`` (default) a still-pending job is driven to
                completion first — processed synchronously on a ``workers=0``
                service, awaited on a concurrent one.  With ``False`` an
                unfinished job raises immediately.
            timeout: Maximum seconds to wait on a concurrent service
                (``None`` waits indefinitely; ignored by the synchronous
                path, which always processes to completion).

        Returns:
            The :class:`~repro.service.ServiceResult` of the completed job.

        Raises:
            JobNotCompletedError: The job has not finished and ``wait=False``,
                or ``timeout`` expired before it finished.
            JobFailedError: The job reached FAILED (including "no feasible
                device" rejections).
        """
        if not self.finished:
            if not wait:
                raise JobNotCompletedError(
                    f"Job '{self._name}' is still {self._state.value}; "
                    "pass wait=True (or call QRIOService.process) to drive it to completion"
                )
            self._service._drive(self, timeout)
            if not self.finished:
                raise JobNotCompletedError(
                    f"Job '{self._name}' did not finish within {timeout}s "
                    f"(still {self._state.value})"
                )
        if self.failed:
            raise JobFailedError(f"Job '{self._name}' failed: {self._error}")
        if self._result is None:
            raise ServiceError(f"Job '{self._name}' is {self._state.value} but has no result recorded")
        return self._result

    def wait(self, timeout: Optional[float] = None) -> JobStatus:
        """Wait for the job to finish, without raising on failure or expiry.

        Args:
            timeout: Maximum seconds to wait on a concurrent service.  When it
                expires the job is simply *not* finished yet — the returned
                status reflects the current (non-terminal) state and no
                exception is raised.  The synchronous path processes the
                queue to completion and ignores ``timeout``.

        Returns:
            The job's :class:`~repro.service.JobStatus` after waiting.
        """
        if not self.finished:
            self._service._drive(self, timeout)
        return self.status()

    def add_done_callback(self, fn: Callable[["JobHandle"], None]) -> None:
        """Register ``fn`` to run with this handle once the job is terminal.

        Mirrors :meth:`concurrent.futures.Future.add_done_callback`: when the
        job is already DONE or FAILED the callback runs immediately on the
        calling thread (exceptions propagate to the caller); otherwise it runs
        on the runtime thread that finishes the job, in registration order,
        and exceptions are swallowed so one bad callback cannot wedge a
        worker.  Deferred callbacks fire *after* the runtime has accounted
        the job's group as finished, so calling ``service.close()`` or
        ``service.process()`` from a callback does not self-deadlock — but,
        as with :mod:`concurrent.futures`, a callback must not block on
        *other* jobs queued behind this one in the same device lane (the
        callback occupies that lane's worker).

        Args:
            fn: A one-argument callable; receives this handle.
        """
        with self._cv:
            if not self._state.terminal:
                self._callbacks.append(fn)
                return
        fn(self)

    # ------------------------------------------------------------------ #
    # Service-side mutation (package-private by convention)
    # ------------------------------------------------------------------ #
    def _await_terminal(self, timeout: Optional[float]) -> bool:
        """Block until terminal or ``timeout``; returns whether it finished."""
        with self._cv:
            return self._cv.wait_for(lambda: self._state.terminal, timeout=timeout)

    def _transition(self, state: JobState, message: str) -> None:
        with self._cv:
            if state not in ALLOWED_TRANSITIONS[self._state]:
                raise ServiceError(
                    f"Job '{self._name}' cannot move {self._state.value} -> {state.value}"
                )
            self._state = state
            self._record_locked(state, message)

    def _record(self, state: JobState, message: str) -> None:
        with self._cv:
            self._record_locked(state, message)

    def _record_locked(self, state: JobState, message: str) -> None:
        self._events.append(
            JobEvent(
                sequence=len(self._events),
                state=state,
                message=message,
                tenant=self._spec.requirements.tenant_id,
            )
        )
        self._cv.notify_all()

    def _set_placement(self, device: Optional[str], score: Optional[float], detail: Dict[str, object]) -> None:
        with self._cv:
            self._device = device
            self._score = score
            self._detail.update(detail)

    def _complete(self, result: ServiceResult) -> None:
        self._result = result
        self._transition(JobState.DONE, f"finished on '{result.device}'")

    def _fail(self, reason: str, exception: Optional[BaseException] = None) -> None:
        self._error = reason
        self._exception = exception
        self._transition(JobState.FAILED, reason)

    def _drain_callbacks(self) -> None:
        """Run deferred done-callbacks.  Invoked by the service/runtime only
        after the job's group has been fully accounted as finished (see
        :meth:`add_done_callback` for why that ordering matters)."""
        with self._cv:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - a callback bug must not kill a worker
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobHandle(name={self._name!r}, state={self._state.value!r})"
