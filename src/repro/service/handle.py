"""The user's view of one submitted service job.

A :class:`JobHandle` is returned immediately by
:meth:`~repro.service.QRIOService.submit`; the job itself executes when the
service processes its queue.  The handle exposes the explicit lifecycle
(``QUEUED → MATCHING → RUNNING → DONE/FAILED``) through :meth:`status` and
:meth:`events`, and :meth:`result` either drives processing to completion
(``wait=True``, the default — the in-process analogue of blocking on a
future) or raises :class:`~repro.utils.exceptions.JobNotCompletedError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.service.api import (
    ALLOWED_TRANSITIONS,
    JobEvent,
    JobSpec,
    JobState,
    JobStatus,
    ServiceResult,
)
from repro.utils.exceptions import JobFailedError, JobNotCompletedError, ServiceError


class JobHandle:
    """Handle to one service job; created by the service, never directly."""

    def __init__(self, name: str, spec: JobSpec, service: "QRIOService") -> None:
        self._name = name
        self._spec = spec
        self._service = service
        self._state = JobState.QUEUED
        self._events: List[JobEvent] = []
        self._device: Optional[str] = None
        self._score: Optional[float] = None
        self._error: Optional[str] = None
        self._exception: Optional[BaseException] = None
        self._detail: Dict[str, object] = {}
        self._result: Optional[ServiceResult] = None
        self._record(JobState.QUEUED, "submission accepted")

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Service-assigned unique job name."""
        return self._name

    @property
    def spec(self) -> JobSpec:
        """The submission this handle tracks."""
        return self._spec

    @property
    def state(self) -> JobState:
        """Current lifecycle state."""
        return self._state

    @property
    def done(self) -> bool:
        """``True`` when the job completed successfully."""
        return self._state == JobState.DONE

    @property
    def failed(self) -> bool:
        """``True`` when the job failed (including "no feasible device")."""
        return self._state == JobState.FAILED

    @property
    def finished(self) -> bool:
        """``True`` once the job reached a terminal state."""
        return self._state.terminal

    @property
    def exception(self) -> Optional[BaseException]:
        """The engine exception behind a failure (``None`` for clean failures
        such as "no feasible device")."""
        return self._exception

    # ------------------------------------------------------------------ #
    def status(self) -> JobStatus:
        """Point-in-time lifecycle snapshot."""
        return JobStatus(
            name=self._name,
            state=self._state,
            engine=self._service.engine.name,
            device=self._device,
            score=self._score,
            message=self._events[-1].message if self._events else "",
            error=self._error,
            detail=dict(self._detail),
        )

    def events(self) -> List[JobEvent]:
        """Every lifecycle transition so far, in order."""
        return list(self._events)

    def result(self, wait: bool = True) -> ServiceResult:
        """The job's outcome.

        With ``wait=True`` (default) a still-pending job is processed
        synchronously first.  Raises
        :class:`~repro.utils.exceptions.JobNotCompletedError` when the job
        has not finished and ``wait=False``, and
        :class:`~repro.utils.exceptions.JobFailedError` when it failed.
        """
        if not self.finished:
            if not wait:
                raise JobNotCompletedError(
                    f"Job '{self._name}' is still {self._state.value}; "
                    "pass wait=True (or call QRIOService.process) to drive it to completion"
                )
            self._service.process(self)
        if self.failed:
            raise JobFailedError(f"Job '{self._name}' failed: {self._error}")
        if self._result is None:
            raise ServiceError(f"Job '{self._name}' is {self._state.value} but has no result recorded")
        return self._result

    def wait(self) -> JobStatus:
        """Drive the job to completion (without raising on failure)."""
        if not self.finished:
            self._service.process(self)
        return self.status()

    # ------------------------------------------------------------------ #
    # Service-side mutation (package-private by convention)
    # ------------------------------------------------------------------ #
    def _transition(self, state: JobState, message: str) -> None:
        if state not in ALLOWED_TRANSITIONS[self._state]:
            raise ServiceError(
                f"Job '{self._name}' cannot move {self._state.value} -> {state.value}"
            )
        self._state = state
        self._record(state, message)

    def _record(self, state: JobState, message: str) -> None:
        self._events.append(JobEvent(sequence=len(self._events), state=state, message=message))

    def _set_placement(self, device: Optional[str], score: Optional[float], detail: Dict[str, object]) -> None:
        self._device = device
        self._score = score
        self._detail.update(detail)

    def _complete(self, result: ServiceResult) -> None:
        self._transition(JobState.DONE, f"finished on '{result.device}'")
        self._result = result

    def _fail(self, reason: str, exception: Optional[BaseException] = None) -> None:
        self._error = reason
        self._exception = exception
        self._transition(JobState.FAILED, reason)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobHandle(name={self._name!r}, state={self._state.value!r})"
