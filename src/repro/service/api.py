"""Typed request/response model of the unified QRIO job service.

Every execution engine — the synchronous orchestrator, the discrete-event
cloud simulator and the k8s-style cluster framework — speaks this one
vocabulary:

* :class:`JobRequirements` + :class:`JobSpec` — what a user submits;
* :class:`JobState` / :class:`JobStatus` / :class:`JobEvent` — the explicit
  job lifecycle (``QUEUED → MATCHING → RUNNING → DONE/FAILED``);
* :class:`Placement` / :class:`EngineResult` — what an engine reports back
  from its two lifecycle stages (device selection, then execution);
* :class:`ServiceResult` — what a finished :class:`~repro.service.JobHandle`
  hands to the user;
* :class:`ExecutionEngine` — the protocol the three engine adapters
  implement.

``JobRequirements`` is frozen and hashable on purpose: together with
:func:`repro.core.cache.structural_circuit_hash` and the shot budget it forms
the batch-deduplication key, so a batch of N structurally-identical requests
collapses onto one embedding search, one canary distribution and one
execution.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.backends.backend import Backend
from repro.circuits.circuit import QuantumCircuit
from repro.core.cache import structural_circuit_hash
from repro.policies.api import PlacementPolicy
from repro.tenancy.api import DEFAULT_TENANT, DEFAULT_TENANT_ID, Tenant
from repro.utils.exceptions import ServiceError
from repro.utils.validation import require_positive_int, require_probability


class JobState(str, Enum):
    """Lifecycle states of a service job."""

    QUEUED = "Queued"
    MATCHING = "Matching"
    RUNNING = "Running"
    DONE = "Done"
    FAILED = "Failed"

    @property
    def terminal(self) -> bool:
        """``True`` once the job can no longer change state."""
        return self in (JobState.DONE, JobState.FAILED)


#: Legal lifecycle transitions (enforced by the service, tested explicitly).
ALLOWED_TRANSITIONS: Dict[JobState, Tuple[JobState, ...]] = {
    JobState.QUEUED: (JobState.MATCHING, JobState.FAILED),
    JobState.MATCHING: (JobState.RUNNING, JobState.FAILED),
    JobState.RUNNING: (JobState.DONE, JobState.FAILED),
    JobState.DONE: (),
    JobState.FAILED: (),
}


@dataclass(frozen=True)
class JobRequirements:
    """What a user asks of the fleet, independent of any engine.

    Exactly one of ``fidelity_threshold`` / ``topology_edges`` selects the
    ranking strategy; leaving both unset defaults to a fidelity requirement
    of 1.0 (the paper's evaluation setting: "give me the best device").
    Device-characteristic bounds and classical resources mirror the
    visualizer's step-2 form.  ``priority`` and ``deadline_s`` order the
    concurrent runtime's dispatch queue (higher priority first, then earliest
    deadline, then submission order); the synchronous ``workers=0`` service
    ignores both and stays strictly FIFO.
    """

    fidelity_threshold: Optional[float] = None
    topology_edges: Optional[Tuple[Tuple[int, int], ...]] = None
    max_avg_two_qubit_error: Optional[float] = None
    max_avg_readout_error: Optional[float] = None
    min_avg_t1: Optional[float] = None
    min_avg_t2: Optional[float] = None
    cpu_millicores: int = 500
    memory_mb: int = 512
    #: Override of the qubit resource request; ``None`` uses the circuit width.
    num_qubits: Optional[int] = None
    #: Scheduling priority of a concurrent service runtime: higher runs
    #: earlier.  Ignored by the synchronous (``workers=0``) FIFO path.
    priority: int = 0
    #: Soft deadline in seconds since submission.  Among equal priorities the
    #: runtime dispatches by earliest *absolute* due time (submission time +
    #: ``deadline_s``); ``None`` sorts after every explicit deadline.  The
    #: deadline orders the queue — it does not cancel late jobs.
    deadline_s: Optional[float] = None
    #: Simulated arrival time of this job in seconds, honoured by
    #: latency-model engines (:class:`~repro.service.CloudEngine` stamps the
    #: arrival on its discrete-event clock instead of spacing submissions
    #: ``inter_arrival_s`` apart).  ``None`` (default) keeps the engine's own
    #: clock.  The scenario runner sets this when replaying a recorded trace
    #: so queueing dynamics reproduce the trace's timeline exactly; other
    #: engines ignore it.  Part of the dedup key on purpose: two jobs
    #: arriving at different simulated times are different queueing events.
    arrival_time_s: Optional[float] = None
    #: Placement policy for this job: a registry name (optionally
    #: parameterized, e.g. ``"fidelity:queue_weight=0.3"``) or a ready
    #: :class:`~repro.policies.PlacementPolicy` instance.  ``None`` (default)
    #: keeps each engine's native placement path.  Every engine honours it,
    #: so the *same* policy routes a job identically whichever engine runs
    #: it.  The policy is part of the batch-dedup key: jobs under different
    #: policies never share one placement.
    policy: Optional[Union[str, PlacementPolicy]] = None
    #: The submitting tenant (:class:`~repro.tenancy.Tenant`).  ``None``
    #: (default) means the implicit anonymous tenant — exactly the
    #: pre-tenancy behaviour, so existing callers and recorded traces are
    #: unaffected.  Part of the dedup key by construction (requirements are
    #: in the key): two tenants never share one deduplicated execution,
    #: which keeps fair-queueing and quota accounting attributable.
    tenant: Optional[Tenant] = None

    def __post_init__(self) -> None:
        if self.num_qubits is not None:
            require_positive_int(self.num_qubits, "num_qubits")
        if isinstance(self.priority, bool) or not isinstance(self.priority, int):
            raise ServiceError("priority must be an integer (higher = dispatched earlier)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServiceError("deadline_s must be a positive number of seconds")
        if self.arrival_time_s is not None and self.arrival_time_s < 0:
            raise ServiceError("arrival_time_s must be a non-negative simulated time")
        if self.policy is not None and not isinstance(self.policy, (str, PlacementPolicy)):
            raise ServiceError(
                "policy must be a registry name (e.g. 'fidelity:queue_weight=0.3') "
                "or a PlacementPolicy instance"
            )
        if isinstance(self.policy, str) and not self.policy.strip():
            raise ServiceError("policy name must be a non-empty string")
        if self.tenant is not None and not isinstance(self.tenant, Tenant):
            raise ServiceError(
                "tenant must be a repro.tenancy.Tenant (or None for the default tenant)"
            )
        if self.fidelity_threshold is not None and self.topology_edges is not None:
            raise ServiceError(
                "Fidelity and topology requirements are mutually exclusive; pick one"
            )
        if self.fidelity_threshold is not None:
            require_probability(self.fidelity_threshold, "fidelity_threshold")
        if self.topology_edges is not None:
            edges = tuple(sorted((min(int(a), int(b)), max(int(a), int(b))) for a, b in self.topology_edges))
            if not edges:
                raise ServiceError("A topology requirement needs at least one edge")
            for a, b in edges:
                if a == b:
                    raise ServiceError("Topology edges must connect distinct qubits")
            object.__setattr__(self, "topology_edges", edges)
        if self.max_avg_two_qubit_error is not None:
            require_probability(self.max_avg_two_qubit_error, "max_avg_two_qubit_error")
        if self.max_avg_readout_error is not None:
            require_probability(self.max_avg_readout_error, "max_avg_readout_error")

    @property
    def strategy(self) -> str:
        """``"fidelity"`` or ``"topology"`` — which ranking strategy applies."""
        return "topology" if self.topology_edges is not None else "fidelity"

    @property
    def effective_tenant(self) -> Tenant:
        """The submitting tenant, with the anonymous default applied."""
        return self.tenant if self.tenant is not None else DEFAULT_TENANT

    @property
    def tenant_id(self) -> str:
        """Tenant id shorthand (``"default"`` for anonymous submissions)."""
        return self.tenant.id if self.tenant is not None else DEFAULT_TENANT_ID

    @property
    def effective_fidelity_threshold(self) -> float:
        """The fidelity requirement with the 1.0 default applied."""
        return 1.0 if self.fidelity_threshold is None else self.fidelity_threshold

    def qubits_for(self, circuit: QuantumCircuit) -> int:
        """The qubit resource request for ``circuit`` (override or width)."""
        return self.num_qubits if self.num_qubits is not None else circuit.num_qubits


@dataclass(frozen=True)
class JobSpec:
    """One service submission: a circuit, its requirements, a shot budget."""

    circuit: QuantumCircuit
    requirements: JobRequirements = field(default_factory=JobRequirements)
    shots: int = 1024
    name: Optional[str] = None
    #: Container image name; ``None`` derives one from the job name.
    image_name: Optional[str] = None

    def __post_init__(self) -> None:
        require_positive_int(self.shots, "shots")
        if self.requirements.topology_edges is not None:
            bound = self.requirements.qubits_for(self.circuit)
            for a, b in self.requirements.topology_edges:
                if not (0 <= a < bound and 0 <= b < bound):
                    raise ServiceError(
                        f"Topology edge ({a}, {b}) is out of range for {bound} qubits"
                    )

    def dedup_key(self) -> Tuple[str, JobRequirements, int]:
        """Batch-grouping key: circuit *structure* + requirements + shots.

        Two submissions with the same key are interchangeable — same
        embedding search, same canary distribution, same execution — so the
        service runs the group once and shares the result.
        """
        return (structural_circuit_hash(self.circuit), self.requirements, self.shots)


@dataclass(frozen=True)
class JobEvent:
    """One lifecycle transition of a service job."""

    sequence: int
    state: JobState
    message: str
    #: Monotonic wall-clock stamp of when the transition was recorded.  Only
    #: differences are meaningful (``time.monotonic`` has an arbitrary
    #: origin); :meth:`QRIOService.wait_report` turns them into the
    #: QUEUED→RUNNING wait and drain-makespan statistics.
    # Event timestamps are observability metadata (wait reports), never
    # replay inputs; only differences between them are used.
    # qrio: allow[QRIO-D002] observability timestamp, not simulated time
    timestamp: float = field(default_factory=time.monotonic)
    #: Id of the tenant the job belongs to, so event streams (and the wait
    #: reports built from them) stay attributable after events leave their
    #: handle — e.g. when a shard process ships them back to the parent.
    tenant: str = DEFAULT_TENANT_ID

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.sequence}] {self.state.value}: {self.message}"


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time snapshot of a job's lifecycle."""

    name: str
    state: JobState
    engine: str
    device: Optional[str] = None
    score: Optional[float] = None
    message: str = ""
    error: Optional[str] = None
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """``True`` once the job reached DONE or FAILED."""
        return self.state.terminal


@dataclass(frozen=True)
class ServiceResult:
    """What a successfully completed service job returns to the user."""

    job_name: str
    engine: str
    device: str
    counts: Dict[str, int]
    shots: int
    score: Optional[float] = None
    fidelity: Optional[float] = None
    num_feasible: int = 0
    group_size: int = 1
    deduplicated: bool = False
    detail: Dict[str, object] = field(default_factory=dict)


@dataclass
class Placement:
    """Outcome of an engine's MATCHING stage (device selection).

    ``device is None`` means no device satisfied the requirements — the
    service fails the job without entering RUNNING, mirroring the paper's
    "job not fit for scheduling" outcome.
    """

    job_name: str
    spec: JobSpec
    device: Optional[str]
    score: Optional[float] = None
    num_feasible: int = 0
    detail: Dict[str, object] = field(default_factory=dict)


@dataclass
class EngineResult:
    """Outcome of an engine's RUNNING stage (execution)."""

    device: str
    counts: Dict[str, int]
    shots: int
    score: Optional[float] = None
    fidelity: Optional[float] = None
    detail: Dict[str, object] = field(default_factory=dict)


class ExecutionEngine(abc.ABC):
    """The one protocol every execution backend of the service implements.

    The split into :meth:`match` and :meth:`run` is deliberate: it maps the
    MATCHING and RUNNING lifecycle states onto engine work, so every engine
    reports device selection and execution as separate, observable steps.

    Concurrency contract (used by :class:`~repro.service.ServiceRuntime`):
    :meth:`match` is always called by exactly one thread at a time (the
    runtime's dispatcher serializes it), so engines may mutate shared
    matching state freely.  :meth:`run`, however, is called from worker
    threads — concurrently for jobs placed on *different* devices — whenever
    :attr:`supports_concurrent_run` is ``True``.  Engines that cannot execute
    concurrently keep the default ``False`` and the runtime serializes their
    ``run`` calls under a global lock (jobs still overlap in queueing and
    lifecycle, just not in execution).
    """

    #: Whether :meth:`run` may be invoked concurrently from several worker
    #: threads (for placements on different devices).  Engines whose execution
    #: path mutates unguarded shared state must leave this ``False``.
    supports_concurrent_run: bool = False

    @property
    def name(self) -> str:
        """Engine name used in statuses, events and reports."""
        return type(self).__name__

    @abc.abstractmethod
    def attach(self, fleet: Sequence[Backend]) -> None:
        """Bind the engine to a device fleet (called once by the service)."""

    @abc.abstractmethod
    def fleet(self) -> List[Backend]:
        """The engine's *current* fleet (live — vendor-side changes show up)."""

    @abc.abstractmethod
    def match(self, spec: JobSpec, job_name: str) -> Placement:
        """Select a device for ``spec`` (filtering + ranking)."""

    @abc.abstractmethod
    def run(self, placement: Placement) -> EngineResult:
        """Execute a matched job and return its outcome."""

    def prepare_run_batch(self, placements: Sequence[Placement]):
        """Pre-execute a same-device placement batch as one merged run.

        Called by the concurrent runtime with the placements it drained from
        one device lane in a scheduling tick, *before* replaying each job's
        :meth:`run`.  Engines that support cross-job batching execute the
        mergeable jobs as one ``(jobs x shots)`` stabilizer evolution and
        return a :class:`~repro.simulators.noisy.BatchExecutionContext`
        holding the per-job results; the runtime activates it on the worker
        thread so each subsequent :meth:`run` claims its pre-computed result
        instead of re-simulating.  Results are bit-identical to unbatched
        runs — the context only short-circuits the simulation, never the
        engine's bookkeeping.  The default returns ``None`` (no batching);
        batching is strictly an optimization, so implementations must never
        raise for unmergeable placements — they return ``None`` instead.
        """
        return None

    # ------------------------------------------------------------------ #
    # Fault-injection hooks (scenario event layer)
    #
    # All four hooks are only ever called from the serialized MATCHING
    # funnel (the FaultInjector advances inside QRIOService._match_group),
    # so the default implementations keep plain, unguarded state.
    # ------------------------------------------------------------------ #
    def set_fault_injector(self, injector) -> None:
        """Attach a :class:`~repro.scenarios.FaultInjector` (or ``None``)."""
        self._fault_injector = injector

    @property
    def fault_injector(self):
        """The attached fault injector, or ``None``."""
        return getattr(self, "_fault_injector", None)

    def set_device_available(self, device: str, available: bool) -> None:
        """Flip one device's availability (outage start/end).

        The base implementation tracks the down-set for
        :meth:`device_is_available`; engines with their own filter path
        (cordonable nodes, feasibility shortlists) extend it.
        """
        down = getattr(self, "_fault_unavailable", None)
        if down is None:
            down = set()
            self._fault_unavailable = down
        if available:
            down.discard(device)
        else:
            down.add(device)

    def device_is_available(self, device: str) -> bool:
        """``False`` while ``device`` is inside an injected outage window."""
        return device not in getattr(self, "_fault_unavailable", ())

    def apply_calibration(self, device: str, properties) -> None:
        """Install freshly drifted properties on ``device`` (epoch jump).

        Backends are shared objects across every registry an engine keeps
        (cluster nodes, meta server, session context), so swapping
        ``backend.properties`` propagates everywhere; the fleet-wide plan
        cache then eagerly drops the stale device entries, exactly as a
        vendor calibration push does.
        """
        from repro.core.cache import calibration_fingerprint, plan_cache

        for backend in self.fleet():
            if backend.name == device:
                backend.properties = properties
                break
        else:
            raise ServiceError(f"Cannot apply calibration: unknown device '{device}'")
        plan_cache().invalidate_device(device, keep_fingerprint=calibration_fingerprint(properties))

    def inject_queue_backlog(self, devices: Sequence[str], *, at_time_s: float, backlog_s: float) -> int:
        """Drop synthetic backlog on device queues (queue storm).

        Only meaningful on engines with simulated queues; the default is a
        recorded no-op returning 0 affected devices.
        """
        return 0
