"""Unified job service: one submission API over orchestrator, cloud and cluster.

The historical codebase had three disjoint front doors — the synchronous
:class:`~repro.core.QRIO` facade, the trace-driven
:class:`~repro.cloud.CloudSimulator` and the k8s-style
:class:`~repro.cluster.SchedulingFramework`.  This package consolidates them
behind one service:

* :class:`QRIOService` — owns a fleet plus a pluggable execution engine,
  exposes ``submit``/``submit_batch`` with an explicit job lifecycle and
  structural batch deduplication;
* :class:`JobHandle` — ``status()`` / ``result()`` / ``events()`` over the
  ``QUEUED → MATCHING → RUNNING → DONE/FAILED`` state machine;
* :class:`ExecutionEngine` + :class:`OrchestratorEngine` /
  :class:`ClusterEngine` / :class:`CloudEngine` — the one protocol and its
  three adapters;
* the shared request/response dataclasses (:class:`JobSpec`,
  :class:`JobRequirements`, :class:`JobStatus`, :class:`ServiceResult`, ...).
"""

from repro.service.api import (
    ALLOWED_TRANSITIONS,
    EngineResult,
    ExecutionEngine,
    JobEvent,
    JobRequirements,
    JobSpec,
    JobState,
    JobStatus,
    Placement,
    ServiceResult,
)
from repro.service.engines import CloudEngine, ClusterEngine, OrchestratorEngine
from repro.service.handle import JobHandle
from repro.service.service import QRIOService, RequirementsLike

__all__ = [
    "ALLOWED_TRANSITIONS",
    "CloudEngine",
    "ClusterEngine",
    "EngineResult",
    "ExecutionEngine",
    "JobEvent",
    "JobHandle",
    "JobRequirements",
    "JobSpec",
    "JobState",
    "JobStatus",
    "OrchestratorEngine",
    "Placement",
    "QRIOService",
    "RequirementsLike",
    "ServiceResult",
]
