"""Unified job service: one submission API over orchestrator, cloud and cluster.

The historical codebase had three disjoint front doors — the synchronous
:class:`~repro.core.QRIO` facade, the trace-driven
:class:`~repro.cloud.CloudSimulator` and the k8s-style
:class:`~repro.cluster.SchedulingFramework`.  This package consolidates them
behind one service:

* :class:`QRIOService` — owns a fleet plus a pluggable execution engine,
  exposes ``submit``/``submit_batch`` with an explicit job lifecycle and
  structural batch deduplication.  ``QRIOService(workers=0)`` (the default)
  executes synchronously on the caller's thread; ``workers=N`` attaches a
  :class:`ServiceRuntime` so submission and execution decouple;
* :class:`ServiceRuntime` — the concurrent runtime: a bounded
  ``ThreadPoolExecutor``, a priority queue ordered by
  ``JobRequirements.priority``/``deadline_s``, per-device shard lanes
  (different devices run concurrently, same-device jobs serialize) and
  ``max_pending`` backpressure surfacing as
  :class:`~repro.utils.exceptions.ServiceOverloadedError`;
* :class:`JobHandle` — ``status()`` / ``result()`` / ``events()`` over the
  ``QUEUED → MATCHING → RUNNING → DONE/FAILED`` state machine, plus the
  futures-style surface a concurrent service needs: ``wait(timeout=...)``,
  ``done()``, ``add_done_callback`` and streaming ``events(follow=True)``;
* :class:`ExecutionEngine` + :class:`OrchestratorEngine` /
  :class:`ClusterEngine` / :class:`CloudEngine` / :class:`DeviceLatencyEngine`
  — the one protocol and its adapters (the latter decorates any engine with
  wall-clock device occupancy, the workload ``BENCH_concurrency.json``
  measures);
* the shared request/response dataclasses (:class:`JobSpec`,
  :class:`JobRequirements`, :class:`JobStatus`, :class:`ServiceResult`, ...).
"""

from repro.service.api import (
    ALLOWED_TRANSITIONS,
    EngineResult,
    ExecutionEngine,
    JobEvent,
    JobRequirements,
    JobSpec,
    JobState,
    JobStatus,
    Placement,
    ServiceResult,
)
from repro.service.engines import CloudEngine, ClusterEngine, DeviceLatencyEngine, OrchestratorEngine
from repro.service.handle import JobHandle
from repro.service.runtime import ServiceRuntime
from repro.service.service import QRIOService, RequirementsLike
from repro.utils.exceptions import ServiceOverloadedError

__all__ = [
    "ALLOWED_TRANSITIONS",
    "CloudEngine",
    "ClusterEngine",
    "DeviceLatencyEngine",
    "EngineResult",
    "ExecutionEngine",
    "JobEvent",
    "JobHandle",
    "JobRequirements",
    "JobSpec",
    "JobState",
    "JobStatus",
    "OrchestratorEngine",
    "Placement",
    "QRIOService",
    "RequirementsLike",
    "ServiceOverloadedError",
    "ServiceResult",
    "ServiceRuntime",
]
