"""The concurrent service runtime: worker pool, priority dispatch, device lanes.

:class:`ServiceRuntime` turns :class:`~repro.service.QRIOService` from a
synchronous, caller-thread state machine into a real job runtime, which is
the architectural step the ROADMAP's "heavy traffic" north star needs —
submission must not block on execution, and a fleet of independent devices
must be allowed to run independent jobs at the same time.

Architecture
------------
The runtime owns three pieces:

* **Weighted-fair tenant queue** — submitted job groups (the batch-dedup
  unit: one representative spec, N handles) enter the per-tenant sub-queue
  of their :attr:`~repro.service.JobRequirements.tenant` and are drained by
  the virtual-time WFQ scheduler of :mod:`repro.tenancy.wfq`: while several
  tenants are backlogged, dispatch slots are split in proportion to tenant
  weights, so one tenant's burst can no longer starve everyone else.
  *Within* a tenant the original ``(-priority, deadline, submission order)``
  order is preserved — higher priority dispatches first, ties break
  earliest-deadline-first, then FIFO — and with a single tenant (the
  pre-tenancy situation) the WFQ degenerates to exactly the old global
  heap, so existing workloads are bit-identical.  A bounded queue
  (``max_pending``) applies backpressure: ``submit(..., block=False)`` raises
  :class:`~repro.utils.exceptions.ServiceOverloadedError` when full, while
  ``block=True`` parks the submitter until the dispatcher frees capacity.

* **Dispatcher** — one daemon thread pops groups in priority order and runs
  the engine's MATCHING stage.  Matching is deliberately serialized: every
  engine funnels scoring through shared state (cluster registry, meta
  server, session clock), and the fleet-wide caches of PR 1 make a warm
  match cheap, so the scalability win lives in overlapping *execution*, not
  matching.  Serial matching also preserves the arrival-order contract of
  the cloud engine's discrete-event session.

* **Per-device shard lanes** — a matched group is appended to the lane of
  its placed device and executed by the bounded ``ThreadPoolExecutor``
  (``workers`` threads).  Each lane is a FIFO served by at most one worker
  at a time, so jobs placed on the *same* device serialize (a physical QPU
  runs one circuit at a time) while jobs on *different* devices run
  concurrently — the multi-device throughput measured by
  ``BENCH_concurrency.json``.  Engines advertise whether their RUNNING stage
  tolerates concurrent callers via
  :attr:`~repro.service.ExecutionEngine.supports_concurrent_run`; when they
  do not, lanes still overlap queueing/latency but the engine's ``run`` is
  wrapped in one global lock.

Handles stay the observable surface: worker threads feed each
:class:`~repro.service.JobHandle`'s condition variable, which powers
``wait(timeout=...)``, ``done()``, ``add_done_callback`` and the streaming
``events(follow=True)`` iterator.

The runtime is an implementation detail of ``QRIOService(workers=N)``;
``workers=0`` (the default) never constructs one and keeps the fully
synchronous, deterministic PR-2 behavior.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, Optional, Sequence, Set, Tuple

from repro.tenancy.wfq import WeightedFairQueue
from repro.utils.exceptions import ServiceError, ServiceOverloadedError


class ServiceRuntime:
    """Worker pool + priority scheduler behind a concurrent :class:`QRIOService`.

    Built by ``QRIOService(workers=N)`` — not meant to be constructed
    directly.  All public methods are thread-safe.
    """

    def __init__(
        self,
        service: "QRIOService",
        *,
        workers: int,
        max_pending: Optional[int] = None,
    ) -> None:
        if workers <= 0:
            raise ServiceError("ServiceRuntime needs workers >= 1")
        if max_pending is not None and max_pending <= 0:
            raise ServiceError("max_pending must be a positive job count (or None for unbounded)")
        self._service = service
        self._workers = workers
        self._max_pending = max_pending
        self._lock = threading.Lock()
        #: Dispatcher wake-up: new work queued or the runtime closing.
        self._work = threading.Condition(self._lock)
        #: Backpressure wake-up: queue capacity freed.
        self._not_full = threading.Condition(self._lock)
        #: Drain wake-up: a group finished (inflight may have hit zero).
        self._idle = threading.Condition(self._lock)
        self._queue: WeightedFairQueue = WeightedFairQueue()
        self._queued_jobs = 0  # handles admitted but not yet dispatched
        self._queued_jobs_by_tenant: Dict[str, int] = {}
        self._inflight_groups = 0  # groups admitted but not yet terminal
        self._executing_groups = 0  # groups handed to lanes, not yet finished
        #: Quiesce wake-up: no matched group is executing in any lane.  Used
        #: by the fault injector as a barrier before run-visible state
        #: changes (calibration jumps, straggler windows).
        self._quiet = threading.Condition(self._lock)
        self._lanes: Dict[str, Deque[Tuple[object, object]]] = {}
        self._active_lanes: Set[str] = set()
        self._closed = False
        #: Serializes engine.run for engines without supports_concurrent_run.
        self._run_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="qrio-runtime")
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="qrio-runtime-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Size of the bounded worker pool."""
        return self._workers

    @property
    def max_pending(self) -> Optional[int]:
        """Backpressure bound on queued-but-undispatched jobs (``None`` = unbounded)."""
        return self._max_pending

    def stats(self) -> Dict[str, int]:
        """Point-in-time queue/lane occupancy counters (for ``QRIOService.stats``)."""
        with self._lock:
            return {
                "workers": self._workers,
                "queued_jobs": self._queued_jobs,
                "queued_groups": len(self._queue),
                "inflight_groups": self._inflight_groups,
                "active_lanes": len(self._active_lanes),
            }

    def tenant_depths(self) -> Dict[str, int]:
        """Queued-but-undispatched *job* count per tenant id.

        The per-tenant live-queue-depth signal ``QRIOService.tenants_report``
        and the CLI ``tenants`` listing surface.
        """
        with self._lock:
            return {
                tenant: count
                for tenant, count in sorted(self._queued_jobs_by_tenant.items())
                if count > 0
            }

    # ------------------------------------------------------------------ #
    # Submission side
    # ------------------------------------------------------------------ #
    def enqueue(self, groups: Sequence[object], *, block: bool = True) -> None:
        """Admit freshly submitted job groups into the priority queue.

        Atomic with respect to backpressure: either every group of the batch
        is admitted or none is.

        Args:
            groups: ``_JobGroup`` objects from ``QRIOService.submit_specs``.
            block: With ``True`` (default) the call parks until the queue has
                room for the whole batch; with ``False`` it raises instead.

        Raises:
            ServiceOverloadedError: The queue cannot (``block=False``) or can
                never (batch larger than ``max_pending``) absorb the batch.
            ServiceError: The runtime was closed.
        """
        total = sum(len(group.handles) for group in groups)
        with self._lock:
            if self._max_pending is not None and total > self._max_pending:
                raise ServiceOverloadedError(
                    f"A batch of {total} jobs can never fit a max_pending={self._max_pending} queue"
                )
            while True:
                if self._closed:
                    raise ServiceError("The service runtime is closed; no further submissions accepted")
                if self._max_pending is None or self._queued_jobs + total <= self._max_pending:
                    break
                if not block:
                    raise ServiceOverloadedError(
                        f"Service queue is full ({self._queued_jobs}/{self._max_pending} jobs pending); "
                        "retry later or submit with block=True"
                    )
                self._not_full.wait()
            # EDF needs absolute due times: deadline_s is relative to real
            # submission time, which only the host clock knows.
            # qrio: allow[QRIO-D002] wall-clock deadline arithmetic of the live runtime
            now = time.monotonic()
            for group in groups:
                requirements = group.spec.requirements
                tenant = requirements.effective_tenant
                deadline = requirements.deadline_s
                # deadline_s is relative to submission, so EDF must compare
                # *absolute* due times — a job submitted later with a short
                # deadline can be due before one submitted earlier with a
                # long deadline.  The key only orders jobs *within* a
                # tenant; across tenants the WFQ's virtual clock decides.
                key = (
                    -requirements.priority,
                    float("inf") if deadline is None else now + float(deadline),
                )
                self._queue.push(tenant.id, tenant.weight, key, group)
                self._queued_jobs += len(group.handles)
                self._queued_jobs_by_tenant[tenant.id] = (
                    self._queued_jobs_by_tenant.get(tenant.id, 0) + len(group.handles)
                )
                self._inflight_groups += 1
            self._work.notify_all()

    # ------------------------------------------------------------------ #
    # Draining / shutdown
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Block until every admitted group has reached a terminal state."""
        with self._lock:
            self._idle.wait_for(lambda: self._inflight_groups == 0 and not self._queue)

    def drain_report(self) -> Dict[str, object]:
        """Drain, then summarise the run's wall-clock waits and makespan.

        Returns :meth:`QRIOService.wait_report` — QUEUED→RUNNING wait
        percentiles (p50/p95/p99), job counts and the submission-to-last-
        terminal makespan — so a concurrent drain reports the same vocabulary
        as a :class:`~repro.cloud.CloudSimulationResult` summary.
        """
        self.drain()
        return self._service.wait_report()

    def wait_handle(self, handle, timeout: Optional[float]) -> bool:
        """Block until ``handle`` is terminal (or ``timeout``); returns success."""
        return handle._await_terminal(timeout)

    def quiesce_runs(self) -> None:
        """Block until no matched group is executing in a lane.

        Called from the dispatcher thread (via the fault injector, inside
        the serialized MATCHING stage) before a run-visible fault effect is
        applied — a calibration epoch is a barrier, so no job ever executes
        against half-swapped device state.  Lane workers never wait on the
        dispatcher, so this cannot deadlock.
        """
        with self._lock:
            self._quiet.wait_for(lambda: self._executing_groups == 0)

    def close(self) -> None:
        """Stop accepting submissions, drain in-flight work, release the pool.

        Idempotent.  Pending queued groups still execute (a close is a drain,
        not an abort); only *new* submissions are rejected.
        """
        with self._lock:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
                self._work.notify_all()
                self._not_full.notify_all()
        self.drain()
        if not already:
            self._dispatcher.join(timeout=5.0)
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Dispatcher: priority pop -> serialized MATCHING -> lane hand-off
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._work.wait()
                if not self._queue:
                    return  # closed and fully dispatched
                group = self._queue.pop()
                tenant_id = group.spec.requirements.tenant_id
                self._queued_jobs -= len(group.handles)
                remaining = self._queued_jobs_by_tenant.get(tenant_id, 0) - len(group.handles)
                if remaining > 0:
                    self._queued_jobs_by_tenant[tenant_id] = remaining
                else:
                    self._queued_jobs_by_tenant.pop(tenant_id, None)
                self._not_full.notify_all()
            try:
                placement = self._service._match_group(group)
            except Exception:  # noqa: BLE001 - recorded on the handles already
                placement = None
            if placement is None:
                # Accounting first, callbacks second: a callback may call
                # close()/process(), which must see this group as finished.
                self._finish_group()
                group.drain_callbacks()
                continue
            with self._lock:
                self._executing_groups += 1
                lane = self._lanes.setdefault(placement.device, deque())
                lane.append((group, placement))
                if placement.device not in self._active_lanes:
                    self._active_lanes.add(placement.device)
                    self._executor.submit(self._lane_worker, placement.device)

    def _lane_worker(self, device: str) -> None:
        """Serve one device's lane: same-device jobs serialize, lanes overlap.

        Each iteration drains up to ``QRIOService.merge_batch_size`` queued
        groups from the lane in one gulp.  When two or more come out
        together, the engine's :meth:`~repro.service.ExecutionEngine.
        prepare_run_batch` pre-executes the mergeable ones as a single
        cross-job batched simulation *outside* the run lock (it is pure
        simulation against thread-safe caches); the per-group ``run`` calls
        that follow then consume the pre-computed results through the
        returned :class:`~repro.simulators.noisy.BatchExecutionContext`.
        Per-group accounting and callback draining are unchanged — every
        group still finishes (and fires its callbacks) individually, in
        lane order.
        """
        while True:
            with self._lock:
                lane = self._lanes[device]
                if not lane:
                    self._active_lanes.discard(device)
                    return
                batch = [lane.popleft()]
                limit = self._service.merge_batch_size
                while lane and len(batch) < limit:
                    batch.append(lane.popleft())
            context = None
            if len(batch) > 1:
                context = self._service._prepare_run_batch([placement for _, placement in batch])
            if context is not None:
                context.activate()
            try:
                for group, placement in batch:
                    try:
                        if self._service.engine.supports_concurrent_run:
                            self._service._run_group(group, placement, reraise=False)
                        else:
                            with self._run_lock:
                                self._service._run_group(group, placement, reraise=False)
                    except Exception:  # noqa: BLE001 - recorded on the handles already
                        pass
                    finally:
                        # Accounting first, callbacks second (a callback may
                        # call close()/process(), which must see this group
                        # as finished).
                        self._finish_group(ran=True)
                    group.drain_callbacks()
            finally:
                if context is not None:
                    context.deactivate()

    def _finish_group(self, *, ran: bool = False) -> None:
        with self._lock:
            self._inflight_groups -= 1
            if ran:
                self._executing_groups -= 1
                if self._executing_groups == 0:
                    self._quiet.notify_all()
            if self._inflight_groups == 0 and not self._queue:
                self._idle.notify_all()
